//! Quickstart: sprint through one workload burst and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's RE-Batt configuration (3 green servers, one solar
//! panel each, 10 Ah server batteries), throws a 10-minute SPECjbb burst
//! at the cluster under medium solar availability, and lets the Hybrid
//! controller manage the sprint.

use greensprint_repro::prelude::*;

fn main() {
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(10),
        burst_intensity_cores: 12,
        seed: 42,
        ..EngineConfig::default()
    };

    println!("GreenSprint quickstart");
    println!("  app        : {}", cfg.app);
    println!(
        "  config     : {} ({} green servers, {:.1} Ah batteries)",
        cfg.green.name, cfg.green.green_servers, cfg.green.battery_ah
    );
    println!("  strategy   : {}", cfg.strategy);
    println!(
        "  burst      : {} at Int={} cores, {} availability\n",
        cfg.burst_duration, cfg.burst_intensity_cores, cfg.availability
    );

    let outcome = Engine::new(cfg).run();

    println!("burst outcome:");
    println!("  speedup vs Normal   : {:.2}x", outcome.speedup_vs_normal);
    println!(
        "  goodput             : {:.1} req/s/server (Normal: {:.1})",
        outcome.mean_goodput_rps, outcome.normal_baseline_rps
    );
    println!(
        "  SLO attainment      : {:.1}%",
        outcome.slo_attainment * 100.0
    );
    println!(
        "  renewable used      : {:.1} Wh (+{:.1} Wh stored, {:.1} Wh curtailed)",
        outcome.re_used_wh, outcome.re_charged_wh, outcome.curtailed_wh
    );
    println!(
        "  battery discharged  : {:.1} Wh ({:.3} equivalent cycles)",
        outcome.battery_used_wh, outcome.battery_cycles
    );
    println!("  grid recharge after : {:.1} Wh", outcome.grid_recharge_wh);

    println!("\nepoch trace (one row per minute):");
    println!(
        "  {:<6} {:<12} {:<15} {:>8} {:>8} {:>6}",
        "time", "setting", "supply case", "RE (W)", "batt(W)", "SoC"
    );
    for e in &outcome.epochs {
        println!(
            "  {:<6} {:<12} {:<15} {:>8.0} {:>8.0} {:>5.0}%",
            e.t.to_string(),
            e.setting.to_string(),
            e.case.to_string(),
            e.re_supply_w,
            e.battery_w,
            e.battery_soc * 100.0
        );
    }
}
