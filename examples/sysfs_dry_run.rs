//! Deployment dry run: drive a real control plane from simulated decisions.
//!
//! ```text
//! cargo run --release --example sysfs_dry_run
//! ```
//!
//! The controller's epoch decisions are applied to a cpufreq/hotplug sysfs
//! tree (a fake one under /tmp here; point it at `/sys/devices/system/cpu`
//! on a test box and the same code drives hardware), and the equivalent
//! `taskset`/`cpufreq-set` shell commands are printed — the exact knobs
//! the paper's prototype used.

use greensprint_repro::cluster::affinity::{cpu_list, CpuMask};
use greensprint_repro::cluster::control::{ServerControl, SysfsControl};
use greensprint_repro::prelude::*;

fn main() {
    let root = std::env::temp_dir().join(format!("greensprint-dryrun-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut control = SysfsControl::create_fake_tree(&root).expect("create fake sysfs tree");
    println!("sysfs root: {} (create_fake_tree)", root.display());

    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_sbatt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(10),
        measurement: MeasurementMode::Analytic,
        seed: 31,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(cfg).run();

    println!("\nepoch-by-epoch control actions (server 0):\n");
    let mut prev = ServerSetting::normal();
    control.apply(prev).expect("apply initial setting");
    for e in &outcome.epochs {
        if e.setting == prev {
            continue;
        }
        control.apply(e.setting).expect("apply setting");
        let read_back = control.read().expect("read back");
        assert_eq!(read_back, e.setting, "sysfs round-trip");

        let mask = CpuMask::for_setting(e.setting);
        let evacuate = CpuMask::for_setting(prev).evacuating_to(mask);
        println!("[{}] {} -> {}", e.t, prev, e.setting);
        println!("    # cpufreq: set userspace speed on the online cores");
        println!(
            "    for c in {}; do echo {} > /sys/devices/system/cpu/cpu$c/cpufreq/scaling_setspeed; done",
            cpu_list(mask),
            e.setting.freq_khz()
        );
        if evacuate.count() > 0 {
            println!("    # offline the cores leaving service (threads migrate off first)");
            println!("    taskset -pc {} $WORKLOAD_PID", cpu_list(mask));
            println!(
                "    for c in {}; do echo 0 > /sys/devices/system/cpu/cpu$c/online; done",
                cpu_list(evacuate)
            );
        } else {
            println!("    # online the additional cores, then widen the affinity mask");
            println!("    taskset -pc {} $WORKLOAD_PID", cpu_list(mask));
        }
        prev = e.setting;
    }

    println!(
        "\nburst finished: {:.2}x speedup, {} setting transitions applied through sysfs",
        outcome.speedup_vs_normal, outcome.setting_transitions,
    );
    std::fs::remove_dir_all(&root).ok();
}
