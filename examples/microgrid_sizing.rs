//! Microgrid sizing: how much battery and solar should a green rack buy?
//!
//! ```text
//! cargo run --release --example microgrid_sizing
//! ```
//!
//! Sweeps per-server battery capacity and panel count for a Web-Search
//! rack facing 30-minute bursts at medium availability, reporting the
//! sprint speedup each provisioning point achieves and what it costs —
//! the capacity-planning question a datacenter operator actually asks.

use greensprint_repro::prelude::*;

fn main() {
    let batteries_ah = [0.0, 3.2, 6.0, 10.0, 16.0];
    let panel_counts = [1, 2, 3, 4];

    println!("Microgrid sizing for a Web-Search rack (30-minute bursts, medium availability)\n");
    println!("speedup vs Normal:");
    print!("{:<14}", "battery \\ PV");
    for p in panel_counts {
        print!("{:>12}", format!("{p} panels"));
    }
    println!();

    let mut best: Option<(f64, u32, f64, f64)> = None; // (ah, panels, speedup, $/yr)
    let tco = TcoParams::paper();
    for ah in batteries_ah {
        print!("{:<14}", format!("{ah:.1} Ah"));
        for panels in panel_counts {
            let green = GreenConfig {
                name: "custom".into(),
                green_servers: 3,
                panels,
                battery_ah: ah,
            };
            let cfg = EngineConfig {
                app: Application::WebSearch,
                green,
                strategy: Strategy::Hybrid,
                availability: AvailabilityLevel::Medium,
                burst_duration: SimDuration::from_mins(30),
                burst_intensity_cores: 12,
                measurement: MeasurementMode::Analytic,
                seed: 11,
                ..EngineConfig::default()
            };
            let out = Engine::new(cfg).run();
            print!("{:>11.2}x", out.speedup_vs_normal);

            // Yearly cost of this provisioning: PV capex amortized plus
            // battery $/KW/yr, per KW of sprint capacity it enables.
            let pv_kw = panels as f64 * 275.0 / 1_000.0;
            let batt_kw = 3.0 * ah * 12.0 * 6.0 / 1_000.0; // 6C discharge capability
            let yearly = pv_kw * tco.pv_capex_per_w * 1_000.0 / tco.pv_lifetime_years
                + batt_kw.min(pv_kw.max(0.001)) * tco.battery_cost_per_kw_year;
            let score = out.speedup_vs_normal / yearly.max(1.0);
            if best.is_none_or(|(_, _, s, y)| score > s / y.max(1.0)) {
                best = Some((ah, panels, out.speedup_vs_normal, yearly));
            }
        }
        println!();
    }

    if let Some((ah, panels, speedup, yearly)) = best {
        println!(
            "\nbest speedup-per-dollar: {ah:.1} Ah + {panels} panels -> {speedup:.2}x at ~${yearly:.0}/year"
        );
    }
    println!("\nreading the table:");
    println!(
        "  - the first panel column shows renewable-starved racks: batteries carry the sprint;"
    );
    println!("  - battery capacity stops mattering once panels cover the full sprint draw;");
    println!("  - the paper's RE-Batt point (10 Ah, 3 panels) sits near the knee.");
}
