//! Wind-powered sprinting: swap the solar farm for turbines.
//!
//! ```text
//! cargo run --release --example wind_farm
//! ```
//!
//! The paper's power architecture admits "photovoltaic (PV) and wind" on
//! the green bus. Wind inverts solar's rhythm — it blows at night and
//! through overcast days — so the same controller sprints at hours a PV
//! array cannot. This example runs identical bursts at four times of day
//! under both sources and compares.

use greensprint_repro::power::wind::WindModel;
use greensprint_repro::prelude::*;

fn run_at(hour: f64, trace: Option<SolarTrace>) -> BurstOutcome {
    let cfg = EngineConfig {
        app: Application::WebSearch,
        green: GreenConfig::re_sbatt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Medium, // used when no override
        burst_duration: SimDuration::from_mins(20),
        burst_start_hour: hour,
        trace_override: trace,
        measurement: MeasurementMode::Analytic,
        seed: 14,
        ..EngineConfig::default()
    };
    Engine::new(cfg).run()
}

fn main() {
    let wind = WindModel {
        weibull_scale_ms: 9.0,
        ..WindModel::default()
    };
    let wind_trace = wind.generate(2, &mut SimRng::seed_from_u64(14));
    let mean_cf: f64 = wind_trace.samples().iter().sum::<f64>() / wind_trace.len() as f64;

    println!("Wind vs solar sprinting (Web-Search, RE-SBatt, 20-minute bursts)");
    println!(
        "wind site: Weibull scale 9 m/s -> capacity factor {:.0}%\n",
        mean_cf * 100.0
    );
    println!(
        "{:>6} {:>16} {:>16}",
        "hour", "solar speedup", "wind speedup"
    );
    for hour in [2.0, 8.0, 12.0, 20.0] {
        let solar = run_at(hour, None);
        let windy = run_at(hour, Some(wind_trace.clone()));
        println!(
            "{:>6.0} {:>15.2}x {:>15.2}x",
            hour, solar.speedup_vs_normal, windy.speedup_vs_normal
        );
    }
    println!("\nsolar owns noon; wind owns the night — a green bus fed by both");
    println!("covers the whole diurnal burst pattern of the paper's Fig. 1.");
}
