//! Black Friday: the paper's motivating scenario — a flash-sale traffic
//! spike that the grid budget cannot absorb.
//!
//! ```text
//! cargo run --release --example black_friday
//! ```
//!
//! A Memcached caching tier faces a one-hour flash crowd. We compare all
//! four sprint strategies under a partly-cloudy afternoon sky (the paper's
//! "medium" availability) with small 3.2 Ah server batteries, then check
//! whether a year with twelve such events pays for the green provisioning.

use greensprint_repro::prelude::*;
use greensprint_repro::tco::wear::WearModel;

fn main() {
    println!("Black Friday at the caching tier (Memcached, RE-SBatt, 60-minute flash crowd)\n");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>14} {:>12}",
        "strategy", "speedup", "goodput(r/s)", "battery(Wh)", "renewable(Wh)", "cycles"
    );

    let mut outcomes = Vec::new();
    for strategy in [
        Strategy::Greedy,
        Strategy::Parallel,
        Strategy::Pacing,
        Strategy::Hybrid,
    ] {
        let cfg = EngineConfig {
            app: Application::Memcached,
            green: GreenConfig::re_sbatt(),
            strategy,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(60),
            burst_intensity_cores: 12,
            seed: 2026,
            ..EngineConfig::default()
        };
        let out = Engine::new(cfg).run();
        println!(
            "{:<10} {:>8.2}x {:>14.0} {:>14.1} {:>14.1} {:>12.3}",
            strategy.to_string(),
            out.speedup_vs_normal,
            out.mean_goodput_rps,
            out.battery_used_wh,
            out.re_used_wh,
            out.battery_cycles
        );
        outcomes.push((strategy, out));
    }

    let (best, best_out) = outcomes
        .iter()
        .max_by(|a, b| a.1.speedup_vs_normal.total_cmp(&b.1.speedup_vs_normal))
        .expect("four strategies ran");
    println!(
        "\nbest strategy: {best} at {:.2}x — the cache absorbs {:.1}x the traffic it could at Normal mode",
        best_out.speedup_vs_normal, best_out.speedup_vs_normal
    );

    // Does the green provisioning pay for itself?
    let events_per_year = 12.0;
    let tco = TcoParams::paper();
    let hours = events_per_year; // one hour per event
    let poi = tco.poi(hours);
    println!("\nTCO check: {events_per_year} one-hour events/year = {hours} sprint hours");
    println!("  profit over investment : {poi:.0} $/KW/year");
    println!(
        "  break-even             : {:.1} sprint hours/year",
        tco.crossover_hours()
    );
    if poi < 0.0 {
        println!("  -> a dozen events alone don't pay it back; the paper's answer is to sprint");
        println!("     for every burst (news spikes, daily peaks), not just Black Friday.");
    }

    // Battery wear sanity: even sprinting daily, cycling stays behind
    // calendar aging for the small pack.
    let spec = GreenConfig::re_sbatt().battery_spec().expect("has battery");
    let wear = WearModel::for_spec(&spec, 200.0);
    println!(
        "\nbattery wear: {:.3} cycles/event -> cycling only dominates calendar aging past {:.0} events/year",
        best_out.battery_cycles,
        wear.cycling_dominates_after(best_out.battery_cycles.max(1e-9))
    );
}
