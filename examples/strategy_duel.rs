//! Strategy duel: watch two PMK strategies manage the *same* burst,
//! epoch by epoch.
//!
//! ```text
//! cargo run --release --example strategy_duel
//! ```
//!
//! Greedy and Hybrid face an identical 20-minute SPECjbb burst under a
//! flickering sky with small batteries. The trace shows where their
//! decisions diverge: Greedy is all-or-nothing, Hybrid rides the partial
//! green supply.

use greensprint_repro::prelude::*;

fn run(strategy: Strategy) -> BurstOutcome {
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_sbatt(),
        strategy,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(20),
        burst_intensity_cores: 12,
        measurement: MeasurementMode::Analytic, // deterministic: same sky for both
        seed: 5,
        ..EngineConfig::default()
    };
    Engine::new(cfg).run()
}

fn main() {
    let greedy = run(Strategy::Greedy);
    let hybrid = run(Strategy::Hybrid);

    println!("Greedy vs Hybrid on the same 20-minute burst (SPECjbb, RE-SBatt, medium sky)\n");
    println!(
        "{:<7} {:>7} | {:<12} {:>8} {:>6} | {:<12} {:>8} {:>6}",
        "time", "RE (W)", "greedy", "goodput", "SoC", "hybrid", "goodput", "SoC"
    );
    for (g, h) in greedy.epochs.iter().zip(&hybrid.epochs) {
        let diverged = if g.setting != h.setting { " <-" } else { "" };
        println!(
            "{:<7} {:>7.0} | {:<12} {:>8.1} {:>5.0}% | {:<12} {:>8.1} {:>5.0}%{}",
            g.t.to_string(),
            g.re_supply_w,
            g.setting.to_string(),
            g.goodput_rps,
            g.battery_soc * 100.0,
            h.setting.to_string(),
            h.goodput_rps,
            h.battery_soc * 100.0,
            diverged
        );
    }
    println!(
        "\nfinal: Greedy {:.2}x vs Hybrid {:.2}x (battery: {:.1} vs {:.1} Wh; renewable: {:.1} vs {:.1} Wh)",
        greedy.speedup_vs_normal,
        hybrid.speedup_vs_normal,
        greedy.battery_used_wh,
        hybrid.battery_used_wh,
        greedy.re_used_wh,
        hybrid.re_used_wh,
    );
    let winner = if hybrid.speedup_vs_normal >= greedy.speedup_vs_normal {
        "Hybrid"
    } else {
        "Greedy"
    };
    println!("winner: {winner} — arrows mark epochs where the strategies chose differently");
}
