//! End-to-end tests for `greensprint serve`: the kill/restart contract
//! (an interrupted-then-resumed `--sim-time` serve emits a metrics
//! stream byte-identical to an uninterrupted run) and the fault-storm
//! acceptance bar (stale telemetry + actuation failures + a mid-run
//! server crash: no panic, Normal floor held, zero audit violations,
//! every robustness counter reported in the summary).

use greensprint_repro::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn serve_cfg(minutes: u64) -> EngineConfig {
    EngineConfig {
        burst_duration: SimDuration::from_mins(minutes),
        measurement: MeasurementMode::Analytic,
        seed: 11,
        ..EngineConfig::default()
    }
}

fn sim_args(cfg: EngineConfig, disturb_seed: u64) -> ServeArgs {
    let n_epochs = cfg.burst_duration.div_duration(cfg.epoch).unwrap();
    ServeArgs {
        cfg,
        options: ServeOptions {
            disturbances: Some(DisturbancePlan::generate(disturb_seed, n_epochs)),
            snapshot_every: 5,
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sim,
        ..ServeArgs::default()
    }
}

#[test]
fn drained_then_resumed_stream_is_byte_identical() {
    let dir = tmp_dir("drain");
    let full = dir.join("full.jsonl");
    let part = dir.join("part.jsonl");
    let snap = dir.join("snap.json");

    let mut uninterrupted = sim_args(serve_cfg(20), 3);
    uninterrupted.metrics_path = Some(full.clone());
    let want = serve(uninterrupted).expect("uninterrupted serve");
    assert!(!want.drained);
    assert_eq!(want.epochs_executed, 20);
    assert_eq!(want.audit_violations, 0);

    let mut first = sim_args(serve_cfg(20), 3);
    first.metrics_path = Some(part.clone());
    first.snapshot_path = Some(snap.clone());
    first.drain_after_epochs = Some(7);
    let drained = serve(first).expect("drained serve");
    assert!(drained.drained);
    assert_eq!(drained.epochs_executed, 7);
    assert_eq!(
        drained.floor_held, None,
        "a truncated window has no comparable Normal baseline"
    );

    // Resume needs nothing beyond the snapshot: config and options ride
    // inside it.
    let resumed = serve(ServeArgs {
        metrics_path: Some(part.clone()),
        resume_path: Some(snap.clone()),
        control: ControlBackend::Sim,
        sim_time: true,
        ..ServeArgs::default()
    })
    .expect("resumed serve");
    assert_eq!(resumed.resumed_from_epoch, Some(7));
    assert_eq!(resumed.epochs_executed, 20);

    let want_bytes = std::fs::read(&full).unwrap();
    let got_bytes = std::fs::read(&part).unwrap();
    assert!(!want_bytes.is_empty());
    assert_eq!(
        want_bytes, got_bytes,
        "drain + resume changed the metrics stream bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_then_resumed_stream_is_byte_identical() {
    let dir = tmp_dir("sigkill");
    let full = dir.join("full.jsonl");
    let part = dir.join("part.jsonl");
    let snap = dir.join("snap.json");
    let hb = dir.join("heartbeat.json");
    let base = [
        "serve",
        "--sim-time",
        "--analytic",
        "--minutes",
        "30",
        "--seed",
        "11",
        "--disturb-seed",
        "3",
        "--control",
        "sim",
        "--snapshot-every",
        "5",
    ];

    let status = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(base)
        .args(["--metrics", full.to_str().unwrap()])
        .status()
        .expect("uninterrupted run");
    assert!(status.success());

    // The throttled run is paced (~40 ms/epoch) purely so SIGKILL lands
    // mid-stream; the throttle never enters the metrics bytes.
    let mut child = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(base)
        .args(["--metrics", part.to_str().unwrap()])
        .args(["--snapshot", snap.to_str().unwrap()])
        .args(["--heartbeat", hb.to_str().unwrap()])
        .args(["--throttle-ms", "40"])
        .spawn()
        .expect("throttled run");
    std::thread::sleep(std::time::Duration::from_millis(700));
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    assert!(
        snap.exists(),
        "the run died before its first snapshot; raise the sleep"
    );
    let hb_before = std::fs::read_to_string(&hb).expect("heartbeat written");

    let status = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args([
            "serve",
            "--sim-time",
            "--control",
            "sim",
            "--resume",
            snap.to_str().unwrap(),
            "--metrics",
            part.to_str().unwrap(),
            "--heartbeat",
            hb.to_str().unwrap(),
        ])
        .status()
        .expect("resumed run");
    assert!(status.success());

    let want_bytes = std::fs::read(&full).unwrap();
    let got_bytes = std::fs::read(&part).unwrap();
    assert_eq!(
        want_bytes, got_bytes,
        "SIGKILL + resume changed the metrics stream bytes"
    );

    // Liveness advanced across the restart.
    let hb_after = std::fs::read_to_string(&hb).unwrap();
    let epoch_of = |s: &str| -> u64 {
        let tail = s.split("\"epoch\":").nth(1).expect("heartbeat has epoch");
        tail.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(
        epoch_of(&hb_after) > epoch_of(&hb_before),
        "heartbeat did not advance: {hb_before} -> {hb_after}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty `--feed` file is a live-but-silent sensor: nothing parses,
/// nothing crashes, and the PSS staleness path engages once the silence
/// outlasts `stale_after_epochs`. No disturbance plan here, so the
/// staleness arithmetic is exact.
#[test]
fn empty_feed_file_counts_nothing_and_goes_stale() {
    let dir = tmp_dir("feed-empty");
    let feed = dir.join("feed.txt");
    std::fs::write(&feed, "").unwrap();

    let mut args = sim_args(serve_cfg(20), 3);
    args.options.disturbances = None;
    args.feed_path = Some(feed);
    let summary = serve(args).expect("empty feed must not error");

    assert_eq!(summary.epochs_executed, 20);
    assert_eq!(summary.feed_malformed, 0, "an empty file has no bad lines");
    // The silence streak hits stale_after_epochs (3) at epoch 2 and
    // never recovers: 18 of 20 epochs are declared stale.
    assert_eq!(summary.stale_epochs, 18, "{summary:?}");
    assert_eq!(summary.audit_violations, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Oversized frames, interleaved garbage, and an EOF-mid-line tail are
/// counted as malformed — never fatal — while the valid lines between
/// them keep telemetry fresh and short silences ride the held reading.
#[test]
fn malformed_feed_lines_are_counted_not_fatal() {
    let dir = tmp_dir("feed-bad");
    let feed = dir.join("feed.txt");
    let oversized = "9".repeat(300); // digits, so only the cap rejects it
                                     // 6 malformed: oversized, corrupt JSON, prose, an empty line, a JSON
                                     // frame without a supply field, and a line truncated by EOF.
    let mut text = format!(
        "250.0\n{oversized}\n{{\"supply_w\": bogus}}\n275.5\nnot a number\n\n\
         {{\"epoch\": 7}}\n{{\"supply_w\":300.0}}\n"
    );
    text.push_str("{\"supply_w\": 2"); // EOF mid-line, no newline
    std::fs::write(&feed, text).unwrap();

    let mut args = sim_args(serve_cfg(20), 3);
    args.options.disturbances = None;
    args.options.max_line_len = 128;
    args.feed_path = Some(feed);
    let summary = serve(args).expect("malformed feed must not error");

    assert_eq!(summary.epochs_executed, 20);
    assert_eq!(summary.feed_malformed, 6, "{summary:?}");
    // Valid samples land at epochs 0, 3, and 7 (one line per epoch);
    // the malformed runs around them stay under the 3-epoch threshold
    // except epoch 6, and the post-EOF silence goes stale from epoch 10.
    assert_eq!(summary.stale_epochs, 11, "{summary:?}");
    assert_eq!(summary.audit_violations, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_storm_never_panics_and_holds_the_floor() {
    // The acceptance storm: engine-level faults (stale RE telemetry, lost
    // commands, a mid-run server crash) layered under serve-level
    // disturbances (deadline overruns with the degrade policy, actuation
    // failures, sink stalls against a 1-line buffer).
    let start = SimTime::from_hours(11);
    let mut cfg = serve_cfg(30);
    cfg.guardrail.enabled = true;
    cfg.fault_plan = Some(FaultPlan {
        seed: 0,
        events: vec![
            FaultEvent {
                at: start + SimDuration::from_mins(3),
                duration: SimDuration::from_mins(6),
                kind: FaultKind::ReSensorDropout,
            },
            FaultEvent {
                at: start + SimDuration::from_mins(10),
                duration: SimDuration::from_mins(5),
                kind: FaultKind::CommandLoss { server: None },
            },
            FaultEvent {
                at: start + SimDuration::from_mins(15),
                duration: SimDuration::from_mins(1),
                kind: FaultKind::ServerCrash {
                    server: 2,
                    down_epochs: 4,
                },
            },
        ],
    });

    let dir = tmp_dir("storm");
    let metrics = dir.join("m.jsonl");
    let mut args = sim_args(cfg, 9);
    args.options.overrun = OverrunPolicy::Degrade;
    args.options.metrics_buffer = 1;
    args.metrics_path = Some(metrics.clone());

    let summary = serve(args).expect("the storm must not error the daemon");

    assert_eq!(summary.epochs_executed, 30, "the daemon ran the window out");
    assert_eq!(
        summary.audit_violations, 0,
        "invariant auditor stayed clean"
    );
    assert_eq!(
        summary.floor_held,
        Some(true),
        "the Normal floor must hold through the storm"
    );
    // Every robustness counter is reported and the storm actually
    // exercised it.
    assert!(summary.overrun_ticks > 0, "plan guarantees overruns");
    assert!(summary.stale_epochs > 0, "plan guarantees staleness");
    assert!(summary.actuation_retries > 0, "plan guarantees retries");
    assert!(
        summary.dropped_metrics_lines > 0,
        "1-line buffer + stalls guarantee drops"
    );
    assert!(
        summary.ladder_level > 0,
        "degrade policy demoted at least one rung"
    );
    // The degrade demotions are visible in the guardrail event log.
    assert!(summary
        .guardrail_events
        .iter()
        .any(|e| e.contains("tick deadline overrun")));
    let _ = std::fs::remove_dir_all(&dir);
}
