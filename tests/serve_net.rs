//! End-to-end tests for the serve network plane: a seeded fault storm
//! against a live `--sim-time` run must leave the metrics stream
//! byte-identical to a networking-disabled run (determinism contract),
//! a killed-and-reconnected subscriber must get a gap-free stream via
//! `?from_epoch=`, admin `DRAIN` over TCP must ride the graceful-drain
//! path, and real-time ingest frames must actually enter the supply
//! path.

use greensprint_repro::core::net::line_epoch;
use greensprint_repro::prelude::*;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-servenet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn serve_cfg(minutes: u64) -> EngineConfig {
    EngineConfig {
        burst_duration: SimDuration::from_mins(minutes),
        measurement: MeasurementMode::Analytic,
        seed: 11,
        ..EngineConfig::default()
    }
}

fn sim_args(cfg: EngineConfig, disturb_seed: u64) -> ServeArgs {
    let n_epochs = cfg.burst_duration.div_duration(cfg.epoch).unwrap();
    ServeArgs {
        cfg,
        options: ServeOptions {
            disturbances: Some(DisturbancePlan::generate(disturb_seed, n_epochs)),
            snapshot_every: 5,
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sim,
        ..ServeArgs::default()
    }
}

/// Block until the plane has bound its listeners and published the
/// real `:0` ports through the `ready` latch.
fn wait_addrs(ready: &Arc<OnceLock<NetAddrs>>) -> NetAddrs {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if let Some(addrs) = ready.get() {
            return *addrs;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("the network plane never published its addresses");
}

fn listen_addr(ready: &Arc<OnceLock<NetAddrs>>) -> SocketAddr {
    wait_addrs(ready).listen.expect("ingest listener bound")
}

/// The acceptance bar from the issue: a seeded `NetFaultPlan` storm
/// (mid-frame drops, stalls, oversized frames, reconnect storms, an
/// accept burst past `max_conns`, a killed subscriber, a bad admin
/// token) against a `--sim-time` run completes with no panic, zero
/// audit violations, every net counter exercised — and the metrics
/// stream byte-identical to the same run with networking disabled.
/// A reconnecting subscriber asking `?from_epoch=0` then reads the
/// whole stream gap-free across the file/ring/live replay segments.
#[test]
fn net_fault_storm_keeps_the_stream_byte_identical_and_counters_honest() {
    const EPOCHS: u64 = 360;
    let dir = tmp_dir("storm");
    let base = dir.join("base.jsonl");
    let netm = dir.join("net.jsonl");

    let mut baseline = sim_args(serve_cfg(EPOCHS), 3);
    baseline.metrics_path = Some(base.clone());
    let want = serve(baseline).expect("baseline serve");
    assert_eq!(want.epochs_executed, EPOCHS);
    assert!(want.net.is_none(), "no listener => no net summary");

    // One op of every kind; pin the timing-sensitive ones so the storm
    // reliably crosses the plane's thresholds (stall > read timeout,
    // burst > max_conns) without stretching past the run.
    let mut plan = NetFaultPlan::generate(7, 0, 128, 200);
    for op in &mut plan.ops {
        match op {
            NetFaultOp::StallWriter { ms } => *ms = 320,
            NetFaultOp::AcceptBurst { conns } => *conns = 12,
            NetFaultOp::KillSubscriber { after_lines } => *after_lines = 2,
            _ => {}
        }
    }

    let ready: Arc<OnceLock<NetAddrs>> = Arc::new(OnceLock::new());
    let harness = {
        let ready = ready.clone();
        let plan = plan.clone();
        std::thread::spawn(move || {
            let addrs = wait_addrs(&ready);
            let ingest = addrs.listen.expect("ingest listener");
            let metrics = addrs.metrics.expect("metrics listener");
            let rep = run_fault_plan(ingest, &plan);
            // The gap-free reconnect: a fresh subscriber on the
            // metrics-only listener replays from epoch 0 and rides the
            // live stream to the graceful end-of-run flush.
            let lines = subscribe_collect(metrics, Some(0), Duration::from_secs(5))
                .expect("reconnect subscriber");
            (rep, lines)
        })
    };

    let mut stormy = sim_args(serve_cfg(EPOCHS), 3);
    stormy.metrics_path = Some(netm.clone());
    // Pacing only (never enters the stream): keeps the run alive long
    // enough for the storm and the reconnecting subscriber.
    stormy.throttle_ms = 20;
    stormy.net = Some(NetConfig {
        listen: Some("127.0.0.1:0".to_string()),
        metrics_listen: Some("127.0.0.1:0".to_string()),
        admin_token: Some("storm-secret".to_string()),
        max_conns: 6,
        conn_timeout_ms: 200,
        max_line_len: 128,
        ready: Some(ready.clone()),
        ..NetConfig::default()
    });
    let got = serve(stormy).expect("the storm must not error the daemon");
    let (rep, lines) = harness.join().expect("harness thread");

    assert_eq!(got.epochs_executed, EPOCHS, "the daemon ran the window out");
    assert_eq!(got.audit_violations, 0, "invariant auditor stayed clean");
    assert_eq!(rep.ops_run, plan.ops.len(), "every storm op executed");

    // Determinism contract: the network storm left the stream bytes
    // untouched.
    let want_bytes = std::fs::read(&base).unwrap();
    let got_bytes = std::fs::read(&netm).unwrap();
    assert!(!want_bytes.is_empty());
    assert_eq!(
        want_bytes, got_bytes,
        "a network fault storm changed the --sim-time metrics bytes"
    );

    // Every robustness counter was exercised by the storm.
    let net = got.net.expect("net summary present with listeners");
    assert!(net.conns_accepted > 0, "{net:?}");
    assert!(net.frames_received > 0, "valid frames landed: {net:?}");
    assert!(
        net.malformed_frames > 0,
        "corrupt/oversized counted: {net:?}"
    );
    assert!(
        net.conns_timed_out > 0,
        "the stalled writer timed out: {net:?}"
    );
    assert!(net.conns_dropped > 0, "the accept burst was shed: {net:?}");
    assert!(net.auth_rejects > 0, "the bad token was refused: {net:?}");
    assert!(net.subscribers >= 2, "killed + reconnected: {net:?}");
    assert!(
        net.subscriber_drops > 0,
        "the killed subscriber dropped lines: {net:?}"
    );
    assert_eq!(
        net.drain_requests, 0,
        "a bad token must never drain: {net:?}"
    );

    // Gap-free replay: epoch 0 through the final epoch, contiguous.
    let epochs: Vec<u64> = lines
        .iter()
        .map(|l| line_epoch(l).unwrap_or_else(|| panic!("line without epoch: {l}")))
        .collect();
    assert!(!epochs.is_empty(), "the reconnect subscriber saw nothing");
    assert_eq!(epochs[0], 0, "?from_epoch=0 must replay from the start");
    assert_eq!(
        *epochs.last().unwrap(),
        EPOCHS - 1,
        "subscriber missed the tail"
    );
    for w in epochs.windows(2) {
        assert_eq!(w[1], w[0] + 1, "gap in the replayed stream: {w:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `DRAIN <token>` over TCP latches the same graceful-drain path as
/// SIGTERM: the run stops at an epoch boundary with `drained: true`.
#[test]
fn admin_drain_over_tcp_stops_the_run_at_an_epoch_boundary() {
    let ready: Arc<OnceLock<NetAddrs>> = Arc::new(OnceLock::new());
    let harness = {
        let ready = ready.clone();
        std::thread::spawn(move || {
            let addr = listen_addr(&ready);
            let t = Duration::from_secs(2);
            // Wait for the first executed epoch to show in STATUS, so
            // the drain provably lands mid-run.
            let deadline = Instant::now() + Duration::from_secs(15);
            loop {
                if let Ok(status) = admin_request(addr, "STATUS drain-secret", t) {
                    assert!(status.starts_with('{'), "{status}");
                    assert!(status.contains("greensprint-serve"), "{status}");
                    if line_epoch(&status).is_some() {
                        break;
                    }
                }
                assert!(Instant::now() < deadline, "no epoch ever reached STATUS");
                std::thread::sleep(Duration::from_millis(20));
            }
            assert_eq!(
                admin_request(addr, "DRAIN wrong-secret", t).unwrap(),
                "err unauthorized"
            );
            assert_eq!(
                admin_request(addr, "DRAIN drain-secret", t).unwrap(),
                "ok drain"
            );
        })
    };

    let mut args = sim_args(serve_cfg(5000), 3);
    args.throttle_ms = 10;
    args.net = Some(NetConfig {
        listen: Some("127.0.0.1:0".to_string()),
        admin_token: Some("drain-secret".to_string()),
        ready: Some(ready.clone()),
        ..NetConfig::default()
    });
    let summary = serve(args).expect("drained serve");
    harness.join().expect("harness thread");

    assert!(summary.drained, "DRAIN must stop the run gracefully");
    assert!(summary.epochs_executed > 0);
    assert!(summary.epochs_executed < 5000, "drain landed mid-run");
    let net = summary.net.expect("net summary");
    assert_eq!(net.drain_requests, 1);
    assert_eq!(net.auth_rejects, 1);
    assert_eq!(summary.audit_violations, 0);
}

/// In real time (no `--sim-time`) a socket frame is live telemetry: the
/// reading replaces the trace-derived supply for the epoch it lands in,
/// exactly like a `--feed` line.
#[test]
fn real_time_net_frames_enter_the_supply_path() {
    let dir = tmp_dir("rt");
    let metrics = dir.join("m.jsonl");
    let ready: Arc<OnceLock<NetAddrs>> = Arc::new(OnceLock::new());
    let harness = {
        let ready = ready.clone();
        std::thread::spawn(move || {
            use std::io::Write as _;
            let addr = listen_addr(&ready);
            let mut s = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5))
                .expect("connect");
            // Keep fresh readings flowing for the whole (short) window;
            // a write error just means the run finished first.
            for _ in 0..120 {
                if writeln!(s, "321.5").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let summary = serve(ServeArgs {
        cfg: serve_cfg(4),
        sim_time: false,
        rate: 240.0, // 60 sim-seconds per epoch -> 250 ms wall per epoch
        metrics_path: Some(metrics.clone()),
        control: ControlBackend::Sim,
        net: Some(NetConfig {
            listen: Some("127.0.0.1:0".to_string()),
            ready: Some(ready.clone()),
            ..NetConfig::default()
        }),
        ..ServeArgs::default()
    })
    .expect("real-time serve");
    harness.join().expect("harness thread");

    assert_eq!(summary.epochs_executed, 4);
    let net = summary.net.expect("net summary");
    assert!(net.frames_received > 0, "{net:?}");
    assert_eq!(summary.stale_epochs, 0, "frames every 25 ms never go stale");
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        text.contains("\"re_supply_w\":321.5"),
        "the live reading never reached the supply path:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
