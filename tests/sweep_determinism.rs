//! The sweep executor's core guarantee, end to end: the *serialized*
//! results of a sweep — every field of every outcome, not just the
//! headline metric — are byte-identical whatever the worker count.

use greensprint_repro::prelude::*;

/// A 24-point grid spanning apps × strategies × availabilities ×
/// durations, bursts and campaigns mixed.
fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for app in [Application::SpecJbb, Application::Memcached] {
        for strategy in [Strategy::Greedy, Strategy::Pacing, Strategy::Hybrid] {
            for availability in [
                AvailabilityLevel::Minimum,
                AvailabilityLevel::Medium,
                AvailabilityLevel::Maximum,
            ] {
                let cfg = EngineConfig {
                    app,
                    green: GreenConfig::re_batt(),
                    strategy,
                    availability,
                    burst_duration: SimDuration::from_mins(5),
                    measurement: MeasurementMode::Analytic,
                    ..EngineConfig::default()
                };
                points.push(SweepPoint::burst(
                    format!("{app:?}/{strategy}/{availability:?}/5min"),
                    cfg.clone(),
                ));
                points.push(SweepPoint::campaign(
                    format!("{app:?}/{strategy}/{availability:?}/1day"),
                    CampaignConfig {
                        engine: cfg,
                        days: 1,
                        spikes_per_day: 2,
                        peak_intensity_cores: 12,
                    },
                ));
            }
        }
    }
    assert!(points.len() >= 24, "grid has {} points", points.len());
    points
}

fn sweep_json(jobs: usize) -> Vec<String> {
    run_sweep(grid(), 20260806, jobs)
        .iter()
        .map(|r| serde_json::to_string(r).expect("results serialize"))
        .collect()
}

#[test]
fn serialized_results_are_byte_identical_across_worker_counts() {
    let serial = sweep_json(1);
    let parallel = sweep_json(8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a, b, "jobs=1 and jobs=8 diverged");
    }
}

#[test]
fn campaign_edge_cases_run_deterministically() {
    // days=1 and spikes_per_day=0 are the degenerate campaign corners:
    // the shortest legal horizon, and a pure plateau with no flash crowd.
    let engine = EngineConfig {
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let points = vec![
        SweepPoint::campaign(
            "1day",
            CampaignConfig {
                engine: engine.clone(),
                days: 1,
                spikes_per_day: 3,
                peak_intensity_cores: 12,
            },
        ),
        SweepPoint::campaign(
            "no-spikes",
            CampaignConfig {
                engine,
                days: 1,
                spikes_per_day: 0,
                peak_intensity_cores: 12,
            },
        ),
    ];
    let a = run_sweep(points.clone(), 7, 1);
    let b = run_sweep(points, 7, 8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            serde_json::to_string(x).unwrap(),
            serde_json::to_string(y).unwrap(),
            "{} diverged",
            x.label
        );
        match &x.outcome {
            SweepOutcome::Campaign(c) => assert_eq!(c.days, 1),
            other => panic!("expected campaign, got {other:?}"),
        }
    }
}

#[test]
fn derived_seeds_are_label_independent() {
    // Seeds come from (master, index) alone: relabeling a grid point must
    // not change what it runs.
    let mut renamed = grid();
    for p in &mut renamed {
        p.label = format!("renamed/{}", p.label);
    }
    let original = run_sweep(grid(), 42, 4);
    let renamed = run_sweep(renamed, 42, 4);
    for (a, b) in original.iter().zip(&renamed) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.outcome.vs_normal(), b.outcome.vs_normal());
    }
}
