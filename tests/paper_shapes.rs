//! Integration tests asserting the *shapes* of the paper's evaluation:
//! who wins, by roughly what factor, and where the crossovers fall.
//! These are the executable form of EXPERIMENTS.md.
//!
//! All runs use the deterministic analytic measurement plane so the
//! assertions are stable; `cross_crate.rs` covers DES agreement.

use greensprint_repro::prelude::*;

fn speedup(
    app: Application,
    green: GreenConfig,
    strategy: Strategy,
    availability: AvailabilityLevel,
    mins: u64,
    intensity: u8,
) -> f64 {
    let cfg = EngineConfig {
        app,
        green,
        strategy,
        availability,
        burst_duration: SimDuration::from_mins(mins),
        burst_intensity_cores: intensity,
        measurement: MeasurementMode::Analytic,
        seed: 7,
        ..EngineConfig::default()
    };
    Engine::new(cfg).run().speedup_vs_normal
}

#[test]
fn abstract_headline_speedups() {
    // "can improve performance by up to 4.8x for SPECjbb, 4.1x for
    // Web-Search, and 4.7x for Memcached with renewable power supply."
    let jbb = speedup(
        Application::SpecJbb,
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Maximum,
        10,
        12,
    );
    assert!((jbb - 4.8).abs() < 0.3, "SPECjbb {jbb}");
    let ws = speedup(
        Application::WebSearch,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Maximum,
        10,
        12,
    );
    assert!((ws - 4.1).abs() < 0.3, "Web-Search {ws}");
    let mc = speedup(
        Application::Memcached,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Maximum,
        10,
        12,
    );
    assert!((mc - 4.7).abs() < 0.3, "Memcached {mc}");
}

#[test]
fn fig6_battery_carries_short_minimum_bursts() {
    // "For short bursts (10-minute duration), even when the renewable
    // energy is unavailable, battery alone is able to completely handle
    // the sprinting operation with maximal performance."
    for strat in [Strategy::Greedy, Strategy::Hybrid] {
        let s = speedup(
            Application::SpecJbb,
            GreenConfig::re_batt(),
            strat,
            AvailabilityLevel::Minimum,
            10,
            12,
        );
        assert!(s > 4.3, "{strat} at Min/10min: {s}");
    }
}

#[test]
fn fig6_long_minimum_bursts_degrade() {
    // "the performance improvement drops to 1.8x for Parallel" (60 min,
    // minimum availability) — and batteries are "not appropriate for
    // longer durations".
    let par = speedup(
        Application::SpecJbb,
        GreenConfig::re_batt(),
        Strategy::Parallel,
        AvailabilityLevel::Minimum,
        60,
        12,
    );
    assert!((1.3..2.3).contains(&par), "Parallel Min/60: {par}");
    // Greedy ties Hybrid as the best battery-only strategy.
    let greedy = speedup(
        Application::SpecJbb,
        GreenConfig::re_batt(),
        Strategy::Greedy,
        AvailabilityLevel::Minimum,
        60,
        12,
    );
    let hybrid = speedup(
        Application::SpecJbb,
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        60,
        12,
    );
    assert!(
        (greedy - hybrid).abs() < 0.15,
        "Greedy {greedy} vs Hybrid {hybrid}"
    );
    assert!(hybrid >= par - 1e-9, "Hybrid {hybrid} vs Parallel {par}");
}

#[test]
fn fig6_medium_sixty_minutes_lands_near_paper() {
    // "For 60-minute durations, Sprinting can still provide up to 3.4x
    // performance gains over Normal" at medium availability.
    let best = [
        Strategy::Greedy,
        Strategy::Parallel,
        Strategy::Pacing,
        Strategy::Hybrid,
    ]
    .into_iter()
    .map(|s| {
        speedup(
            Application::SpecJbb,
            GreenConfig::re_batt(),
            s,
            AvailabilityLevel::Medium,
            60,
            12,
        )
    })
    .fold(0.0_f64, f64::max);
    assert!((2.9..3.9).contains(&best), "best Med/60: {best}");
}

#[test]
fn fig6_maximum_availability_is_flat_and_full() {
    for mins in [10, 30, 60] {
        for strat in Strategy::SPRINTING {
            let s = speedup(
                Application::SpecJbb,
                GreenConfig::re_batt(),
                strat,
                AvailabilityLevel::Maximum,
                mins,
                12,
            );
            assert!(s > 4.3, "{strat} at Max/{mins}min: {s}");
        }
    }
}

#[test]
fn fig7_re_only_cannot_sprint_in_the_dark() {
    // "the performance results with minimum renewable energy availability
    // are the same as the Normal mode because there is no power supply
    // for sprinting."
    let s = speedup(
        Application::SpecJbb,
        GreenConfig::re_only(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        30,
        12,
    );
    assert!((s - 1.0).abs() < 0.05, "REOnly at Min: {s}");
}

#[test]
fn fig7_config_ordering_under_battery_pressure() {
    // RE-Batt (10 Ah) beats RE-SBatt (3.2 Ah) beats nothing, and SRE
    // (2 panels) trails RE (3 panels) at medium availability.
    let re_batt = speedup(
        Application::SpecJbb,
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        30,
        12,
    );
    let re_sbatt = speedup(
        Application::SpecJbb,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        30,
        12,
    );
    assert!(
        re_batt > re_sbatt + 0.3,
        "RE-Batt {re_batt} vs RE-SBatt {re_sbatt}"
    );
    let re_med = speedup(
        Application::SpecJbb,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    let sre_med = speedup(
        Application::SpecJbb,
        GreenConfig::sre_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    assert!(re_med >= sre_med - 0.05, "RE {re_med} vs SRE {sre_med}");
}

#[test]
fn fig7_re_only_medium_matches_paper_range() {
    // "With only renewable energy supply, GreenSprint significantly
    // improves performance, from 2.2x (medium availability) to 4.8x
    // (maximum availability) for the 60-minute long power burst."
    let med = speedup(
        Application::SpecJbb,
        GreenConfig::re_only(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    assert!((1.6..2.9).contains(&med), "REOnly Med/60: {med}");
    let max = speedup(
        Application::SpecJbb,
        GreenConfig::re_only(),
        Strategy::Hybrid,
        AvailabilityLevel::Maximum,
        60,
        12,
    );
    assert!(max > 4.3, "REOnly Max/60: {max}");
}

#[test]
fn fig8_greedy_loses_partial_green_supply() {
    // §IV-A/§IV-C: "Greedy underperforms Pacing because it loses the
    // opportunity to utilize the lower green power supply periods" — with
    // small batteries the all-or-nothing strategy falls behind.
    let greedy = speedup(
        Application::WebSearch,
        GreenConfig::re_sbatt(),
        Strategy::Greedy,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    let pacing = speedup(
        Application::WebSearch,
        GreenConfig::re_sbatt(),
        Strategy::Pacing,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    let hybrid = speedup(
        Application::WebSearch,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        60,
        12,
    );
    assert!(pacing > greedy + 0.2, "Pacing {pacing} vs Greedy {greedy}");
    assert!(hybrid >= pacing - 0.1, "Hybrid {hybrid} vs Pacing {pacing}");
}

#[test]
fn fig9_memcached_long_battery_bursts_barely_help() {
    // "For longer durations, battery-based sprinting can barely achieve
    // performance improvement over the Normal mode." (small battery)
    let s = speedup(
        Application::Memcached,
        GreenConfig::re_sbatt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        60,
        12,
    );
    assert!((1.0..1.5).contains(&s), "Memcached Min/60: {s}");
}

#[test]
fn fig10a_speedup_falls_with_intensity_and_duration() {
    // "the performance is much lower (from 3.6x to 2.6x) when the burst
    // intensity decreases (from Int=12 to Int=7)".
    let run = |mins, k| {
        speedup(
            Application::SpecJbb,
            GreenConfig::re_sbatt(),
            Strategy::Hybrid,
            AvailabilityLevel::Medium,
            mins,
            k,
        )
    };
    let int12 = run(10, 12);
    let int9 = run(10, 9);
    let int7 = run(10, 7);
    assert!(int12 > int9 && int9 > int7, "{int12} / {int9} / {int7}");
    assert!((int12 - int7) > 0.6, "gradient too flat: {int12} vs {int7}");
    // Duration decay at fixed intensity.
    assert!(run(60, 7) < run(10, 7));
}

#[test]
fn fig10b_greedy_is_worst_at_low_intensity() {
    // "Greedy performs the worst because, when the burst intensity becomes
    // lower, maximal sprinting on 12 cores is less efficient."
    let at = |s| {
        speedup(
            Application::SpecJbb,
            GreenConfig::re_sbatt(),
            s,
            AvailabilityLevel::Minimum,
            10,
            9,
        )
    };
    let greedy = at(Strategy::Greedy);
    for other in [Strategy::Parallel, Strategy::Pacing, Strategy::Hybrid] {
        assert!(at(other) >= greedy - 0.02, "{other} vs Greedy {greedy}");
    }
    assert!(
        at(Strategy::Hybrid) > greedy + 0.04,
        "Hybrid must beat Greedy"
    );
}

#[test]
fn fig11_tco_crossover() {
    let tco = TcoParams::paper();
    assert!((tco.crossover_hours() - 14.0).abs() < 1.5);
    assert!(tco.poi(12.0) < 0.0);
    assert!(tco.poi(36.0) > 300.0);
}

#[test]
fn observation6_sprinting_raises_renewable_utilization() {
    // Paper observation (6): "Sprinting in turn can increase the renewable
    // power utilization due to higher power demand."
    let run = |strategy| {
        let cfg = EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_only(),
            strategy,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(30),
            measurement: MeasurementMode::Analytic,
            seed: 7,
            ..EngineConfig::default()
        };
        let out = Engine::new(cfg).run();
        out.re_used_wh / (out.re_used_wh + out.curtailed_wh).max(1e-9)
    };
    assert!(run(Strategy::Hybrid) > run(Strategy::Normal) + 0.2);
}
