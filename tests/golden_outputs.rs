//! Golden-output equivalence suite: the hot-path optimization program's
//! safety net.
//!
//! The fixtures under `tests/golden/` were captured from the build **before**
//! the SoA epoch loop, the calendar-queue DES, and the sweep arenas landed
//! (PR 6). Every test serializes today's engine output with the same
//! `serde_json` the capture used and asserts the bytes are identical —
//! so any optimization that changes a single bit of arithmetic, RNG
//! consumption, or serialization order fails loudly here.
//!
//! Covered planes, per the determinism contract:
//! * `BurstOutcome` JSON for 3 seeds × {plain, fault-plan, fleet-fault}
//!   configurations (Hybrid strategy, so the learner's RNG stream is pinned
//!   too);
//! * `SweepResult` JSON-lines for a mixed burst/campaign grid, run at
//!   `jobs = 1` and `jobs = 4` (jobs-invariance against golden bytes);
//! * chaos JSON-lines (fault-plan points through the same executor, the
//!   `greensprint chaos` output format);
//! * a snapshot/resume cycle of each burst family: the outcome resumed from
//!   a mid-run snapshot must reproduce the same golden bytes.
//!
//! Regenerating fixtures is only legitimate when the *intended* output
//! changes (never for an optimization): `GOLDEN_REGEN=1 cargo test --test
//! golden_outputs`, then justify the diff in the PR.

use greensprint_repro::prelude::*;
use std::path::{Path, PathBuf};

const SEEDS: [u64; 3] = [11, 22, 33];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn regen() -> bool {
    std::env::var_os("GOLDEN_REGEN").is_some_and(|v| v == "1")
}

/// Compare `actual` against the named fixture byte-for-byte (or rewrite the
/// fixture under `GOLDEN_REGEN=1`).
fn check(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if regen() {
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    if expected != actual {
        // Find the first divergence for a readable failure.
        let at = expected
            .bytes()
            .zip(actual.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(actual.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "{name}: output diverged from the pre-refactor golden bytes at offset {at}\n\
             expected …{}…\n\
             actual   …{}…\n\
             (an optimization must be byte-identical; if the output was *meant* to change, \
             regenerate with GOLDEN_REGEN=1 and justify the diff)",
            &expected[lo..(at + 60).min(expected.len())],
            &actual[lo..(at + 60).min(actual.len())],
        );
    }
}

/// The three burst families, all Analytic (snapshot-capable) and all on the
/// Hybrid strategy so the learner's RNG stream is part of the contract.
fn family_cfg(family: &str, seed: u64) -> EngineConfig {
    let start = SimTime::from_hours(11);
    let dur = SimDuration::from_mins(10);
    let base = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Medium,
        burst_duration: dur,
        measurement: MeasurementMode::Analytic,
        seed,
        ..EngineConfig::default()
    };
    match family {
        "plain" => base,
        "faults" => EngineConfig {
            fault_plan: Some(FaultPlan::generate(seed ^ 0xfau64, start, dur, 3)),
            ..base
        },
        "fleet" => EngineConfig {
            fault_plan: Some(FaultPlan::generate_fleet(
                seed ^ 0xf1u64,
                start,
                dur,
                3,
                FleetMix::default(),
            )),
            ..base
        },
        other => panic!("unknown family {other}"),
    }
}

fn outcome_json(cfg: EngineConfig) -> String {
    let out = Engine::try_new(cfg).expect("valid golden config").run();
    serde_json::to_string(&out).expect("outcome serializes")
}

#[test]
fn golden_burst_outcomes_are_byte_identical() {
    for family in ["plain", "faults", "fleet"] {
        for seed in SEEDS {
            let json = outcome_json(family_cfg(family, seed));
            check(&format!("burst_{family}_seed{seed}.json"), &json);
        }
    }
}

/// A mixed sweep grid: bursts across strategies plus one campaign, the
/// shape `greensprint sweep` emits. Serialized as JSON-lines exactly like
/// the CLI's per-point output.
fn sweep_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for strategy in [Strategy::Greedy, Strategy::Pacing, Strategy::Hybrid] {
        for availability in [AvailabilityLevel::Medium, AvailabilityLevel::Maximum] {
            let cfg = EngineConfig {
                strategy,
                availability,
                burst_duration: SimDuration::from_mins(5),
                measurement: MeasurementMode::Analytic,
                ..EngineConfig::default()
            };
            points.push(SweepPoint::burst(
                format!("golden/{strategy}/{availability}"),
                cfg,
            ));
        }
    }
    points.push(SweepPoint::campaign(
        "golden/campaign/1day",
        CampaignConfig {
            engine: EngineConfig {
                strategy: Strategy::Pacing,
                burst_duration: SimDuration::from_mins(5),
                measurement: MeasurementMode::Analytic,
                ..EngineConfig::default()
            },
            days: 1,
            spikes_per_day: 2,
            peak_intensity_cores: 12,
        },
    ));
    points
}

fn jsonl(results: &[SweepResult]) -> String {
    let mut s = String::new();
    for r in results {
        s.push_str(&serde_json::to_string(r).expect("result serializes"));
        s.push('\n');
    }
    s
}

#[test]
fn golden_sweep_results_are_byte_identical_at_any_jobs() {
    let serial = run_sweep(sweep_points(), 7, 1);
    check("sweep.jsonl", &jsonl(&serial));
    // Jobs-invariance against the same golden bytes: the parallel executor
    // must reproduce the serial capture exactly.
    let parallel = run_sweep(sweep_points(), 7, 4);
    check("sweep.jsonl", &jsonl(&parallel));
}

#[test]
fn golden_chaos_lines_are_byte_identical() {
    // The `greensprint chaos` shape: fault-plan bursts through the
    // executor, one JSON line per run.
    let start = SimTime::from_hours(11);
    let dur = SimDuration::from_mins(5);
    let mut points = Vec::new();
    for r in 0..3u64 {
        let plan = FaultPlan::generate(derive_seed(42, r), start, dur, 3);
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: dur,
            measurement: MeasurementMode::Analytic,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        };
        points.push(SweepPoint::burst(format!("chaos/golden/plan{r}"), cfg));
    }
    let results = run_sweep(points, 7, 2);
    check("chaos.jsonl", &jsonl(&results));
}

/// The `serve --sim-time` metrics stream for a disturbed run, captured
/// as golden bytes — then reproduced byte-for-byte with the network
/// plane listening and a client injecting frames mid-run. Sim-time
/// ingest is counted by the plane but never routed into the stream;
/// this is the determinism contract the net layer must honor.
#[test]
fn golden_serve_metrics_are_byte_identical_with_and_without_networking() {
    use std::sync::{Arc, OnceLock};

    let dir = std::env::temp_dir().join(format!("gs-golden-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let cfg = EngineConfig {
        burst_duration: SimDuration::from_mins(30),
        measurement: MeasurementMode::Analytic,
        seed: SEEDS[0],
        ..EngineConfig::default()
    };
    let n_epochs = cfg.burst_duration.div_duration(cfg.epoch).unwrap();
    let args = |metrics: PathBuf| ServeArgs {
        cfg: cfg.clone(),
        options: ServeOptions {
            disturbances: Some(DisturbancePlan::generate(3, n_epochs)),
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sim,
        metrics_path: Some(metrics),
        ..ServeArgs::default()
    };

    let quiet = dir.join("quiet.jsonl");
    let summary = serve(args(quiet.clone())).expect("quiet serve");
    assert_eq!(summary.audit_violations, 0);
    let quiet_text = std::fs::read_to_string(&quiet).expect("metrics written");
    check("serve_metrics.jsonl", &quiet_text);

    // Same run with listeners up and a client hammering the ingest
    // port: the stream must still hit the same golden bytes.
    let ready: Arc<OnceLock<NetAddrs>> = Arc::new(OnceLock::new());
    let client = {
        let ready = ready.clone();
        std::thread::spawn(move || {
            use std::io::Write as _;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
            let addr = loop {
                if let Some(a) = ready.get().and_then(|a| a.listen) {
                    break a;
                }
                assert!(std::time::Instant::now() < deadline, "plane never bound");
                std::thread::sleep(std::time::Duration::from_millis(2));
            };
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            for k in 0..20 {
                let frame: &[u8] = if k % 3 == 2 {
                    b"gibberish\n"
                } else {
                    b"123.0\n"
                };
                if s.write_all(frame).is_err() {
                    break;
                }
            }
        })
    };
    let noisy = dir.join("noisy.jsonl");
    let mut noisy_args = args(noisy.clone());
    noisy_args.throttle_ms = 5; // pacing only; never enters the stream
    noisy_args.net = Some(NetConfig {
        listen: Some("127.0.0.1:0".to_string()),
        ready: Some(ready.clone()),
        ..NetConfig::default()
    });
    let summary = serve(noisy_args).expect("noisy serve");
    client.join().expect("client thread");
    let net = summary.net.expect("net summary present");
    assert!(
        net.frames_received > 0,
        "the client's frames landed: {net:?}"
    );
    let noisy_text = std::fs::read_to_string(&noisy).expect("metrics written");
    check("serve_metrics.jsonl", &noisy_text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_outcomes_survive_snapshot_resume() {
    // One seed per family: snapshot mid-run, resume from the captured
    // state, and require the resumed outcome to hit the same golden bytes
    // as the uninterrupted run.
    for family in ["plain", "faults", "fleet"] {
        let cfg = family_cfg(family, SEEDS[0]);
        let fixture = fixture_dir().join(format!("burst_{family}_seed{}.json", SEEDS[0]));
        let mut snaps: Vec<EngineSnapshot> = Vec::new();
        let (uninterrupted, _, _) = Engine::try_new(cfg)
            .expect("valid golden config")
            .run_full_with_snapshots(3, &mut |s| snaps.push(s.clone()))
            .expect("analytic run snapshots");
        let golden = serde_json::to_string(&uninterrupted).expect("outcome serializes");
        if !regen() {
            let expected = std::fs::read_to_string(&fixture)
                .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", fixture.display()));
            assert_eq!(
                expected, golden,
                "{family}: snapshotting run diverged from golden bytes"
            );
        }
        assert!(
            snaps.len() >= 2,
            "{family}: expected multiple snapshots, got {}",
            snaps.len()
        );
        let mid = snaps[snaps.len() / 2].clone();
        match resume_snapshot(mid, 3, &mut |_| {}).expect("resume") {
            ResumedRun::Burst { outcome, .. } => {
                let resumed = serde_json::to_string(&outcome).expect("outcome serializes");
                assert_eq!(
                    golden, resumed,
                    "{family}: resume from mid-run snapshot broke byte-identity"
                );
            }
            other => panic!("expected burst resume, got {other:?}"),
        }
    }
}
