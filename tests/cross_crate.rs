//! End-to-end flows that span multiple crates: the control plane against
//! a sysfs tree, DES-vs-analytic agreement, determinism, energy
//! accounting, and serialization of experiment artifacts.

use greensprint_repro::cluster::control::{ServerControl, SysfsControl};
use greensprint_repro::prelude::*;
use greensprint_repro::workload::des::ServerSim;

fn quick(strategy: Strategy, measurement: MeasurementMode, seed: u64) -> BurstOutcome {
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(10),
        measurement,
        seed,
        ..EngineConfig::default()
    };
    Engine::new(cfg).run()
}

#[test]
fn engine_decisions_drive_a_sysfs_control_plane() {
    // The engine's chosen settings can be applied verbatim through the
    // cpufreq/hotplug file formats — what a real deployment would do.
    let root = std::env::temp_dir().join(format!("gs-e2e-sysfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut control = SysfsControl::create_fake_tree(&root).expect("fake sysfs tree");

    let out = quick(Strategy::Hybrid, MeasurementMode::Analytic, 3);
    assert!(!out.epochs.is_empty());
    for epoch in &out.epochs {
        control.apply(epoch.setting).expect("apply setting");
        let read_back = control.read().expect("read setting");
        assert_eq!(read_back, epoch.setting, "at {}", epoch.t);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn des_and_analytic_agree_on_the_headline() {
    let a = quick(Strategy::Hybrid, MeasurementMode::Analytic, 3);
    let d = quick(Strategy::Hybrid, MeasurementMode::Des, 3);
    let rel = (a.speedup_vs_normal - d.speedup_vs_normal).abs() / a.speedup_vs_normal;
    assert!(
        rel < 0.12,
        "analytic {} vs DES {}",
        a.speedup_vs_normal,
        d.speedup_vs_normal
    );
}

#[test]
fn runs_are_deterministic_and_seed_sensitive() {
    let a = quick(Strategy::Greedy, MeasurementMode::Des, 9);
    let b = quick(Strategy::Greedy, MeasurementMode::Des, 9);
    assert_eq!(a.mean_goodput_rps, b.mean_goodput_rps);
    assert_eq!(a.battery_used_wh, b.battery_used_wh);
    let c = quick(Strategy::Greedy, MeasurementMode::Des, 10);
    assert_ne!(a.mean_goodput_rps, c.mean_goodput_rps);
}

#[test]
fn battery_energy_is_bounded_by_the_packs() {
    // Whatever the controller does, the discharged energy cannot exceed
    // the rack's usable storage (plus what renewable surplus recharged).
    let out = quick(Strategy::Greedy, MeasurementMode::Analytic, 4);
    let spec = GreenConfig::re_batt().battery_spec().unwrap();
    let hard_cap = 3.0 * spec.usable_energy_wh() + out.re_charged_wh;
    assert!(
        out.battery_used_wh <= hard_cap + 1.0,
        "battery {} vs cap {hard_cap}",
        out.battery_used_wh
    );
}

#[test]
fn outcome_serializes_to_json() {
    let out = quick(Strategy::Pacing, MeasurementMode::Analytic, 5);
    let json = serde_json::to_string(&out).expect("serialize outcome");
    assert!(json.contains("speedup_vs_normal"));
    let back: greensprint_repro::core::engine::BurstOutcome =
        serde_json::from_str(&json).expect("deserialize outcome");
    assert_eq!(back.epochs.len(), out.epochs.len());
    assert_eq!(back.speedup_vs_normal, out.speedup_vs_normal);
}

#[test]
fn solar_trace_to_battery_to_pss_chain() {
    // Exercise the power substrate as one chain, independent of the
    // engine: a day of generated weather feeds a PV array; the PSS plans
    // each hour against a battery; sources always balance demand.
    use greensprint_repro::power::pss::PowerSourceSelector;
    let mut rng = SimRng::seed_from_u64(8);
    let trace = SolarTrace::generate(1, &WeatherModel::default(), &mut rng);
    let pv = PvArray::paper_spec(3);
    let mut battery = Battery::new_full(BatterySpec::paper_batt());
    let pss = PowerSourceSelector::new();
    let demand = 155.0;
    for hour in 0..24 {
        let t = SimTime::from_hours(hour);
        let re = pv.output_at(&trace, t);
        let plan = pss.plan(
            demand,
            re,
            battery.sustainable_power(SimDuration::from_hours(1)),
            battery.spec().max_charge_power_w(),
            0.0,
        );
        // Delivered + unmet always equals demand.
        assert!(
            (plan.delivered_w() + plan.unmet_w - demand).abs() < 1e-9,
            "hour {hour}"
        );
        battery.discharge(plan.battery_w, SimDuration::from_hours(1));
        battery.charge(plan.re_to_charge_w, SimDuration::from_hours(1));
        assert!(battery.soc_fraction() >= 1.0 - battery.spec().max_dod - 1e-9);
    }
}

#[test]
fn csv_trace_replays_through_the_engine() {
    // A user-supplied irradiance CSV (NREL-style, W/m² per minute) drives
    // the same engine path as the synthetic generator.
    use greensprint_repro::power::trace_io;
    let mut csv = String::from("minute,ghi_w_m2\n");
    for minute in 0..24 * 60 {
        // A synthetic clear noon ramp: full sun 10:00–14:00.
        let h = minute as f64 / 60.0;
        let ghi = if (10.0..14.0).contains(&h) {
            1000.0
        } else {
            0.0
        };
        csv.push_str(&format!("{minute},{ghi}\n"));
    }
    let trace = trace_io::parse_csv(&csv).expect("valid CSV");
    let cfg = EngineConfig {
        trace_override: Some(trace),
        availability: AvailabilityLevel::Minimum, // overridden
        burst_duration: SimDuration::from_mins(10),
        burst_start_hour: 11.0, // inside the CSV's sunny window
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let out = Engine::new(cfg).run();
    // Full sun at 11:00: the replayed trace powers a full sprint even
    // though the configured availability level says "Minimum".
    assert!(
        out.speedup_vs_normal > 4.0,
        "speedup {}",
        out.speedup_vs_normal
    );
    assert!(out.re_used_wh > 0.0);
}

#[test]
fn wind_generation_powers_nighttime_sprints() {
    // Wind, unlike solar, blows at 2 a.m.: the same engine sprints on a
    // wind-farm trace at an hour where every solar configuration is dark.
    use greensprint_repro::power::wind::WindModel;
    let windy = WindModel {
        weibull_scale_ms: 11.0, // brisk site so the burst window has power
        ..WindModel::default()
    };
    // Seed chosen so the 2 a.m. window is actually windy (~0.67 of rated).
    let trace = windy.generate(1, &mut SimRng::seed_from_u64(14));
    let night_cfg = |trace_override| EngineConfig {
        trace_override,
        green: GreenConfig::re_only(), // no battery: generation or nothing
        availability: AvailabilityLevel::Minimum,
        burst_duration: SimDuration::from_mins(15),
        burst_start_hour: 2.0,
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let wind = Engine::new(night_cfg(Some(trace))).run();
    let solar = Engine::new(night_cfg(None)).run();
    assert!(
        (solar.speedup_vs_normal - 1.0).abs() < 0.05,
        "dark solar night"
    );
    assert!(
        wind.speedup_vs_normal > 1.5,
        "wind at night only reached {}",
        wind.speedup_vs_normal
    );
}

#[test]
fn backlog_carries_across_epochs_in_the_measurement_plane() {
    let app = Application::SpecJbb.profile();
    let mut sim = ServerSim::new(SimRng::seed_from_u64(1));
    // Saturate at Normal, then sprint: the backlog drains faster.
    sim.advance_epoch(
        &app,
        ServerSetting::normal(),
        500.0,
        f64::INFINITY,
        SimDuration::from_secs(10),
    );
    let backlog = sim.backlog();
    assert!(backlog > 0);
    sim.advance_epoch(
        &app,
        ServerSetting::max_sprint(),
        0.0,
        0.0,
        SimDuration::from_secs(20),
    );
    assert!(sim.backlog() < backlog);
}

#[test]
fn extension_outcomes_serialize_to_json() {
    use greensprint_repro::core::cluster_view::{run_cluster, GridSprintPolicy};
    use greensprint_repro::core::datacenter::{run_datacenter, DatacenterConfig, RackSpec};
    let template = EngineConfig {
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(5),
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let cluster = run_cluster(&template, GridSprintPolicy::SubOptimal);
    let json = serde_json::to_string(&cluster).unwrap();
    assert!(json.contains("cluster_speedup_vs_normal"));

    let dc = run_datacenter(&DatacenterConfig {
        racks: vec![RackSpec {
            app: Application::SpecJbb,
            green: GreenConfig::re_batt(),
            strategy: Strategy::Hybrid,
        }],
        template: template.clone(),
        site_fault_plan: None,
    });
    let json = serde_json::to_string(&dc).unwrap();
    let back: greensprint_repro::core::datacenter::DatacenterOutcome =
        serde_json::from_str(&json).unwrap();
    assert_eq!(back.racks.len(), 1);

    // And the full EngineConfig round-trips, enabling scenario files.
    let cfg_json = serde_json::to_string(&template).unwrap();
    let back: EngineConfig = serde_json::from_str(&cfg_json).unwrap();
    assert_eq!(back.seed, template.seed);
    assert_eq!(back.green.name, template.green.name);
}

#[test]
fn normal_strategy_speedup_is_identity() {
    let out = quick(Strategy::Normal, MeasurementMode::Analytic, 6);
    assert!((out.speedup_vs_normal - 1.0).abs() < 1e-9);
    assert_eq!(out.mean_goodput_rps, out.normal_baseline_rps);
}

#[test]
fn engine_monitor_matches_outcome_epochs() {
    let cfg = EngineConfig {
        measurement: MeasurementMode::Analytic,
        burst_duration: SimDuration::from_mins(7),
        ..EngineConfig::default()
    };
    let (out, monitor) = Engine::new(cfg).run_with_monitor();
    assert_eq!(out.epochs.len(), 7);
    assert_eq!(monitor.goodput().len(), 7);
    for e in &out.epochs {
        let m = monitor.re_supply().sample_at(e.t).unwrap();
        assert_eq!(m, e.re_supply_w);
    }
}
