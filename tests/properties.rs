//! Property-based tests over the core invariants, spanning crates.

use greensprint_repro::prelude::*;
use greensprint_repro::workload::queueing::{erlang_c, lognormal_quantile, Station};
use proptest::prelude::{prop, prop_assert, proptest, ProptestConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DoD floor is inviolable under any discharge schedule.
    #[test]
    fn battery_never_crosses_dod_floor(
        powers in prop::collection::vec(0.0_f64..800.0, 1..40),
        capacity in 2.0_f64..30.0,
    ) {
        let mut b = Battery::new_full(BatterySpec::paper_vrla(capacity));
        for p in powers {
            b.discharge(p, SimDuration::from_mins(3));
            prop_assert!(b.soc_fraction() >= 1.0 - b.spec().max_dod - 1e-9);
            prop_assert!(b.soc_fraction() <= 1.0 + 1e-12);
        }
    }

    /// Charging and discharging conserve bounded state under interleaving.
    #[test]
    fn battery_interleaved_cycles_stay_bounded(
        ops in prop::collection::vec((0.0_f64..400.0, prop::bool::ANY), 1..60),
    ) {
        let mut b = Battery::new_full(BatterySpec::paper_batt());
        let mut discharged_total = 0.0;
        for (power, charge) in ops {
            if charge {
                let drawn = b.charge(power, SimDuration::from_mins(2));
                prop_assert!(drawn <= power + 1e-9);
            } else {
                let out = b.discharge(power, SimDuration::from_mins(2));
                discharged_total += out.delivered_wh;
            }
            prop_assert!((0.0..=1.0 + 1e-12).contains(&b.soc_fraction()));
        }
        // Equivalent-cycle accounting is consistent with throughput.
        prop_assert!(b.equivalent_cycles() >= 0.0);
        if discharged_total == 0.0 {
            prop_assert!(b.equivalent_cycles() < 1e-12);
        }
    }

    /// Peukert: sustainable power is antitone in duration, and the
    /// duration/power inversion is self-consistent.
    #[test]
    fn battery_sustainable_power_is_antitone(
        mins_a in 1_u64..600, mins_b in 1_u64..600,
    ) {
        let b = Battery::new_full(BatterySpec::paper_batt());
        let (short, long) = if mins_a <= mins_b { (mins_a, mins_b) } else { (mins_b, mins_a) };
        let p_short = b.sustainable_power(SimDuration::from_mins(short));
        let p_long = b.sustainable_power(SimDuration::from_mins(long));
        prop_assert!(p_short >= p_long - 1e-9, "{p_short} vs {p_long}");
    }

    /// The PSS plan always balances: delivered + unmet == demand, and no
    /// source exceeds what was offered.
    #[test]
    fn pss_plan_balances(
        demand in 0.0_f64..2000.0,
        re in 0.0_f64..2000.0,
        batt in 0.0_f64..1000.0,
        accept in 0.0_f64..500.0,
    ) {
        use greensprint_repro::power::pss::PowerSourceSelector;
        let plan = PowerSourceSelector::new().plan(demand, re, batt, accept, 0.0);
        prop_assert!((plan.delivered_w() + plan.unmet_w - demand).abs() < 1e-6);
        prop_assert!(plan.re_used_w <= re + 1e-9);
        prop_assert!(plan.battery_w <= batt + 1e-9);
        prop_assert!(plan.re_to_charge_w <= accept + 1e-9);
        prop_assert!(plan.re_used_w + plan.re_to_charge_w + plan.curtailed_w <= re + 1e-6);
        prop_assert!(plan.unmet_w >= -1e-12);
    }

    /// SLO capacity is monotone in both sprint knobs for every app.
    #[test]
    fn slo_capacity_is_monotone_in_the_knobs(
        cores in 6_u8..12, freq in 0_u8..8,
    ) {
        for app in [Application::SpecJbb, Application::WebSearch, Application::Memcached] {
            let p = app.profile();
            let here = p.slo_capacity(ServerSetting::new(cores, freq));
            let more_freq = p.slo_capacity(ServerSetting::new(cores, freq + 1));
            prop_assert!(more_freq >= here - 1e-6, "{app:?} freq step at {cores}c/{freq}");
        }
    }

    /// Erlang-C is a probability and increases with offered load.
    #[test]
    fn erlang_c_is_probability_and_monotone(
        c in 1_u32..32, rho_a in 0.01_f64..0.99, rho_b in 0.01_f64..0.99,
    ) {
        let (lo, hi) = if rho_a <= rho_b { (rho_a, rho_b) } else { (rho_b, rho_a) };
        let p_lo = erlang_c(c, lo * c as f64);
        let p_hi = erlang_c(c, hi * c as f64);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_hi >= p_lo - 1e-12);
    }

    /// Log-normal quantiles are monotone in p and bracket the median.
    #[test]
    fn lognormal_quantiles_are_monotone(
        mean in 0.001_f64..10.0, cv in 0.05_f64..2.0,
        p1 in 0.01_f64..0.99, p2 in 0.01_f64..0.99,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let q_lo = lognormal_quantile(mean, cv, lo);
        let q_hi = lognormal_quantile(mean, cv, hi);
        prop_assert!(q_lo > 0.0);
        prop_assert!(q_hi >= q_lo);
    }

    /// The sojourn tail is a probability, monotone in load.
    #[test]
    fn sojourn_tail_behaves(
        cores in 1_u32..16, service_ms in 1.0_f64..300.0, frac in 0.05_f64..0.95,
    ) {
        let st = Station { cores, mean_service_s: service_ms / 1e3, service_cv: 0.3 };
        let lam = frac * st.raw_capacity();
        let t = st.sojourn_tail(lam, service_ms / 1e3 * 3.0);
        prop_assert!((0.0..=1.0).contains(&t));
        let t_heavier = st.sojourn_tail((frac * 0.5 + 0.5) * st.raw_capacity(), service_ms / 1e3 * 3.0);
        prop_assert!(t_heavier >= t - 1e-9);
    }

    /// Speedups over Normal are never below ~1: sprinting can idle back to
    /// Normal mode but never does worse (analytic plane, any seed).
    #[test]
    fn engine_never_underperforms_normal(seed in 0_u64..32) {
        let cfg = EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_sbatt(),
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            seed,
            ..EngineConfig::default()
        };
        let out = Engine::new(cfg).run();
        prop_assert!(out.speedup_vs_normal >= 0.99, "seed {seed}: {}", out.speedup_vs_normal);
    }

    /// Energy accounting closes for arbitrary seeds: renewable production
    /// equals use + storage + curtailment (within tolerance).
    #[test]
    fn engine_energy_accounting_closes(seed in 0_u64..24) {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(8),
            measurement: MeasurementMode::Analytic,
            seed,
            ..EngineConfig::default()
        };
        let out = Engine::new(cfg).run();
        let epoch_hours = 1.0 / 60.0;
        let produced: f64 = out.epochs.iter().map(|e| e.re_supply_w * epoch_hours).sum();
        let accounted = out.re_used_wh + out.re_charged_wh + out.curtailed_wh;
        prop_assert!(
            (produced - accounted).abs() <= produced * 0.02 + 1.0,
            "produced {produced} vs {accounted}"
        );
    }
}
