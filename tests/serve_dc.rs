//! End-to-end tests for multi-rack `greensprint serve`: supervised
//! rack-worker isolation (an injected panic or stall recovers via a
//! bounded restart-from-snapshot with byte-identical aggregate metrics),
//! quarantine + conserved rerouting within two epochs, whole-daemon v2
//! snapshots (drain/SIGKILL + `--resume` byte-identity, including
//! mid-rack-outage), the tick watchdog, and a golden multi-rack stream.

use greensprint_repro::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-serve-dc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn serve_cfg(minutes: u64) -> EngineConfig {
    EngineConfig {
        burst_duration: SimDuration::from_mins(minutes),
        measurement: MeasurementMode::Analytic,
        seed: 11,
        ..EngineConfig::default()
    }
}

/// Multi-rack `--sim-time` args with a hand-written disturbance plan
/// (`DisturbancePlan::generate` never schedules rack faults, so every
/// rack-fault test constructs its plan explicitly).
fn dc_args(cfg: EngineConfig, racks: u32, plan: DisturbancePlan) -> ServeArgs {
    ServeArgs {
        cfg,
        options: ServeOptions {
            disturbances: Some(plan),
            snapshot_every: 5,
            racks,
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sim,
        ..ServeArgs::default()
    }
}

#[test]
fn multi_rack_clean_run_reports_rack_counters() {
    let dir = tmp_dir("clean");
    let metrics = dir.join("metrics.jsonl");

    let mut args = dc_args(serve_cfg(12), 3, DisturbancePlan::default());
    args.metrics_path = Some(metrics.clone());
    let summary = serve(args).expect("clean multi-rack serve");

    assert_eq!(summary.epochs_executed, 12);
    assert_eq!(summary.racks, 3);
    assert_eq!(summary.rack_restarts, 0);
    assert_eq!(summary.rack_panics, 0);
    assert_eq!(summary.rack_stalls, 0);
    assert_eq!(summary.racks_quarantined, 0);
    assert_eq!(summary.rerouted_epochs, 0);
    assert_eq!(summary.audit_violations, 0, "{summary:?}");
    assert_eq!(summary.rack_health, vec![RackHealth::Live; 3]);
    assert_ne!(summary.floor_held, Some(false), "{summary:?}");

    // One aggregate line per epoch; per-rack topics are hub-only and
    // must never leak into the durable stream.
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert_eq!(text.lines().count(), 12);
    assert!(
        !text.contains("{\"rack\":"),
        "per-rack topic lines leaked into the aggregate file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole determinism contract: a worker panic *and* a worker
/// stall, each recovered by a restart-from-snapshot that replays the
/// directive history, leave the aggregate `--sim-time` stream
/// byte-identical to an unfaulted run.
#[test]
fn injected_rack_faults_recover_byte_identical() {
    let dir = tmp_dir("faults");
    let clean = dir.join("clean.jsonl");
    let faulted = dir.join("faulted.jsonl");

    let mut want = dc_args(serve_cfg(16), 3, DisturbancePlan::default());
    want.metrics_path = Some(clean.clone());
    let want = serve(want).expect("unfaulted multi-rack serve");
    assert_eq!(want.epochs_executed, 16);

    let plan = DisturbancePlan {
        rack_panics: vec![(3, 1)],
        rack_stalls: vec![(7, 2)],
        ..DisturbancePlan::default()
    };
    let mut got = dc_args(serve_cfg(16), 3, plan);
    got.metrics_path = Some(faulted.clone());
    let got = serve(got).expect("faulted multi-rack serve");

    assert_eq!(got.rack_panics, 1, "{got:?}");
    assert_eq!(got.rack_stalls, 1, "{got:?}");
    assert_eq!(got.rack_restarts, 2, "one restart per injected death");
    assert_eq!(got.racks_quarantined, 0);
    assert_eq!(got.rerouted_epochs, 0, "recovered racks never reroute");
    assert_eq!(got.audit_violations, 0);
    assert!(
        got.rack_events.iter().any(|e| e.contains("restart")),
        "supervision log records the restarts: {:?}",
        got.rack_events
    );

    let want_bytes = std::fs::read(&clean).unwrap();
    let got_bytes = std::fs::read(&faulted).unwrap();
    assert!(!want_bytes.is_empty());
    assert_eq!(
        want_bytes, got_bytes,
        "a recovered rack restart changed the aggregate stream bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart-budget exhaustion quarantines the rack and the broker's
/// conserved factors route its load to the survivors by the next epoch
/// (the ≤ 2-epoch failover bar), with zero conservation-audit
/// violations.
#[test]
fn exhausted_restarts_quarantine_and_reroute_within_two_epochs() {
    let dir = tmp_dir("quarantine");
    let snap = dir.join("snap.json");

    let plan = DisturbancePlan {
        rack_panics: vec![(3, 1)],
        ..DisturbancePlan::default()
    };
    let mut args = dc_args(serve_cfg(12), 3, plan);
    args.options.rack_restarts = 0;
    args.snapshot_path = Some(snap.clone());
    args.drain_after_epochs = Some(8);
    let summary = serve(args).expect("quarantine serve");

    assert!(summary.drained);
    assert_eq!(summary.racks_quarantined, 1, "{summary:?}");
    assert_eq!(summary.rack_health[1], RackHealth::Quarantined);
    assert_eq!(summary.rack_health[0], RackHealth::Live);
    assert_eq!(summary.audit_violations, 0, "{summary:?}");
    assert_eq!(
        summary.rerouted_epochs, 4,
        "panic at epoch 3 reroutes epochs 4..8: {summary:?}"
    );
    assert!(
        summary.rack_events.iter().any(|e| e.contains("quarantin")),
        "supervision log records the quarantine: {:?}",
        summary.rack_events
    );

    // The drained v2 snapshot's directive log shows the failover
    // landing within two epochs of the death: the dead rack's factor
    // collapses to zero and the survivors absorb its load.
    let snap = ServeSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap())
        .expect("v2 snapshot parses");
    assert_eq!(snap.schema, SERVE_SCHEMA_V2);
    let dc = snap.dc.expect("v2 snapshot carries orchestrator state");
    assert_eq!(dc.rows.len(), 8, "one directive row per executed epoch");
    assert!(
        dc.rows[3].factors[1] > 0.5,
        "the panic epoch itself was still routed normally: {:?}",
        dc.rows[3]
    );
    let rerouted = &dc.rows[4];
    assert!(
        rerouted.factors[1] <= 0.01,
        "dead rack not dark by epoch 4: {rerouted:?}"
    );
    assert!(
        rerouted.factors.iter().any(|&f| f > 1.01),
        "survivors absorbed no load: {rerouted:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drain + `--resume` mid-rack-outage: a daemon checkpointed *while* a
/// rack is quarantined resumes to a stream byte-identical to the same
/// faulted run executed without interruption.
#[test]
fn drain_resume_mid_quarantine_is_byte_identical() {
    let dir = tmp_dir("resume-quarantine");
    let full = dir.join("full.jsonl");
    let part = dir.join("part.jsonl");
    let snap = dir.join("snap.json");
    let plan = DisturbancePlan {
        rack_panics: vec![(3, 1)],
        ..DisturbancePlan::default()
    };

    let mut uninterrupted = dc_args(serve_cfg(20), 3, plan.clone());
    uninterrupted.options.rack_restarts = 0;
    uninterrupted.metrics_path = Some(full.clone());
    let want = serve(uninterrupted).expect("uninterrupted faulted serve");
    assert_eq!(want.racks_quarantined, 1);
    assert_eq!(want.epochs_executed, 20);

    let mut first = dc_args(serve_cfg(20), 3, plan);
    first.options.rack_restarts = 0;
    first.metrics_path = Some(part.clone());
    first.snapshot_path = Some(snap.clone());
    first.drain_after_epochs = Some(6);
    let drained = serve(first).expect("drained serve");
    assert!(drained.drained);
    assert_eq!(drained.racks_quarantined, 1, "outage predates the drain");

    let resumed = serve(ServeArgs {
        metrics_path: Some(part.clone()),
        resume_path: Some(snap.clone()),
        control: ControlBackend::Sim,
        sim_time: true,
        ..ServeArgs::default()
    })
    .expect("resumed serve");
    assert_eq!(resumed.resumed_from_epoch, Some(6));
    assert_eq!(resumed.epochs_executed, 20);
    assert_eq!(resumed.racks, 3, "rack count rides the snapshot");
    assert_eq!(
        resumed.rack_health[1],
        RackHealth::Quarantined,
        "quarantine survives the restart"
    );
    assert_eq!(resumed.audit_violations, 0);

    let want_bytes = std::fs::read(&full).unwrap();
    let got_bytes = std::fs::read(&part).unwrap();
    assert!(!want_bytes.is_empty());
    assert_eq!(
        want_bytes, got_bytes,
        "drain + resume mid-quarantine changed the stream bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL (no drain, no destructor) on a multi-rack daemon, then
/// `--resume` from the periodic v2 snapshot: bytes identical to an
/// uninterrupted run.
#[test]
fn multi_rack_sigkilled_then_resumed_stream_is_byte_identical() {
    let dir = tmp_dir("sigkill");
    let full = dir.join("full.jsonl");
    let part = dir.join("part.jsonl");
    let snap = dir.join("snap.json");
    let base = [
        "serve",
        "--sim-time",
        "--analytic",
        "--minutes",
        "30",
        "--seed",
        "11",
        "--disturb-seed",
        "3",
        "--control",
        "sim",
        "--snapshot-every",
        "5",
        "--racks",
        "3",
    ];

    let status = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(base)
        .args(["--metrics", full.to_str().unwrap()])
        .status()
        .expect("uninterrupted run");
    assert!(status.success());

    // Throttled purely so SIGKILL lands mid-stream; pacing never enters
    // the metrics bytes.
    let mut child = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(base)
        .args(["--metrics", part.to_str().unwrap()])
        .args(["--snapshot", snap.to_str().unwrap()])
        .args(["--throttle-ms", "40"])
        .spawn()
        .expect("throttled run");
    std::thread::sleep(std::time::Duration::from_millis(700));
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    assert!(
        snap.exists(),
        "the run died before its first snapshot; raise the sleep"
    );
    let text = std::fs::read_to_string(&snap).unwrap();
    assert!(
        text.contains(SERVE_SCHEMA_V2),
        "multi-rack daemon wrote a v1 snapshot"
    );

    let status = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args([
            "serve",
            "--sim-time",
            "--control",
            "sim",
            "--resume",
            snap.to_str().unwrap(),
            "--metrics",
            part.to_str().unwrap(),
        ])
        .status()
        .expect("resumed run");
    assert!(status.success());

    let want_bytes = std::fs::read(&full).unwrap();
    let got_bytes = std::fs::read(&part).unwrap();
    assert_eq!(
        want_bytes, got_bytes,
        "SIGKILL + resume changed the multi-rack stream bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A wedged site tick trips the watchdog: counted, logged through the
/// guardrail, and answered with a one-rung ladder demotion on the next
/// epoch.
#[test]
fn watchdog_stall_is_counted_and_demotes() {
    let mut cfg = serve_cfg(12);
    cfg.guardrail.enabled = true;
    let plan = DisturbancePlan {
        wedges: vec![4],
        ..DisturbancePlan::default()
    };
    let summary = serve(ServeArgs {
        cfg,
        options: ServeOptions {
            disturbances: Some(plan),
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sim,
        ..ServeArgs::default()
    })
    .expect("wedged serve");

    assert_eq!(summary.epochs_executed, 12);
    assert_eq!(summary.watchdog_stalls, 1, "{summary:?}");
    assert!(
        summary
            .guardrail_events
            .iter()
            .any(|e| e.contains("watchdog")),
        "watchdog demotion missing from the guardrail log: {:?}",
        summary.guardrail_events
    );
    assert!(summary.ladder_level >= 1, "{summary:?}");
}

/// `--racks >= 2` cannot drive one physical rack's sysfs tree.
#[test]
fn multi_rack_rejects_sysfs_control() {
    let err = serve(ServeArgs {
        cfg: serve_cfg(5),
        options: ServeOptions {
            racks: 2,
            ..ServeOptions::default()
        },
        sim_time: true,
        control: ControlBackend::Sysfs(std::env::temp_dir().join("gs-serve-dc-sysfs")),
        ..ServeArgs::default()
    })
    .expect_err("sysfs multi-rack must be rejected");
    assert!(
        matches!(&err, ServeError::Config(m) if m.contains("sysfs")),
        "{err:?}"
    );
}

/// The multi-rack aggregate stream for a disturbed (stale/overrun)
/// 3-rack run, pinned as golden bytes. Regenerate only when the
/// intended stream changes: `GOLDEN_REGEN=1 cargo test --test serve_dc`.
#[test]
fn golden_multi_rack_stream_is_byte_identical() {
    let dir = tmp_dir("golden");
    let metrics = dir.join("metrics.jsonl");

    let cfg = serve_cfg(20);
    let n_epochs = cfg.burst_duration.div_duration(cfg.epoch).unwrap();
    let mut args = dc_args(cfg, 3, DisturbancePlan::generate(3, n_epochs));
    args.metrics_path = Some(metrics.clone());
    let summary = serve(args).expect("golden multi-rack serve");
    assert_eq!(summary.audit_violations, 0);

    let actual = std::fs::read_to_string(&metrics).unwrap();
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_dc_metrics.jsonl");
    if std::env::var_os("GOLDEN_REGEN").is_some_and(|v| v == "1") {
        std::fs::write(&fixture, &actual).expect("write fixture");
    } else {
        let expected = std::fs::read_to_string(&fixture)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", fixture.display()));
        assert_eq!(
            expected, actual,
            "multi-rack serve stream diverged from golden bytes \
             (if the change is intended, regenerate with GOLDEN_REGEN=1)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
