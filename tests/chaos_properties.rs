//! Property tests for fault injection: under *any* seeded `FaultPlan`,
//! the controller degrades — it never collapses below the Normal floor
//! and never overdraws the grid cap.

use greensprint_repro::prelude::*;
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn chaos_cfg(strategy: Strategy, plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(5),
        measurement: MeasurementMode::Analytic,
        fault_plan: Some(plan),
        ..EngineConfig::default()
    }
}

fn generate(seed: u64) -> FaultPlan {
    FaultPlan::generate(seed, SimTime::from_hours(11), SimDuration::from_mins(5), 3)
}

fn generate_poison(seed: u64) -> FaultPlan {
    FaultPlan::generate_poison(seed, SimTime::from_hours(11), SimDuration::from_mins(5))
}

/// A seeded crash/flap/straggler plan over a 10-minute burst window.
fn generate_fleet(seed: u64) -> FaultPlan {
    FaultPlan::generate_fleet(
        seed,
        SimTime::from_hours(11),
        SimDuration::from_mins(10),
        3,
        FleetMix::default(),
    )
}

fn fleet_cfg(strategy: Strategy, plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        burst_duration: SimDuration::from_mins(10),
        ..chaos_cfg(strategy, plan)
    }
}

/// The poison property config: Hybrid (the only learned strategy, so the
/// only poisonable one) with the guardrail supervising it.
fn guarded_cfg(plan: FaultPlan) -> EngineConfig {
    let mut cfg = chaos_cfg(Strategy::Hybrid, plan);
    cfg.guardrail.enabled = true;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated plans are always well-formed.
    #[test]
    fn generated_plans_validate(seed in 0_u64..u64::MAX) {
        let plan = generate(seed);
        prop_assert!(plan.validate().is_ok(), "seed {seed}: {:?}", plan.validate());
        prop_assert!(!plan.events.is_empty());
    }

    /// Plans survive a JSON round trip bit-identically.
    #[test]
    fn plans_round_trip_through_json(seed in 0_u64..u64::MAX) {
        let plan = generate(seed);
        let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        prop_assert_eq!(plan, back);
    }

    /// The tentpole invariant: any seeded plan, any strategy — goodput
    /// stays at or above the Normal floor and the grid cap is never
    /// exceeded. Safe mode may cost sprint upside, never correctness.
    #[test]
    fn any_fault_plan_holds_the_floor(seed in 0_u64..10_000, strat in 0_usize..4) {
        let strategy = [
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Hybrid,
        ][strat];
        let out = Engine::new(chaos_cfg(strategy, generate(seed))).run();
        prop_assert!(
            out.speedup_vs_normal >= 0.99,
            "seed {seed} {strategy:?}: speedup {}",
            out.speedup_vs_normal
        );
        prop_assert!(out.floor_held, "seed {seed} {strategy:?}");
        prop_assert!(
            out.grid_overload_wh == 0.0,
            "seed {seed} {strategy:?}: overload {}",
            out.grid_overload_wh
        );
    }

    /// The runtime invariant auditor (on by default) watches every epoch
    /// of every chaos run — energy conservation, SoC bounds, the breaker
    /// cap, term non-negativity. No seeded fault plan may trip it: faults
    /// perturb the *inputs* the controller sees, never the physics.
    #[test]
    fn any_fault_plan_passes_the_invariant_audit(seed in 0_u64..10_000, strat in 0_usize..4) {
        let strategy = [
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Hybrid,
        ][strat];
        let out = Engine::new(chaos_cfg(strategy, generate(seed))).run();
        prop_assert!(
            out.audit_violations.is_empty(),
            "seed {seed} {strategy:?}: {} violation(s), first: {}",
            out.audit_violations.len(),
            out.audit_violations[0]
        );
    }

    /// Any seeded Q-table-poisoning plan trips the guardrail within the
    /// detection window: the corruption detector fires the epoch the
    /// poison lands, the ladder demotes at that epoch's boundary (so the
    /// failover steers no later than the following epoch), the offending
    /// table is quarantined, and the run still holds the Normal floor
    /// with a clean invariant audit.
    #[test]
    fn any_poison_plan_fails_over_and_holds_the_floor(seed in 0_u64..10_000) {
        let plan = generate_poison(seed);
        let first_at = plan
            .events
            .iter()
            .map(|e| e.at)
            .min()
            .expect("poison plans always carry at least one event");
        let start = SimTime::from_hours(11);
        let poison_epoch = ((first_at.as_secs_f64() - start.as_secs_f64()) / 60.0) as usize;
        let out = Engine::new(guarded_cfg(plan)).run();
        prop_assert!(out.failover_epochs > 0, "seed {seed}: guardrail never fired");
        prop_assert!(out.ladder_level >= 1, "seed {seed}");
        prop_assert!(out.quarantined_tables >= 1, "seed {seed}: table not quarantined");
        let first_failover = out.epochs.iter().position(|e| e.ladder_level > 0);
        prop_assert!(
            first_failover.is_some_and(|i| i <= poison_epoch + 2),
            "seed {seed}: poison at epoch {poison_epoch}, failover first steered at {first_failover:?}"
        );
        prop_assert!(out.floor_held, "seed {seed}");
        prop_assert!(
            out.grid_overload_wh == 0.0,
            "seed {seed}: overload {}",
            out.grid_overload_wh
        );
        prop_assert!(
            out.audit_violations.is_empty(),
            "seed {seed}: {} violation(s), first: {}",
            out.audit_violations.len(),
            out.audit_violations[0]
        );
    }

    /// Generated fleet plans are always well-formed for the rack they
    /// were sized for.
    #[test]
    fn generated_fleet_plans_validate(seed in 0_u64..u64::MAX) {
        let plan = generate_fleet(seed);
        prop_assert!(plan.validate().is_ok(), "seed {seed}: {:?}", plan.validate());
        prop_assert!(plan.validate_for(3).is_ok(), "seed {seed}: {:?}", plan.validate_for(3));
        prop_assert!(!plan.events.is_empty());
    }

    /// The degraded-fleet tentpole invariant: under any seeded
    /// crash/flap/straggler plan, any strategy, the survivors hold the
    /// Normal floor, the grid cap is never exceeded, and the invariant
    /// audit (which books dead servers at zero power and caps goodput by
    /// live capacity) stays clean.
    #[test]
    fn any_fleet_plan_holds_the_floor_and_audits_clean(seed in 0_u64..10_000, strat in 0_usize..4) {
        let strategy = [
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Hybrid,
        ][strat];
        let out = Engine::new(fleet_cfg(strategy, generate_fleet(seed))).run();
        prop_assert!(
            out.speedup_vs_normal >= 0.99,
            "seed {seed} {strategy:?}: speedup {}",
            out.speedup_vs_normal
        );
        prop_assert!(out.floor_held, "seed {seed} {strategy:?}");
        prop_assert!(
            out.grid_overload_wh == 0.0,
            "seed {seed} {strategy:?}: overload {}",
            out.grid_overload_wh
        );
        prop_assert!(
            out.audit_violations.is_empty(),
            "seed {seed} {strategy:?}: {} violation(s), first: {}",
            out.audit_violations.len(),
            out.audit_violations[0]
        );
    }

    /// Epoch goodput never exceeds what the live servers could possibly
    /// serve at the deepest sprint — crashed and probation servers must
    /// contribute nothing.
    #[test]
    fn fleet_goodput_respects_the_live_capacity_ceiling(seed in 0_u64..10_000) {
        let out = Engine::new(fleet_cfg(Strategy::Greedy, generate_fleet(seed))).run();
        let cap = ProfileTable::cached(Application::SpecJbb)
            .get(ServerSetting::max_sprint())
            .slo_capacity;
        for (k, e) in out.epochs.iter().enumerate() {
            let ceiling = f64::from(e.live_servers) * cap;
            prop_assert!(
                e.goodput_rps <= ceiling * (1.0 + 1e-9) + 1e-9,
                "seed {seed} epoch {k}: goodput {} > {} live servers x {cap}",
                e.goodput_rps,
                e.live_servers
            );
        }
    }

    /// `live_servers` is exactly the hysteresis function of physical
    /// liveness: a server counts as live iff it answered this epoch and
    /// the `REJOIN_EPOCHS` before it — so a downed server rejoins the
    /// plan precisely `REJOIN_EPOCHS` epochs after it comes back, never
    /// earlier and never later.
    #[test]
    fn rejoin_happens_exactly_at_the_hysteresis_window(seed in 0_u64..10_000) {
        let (out, monitor, _) =
            Engine::new(fleet_cfg(Strategy::Greedy, generate_fleet(seed))).run_full();
        let servers = monitor.server_live();
        prop_assert!(servers.len() == 3, "seed {seed}: {} streams", servers.len());
        let mut streaks = vec![REJOIN_EPOCHS; servers.len()];
        for (k, e) in out.epochs.iter().enumerate() {
            let mut live = 0u8;
            for (i, s) in servers.iter().enumerate() {
                let up = s.points()[k].1 > 0.5;
                streaks[i] = if up { (streaks[i] + 1).min(REJOIN_EPOCHS) } else { 0 };
                if up && streaks[i] >= REJOIN_EPOCHS {
                    live += 1;
                }
            }
            prop_assert!(
                e.live_servers == live,
                "seed {seed} epoch {k}: recorded {} live, hysteresis says {live}",
                e.live_servers
            );
        }
    }

    /// Same (seed, plan) → bit-identical outcome, run to run.
    #[test]
    fn fault_runs_are_reproducible(seed in 0_u64..1_000) {
        let cfg = chaos_cfg(Strategy::Hybrid, generate(seed));
        let a = Engine::new(cfg.clone()).run();
        let b = Engine::new(cfg).run();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

/// A chaos batch through the sweep executor is bit-identical at any job
/// count — fault plans ride inside `EngineConfig`, so the executor needs
/// no special casing.
#[test]
fn chaos_sweep_is_job_count_invariant() {
    let points: Vec<SweepPoint> = (0..6)
        .map(|r| {
            SweepPoint::burst(
                format!("plan{r}"),
                chaos_cfg(Strategy::Hybrid, generate(derive_seed(42, r))),
            )
        })
        .collect();
    let serial = run_sweep(points.clone(), 7, 1);
    let parallel = run_sweep(points, 7, 8);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "jobs 1 vs jobs 8 must be byte-identical"
    );
    for r in &serial {
        if let SweepOutcome::Burst(b) = &r.outcome {
            assert!(b.floor_held, "{}", r.label);
            assert_eq!(b.grid_overload_wh, 0.0, "{}", r.label);
            assert!(
                b.audit_violations.is_empty(),
                "{}: {:?}",
                r.label,
                b.audit_violations
            );
        }
    }
}

/// A fleet-chaos batch through the sweep executor is bit-identical at any
/// job count: liveness vectors, rejoin hysteresis, and capacity re-plans
/// are all part of the deterministic per-task state.
#[test]
fn fleet_chaos_sweep_is_job_count_invariant() {
    let points: Vec<SweepPoint> = (0..6)
        .map(|r| {
            SweepPoint::burst(
                format!("fleet{r}"),
                fleet_cfg(Strategy::Hybrid, generate_fleet(derive_seed(1042, r))),
            )
        })
        .collect();
    let serial = run_sweep(points.clone(), 7, 1);
    let parallel = run_sweep(points, 7, 8);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "jobs 1 vs jobs 8 must be byte-identical under fleet faults"
    );
    for r in &serial {
        if let SweepOutcome::Burst(b) = &r.outcome {
            assert!(b.floor_held, "{}", r.label);
            assert_eq!(b.grid_overload_wh, 0.0, "{}", r.label);
            assert!(
                b.audit_violations.is_empty(),
                "{}: {:?}",
                r.label,
                b.audit_violations
            );
        }
    }
}

/// A guardrail-supervised poisoning batch stays bit-identical at any job
/// count: the shadow controller, detectors, and failover ladder are all
/// deterministic, so parallelism cannot perturb the outcome.
#[test]
fn poisoned_chaos_sweep_is_job_count_invariant() {
    let points: Vec<SweepPoint> = (0..6)
        .map(|r| {
            SweepPoint::burst(
                format!("poison{r}"),
                guarded_cfg(generate_poison(derive_seed(99, r))),
            )
        })
        .collect();
    let serial = run_sweep(points.clone(), 7, 1);
    let parallel = run_sweep(points, 7, 8);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "jobs 1 vs jobs 8 must be byte-identical under failover"
    );
    for r in &serial {
        if let SweepOutcome::Burst(b) = &r.outcome {
            assert!(b.failover_epochs > 0, "{}: guardrail never fired", r.label);
            assert!(b.quarantined_tables >= 1, "{}", r.label);
            assert!(b.floor_held, "{}", r.label);
            assert!(
                b.audit_violations.is_empty(),
                "{}: {:?}",
                r.label,
                b.audit_violations
            );
        }
    }
}
