//! The paper-shape conclusions must not be seed flukes: the qualitative
//! orderings hold across different weather realizations (the Medium trace
//! and the DES noise both vary with the seed).

use greensprint_repro::prelude::*;

fn speedup(strategy: Strategy, green: GreenConfig, mins: u64, seed: u64) -> f64 {
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green,
        strategy,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(mins),
        measurement: MeasurementMode::Analytic,
        seed,
        ..EngineConfig::default()
    };
    Engine::new(cfg).run().speedup_vs_normal
}

const SEEDS: [u64; 5] = [7, 11, 23, 99, 1234];

#[test]
fn hybrid_stays_near_the_top_across_weather_realizations() {
    // Paper Fig. 6 (Med/60): Hybrid 3.47x, effectively tied with the best
    // static planner. On a dark weather draw the Q-learner's exploration
    // costs more than a static plan, so allow it to trail the best other
    // strategy by up to 10% — "near the top", not "always first".
    for seed in SEEDS {
        let hybrid = speedup(Strategy::Hybrid, GreenConfig::re_batt(), 60, seed);
        let best_other = [Strategy::Greedy, Strategy::Parallel, Strategy::Pacing]
            .into_iter()
            .map(|s| speedup(s, GreenConfig::re_batt(), 60, seed))
            .fold(0.0_f64, f64::max);
        assert!(
            hybrid > best_other * 0.90,
            "seed {seed}: Hybrid {hybrid} vs best other {best_other}"
        );
    }
}

#[test]
fn greedy_small_battery_penalty_holds_across_seeds() {
    // The Fig. 8/9 signature: Greedy trails the planners at medium
    // availability with the 3.2 Ah battery, whatever the exact weather.
    let mut wins = 0;
    for seed in SEEDS {
        let greedy = speedup(Strategy::Greedy, GreenConfig::re_sbatt(), 60, seed);
        let pacing = speedup(Strategy::Pacing, GreenConfig::re_sbatt(), 60, seed);
        if pacing > greedy {
            wins += 1;
        }
    }
    assert!(
        wins >= 4,
        "Pacing beat Greedy in only {wins}/5 weather seeds"
    );
}

#[test]
fn medium_sixty_minute_band_is_stable() {
    // The Med/60 headline (paper Fig. 6: ≈3.4×) stays in a sane band
    // across weather. Medium is the weather-attenuated daytime level, so
    // a realization must sit between the deterministic Minimum floor
    // (measured 1.72× here) and the clear-sky Maximum ceiling (4.62×);
    // cloudy draws legitimately sink toward ~2.1× while bright ones sit
    // right on the paper's 3.4×.
    for seed in SEEDS {
        let s = speedup(Strategy::Hybrid, GreenConfig::re_batt(), 60, seed);
        assert!((2.0..4.2).contains(&s), "seed {seed}: {s}");
    }
}

#[test]
fn battery_ordering_holds_across_seeds() {
    for seed in SEEDS {
        let big = speedup(Strategy::Hybrid, GreenConfig::re_batt(), 30, seed);
        let small = speedup(Strategy::Hybrid, GreenConfig::re_sbatt(), 30, seed);
        let none = speedup(Strategy::Hybrid, GreenConfig::re_only(), 30, seed);
        assert!(big >= small - 0.05, "seed {seed}: {big} vs {small}");
        assert!(small >= none - 0.05, "seed {seed}: {small} vs {none}");
    }
}
