//! Failure injection: the unhappy paths a power-aware controller exists
//! for. Each scenario wires real substrate components into a fault and
//! checks the system degrades the way the paper's design intends —
//! shedding sprint intensity, never shedding correctness.

use greensprint_repro::core::cluster_view::{run_cluster, GridSprintPolicy};
use greensprint_repro::power::backup::{AutomaticTransferSwitch, DieselGenerator};
use greensprint_repro::power::pdu::CircuitBreaker;
use greensprint_repro::prelude::*;

#[test]
fn renewable_collapse_mid_burst_degrades_to_normal_not_zero() {
    // The sky goes black half-way through a burst (storm front): the
    // controller must ride batteries down and land on Normal mode — never
    // below it, never tripping anything.
    let mut samples = vec![1.0_f64; 11 * 60 + 15]; // full sun until 11:15
    samples.extend(vec![0.0; 24 * 60]); // then nothing
    let trace = SolarTrace::from_samples(samples);
    let cfg = EngineConfig {
        green: GreenConfig::re_sbatt(),
        trace_override: Some(trace),
        burst_duration: SimDuration::from_mins(30),
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let out = Engine::new(cfg).run();
    // Sprinted while the sun was up, degraded after.
    let early = &out.epochs[..10];
    let late = &out.epochs[20..];
    assert!(early.iter().all(|e| e.setting.is_sprinting()));
    assert!(late.iter().all(|e| e.setting == ServerSetting::normal()));
    // Average still beats Normal; floor holds.
    assert!(out.speedup_vs_normal > 1.3);
    assert!(out.epochs.iter().all(|e| e.goodput_rps > 0.0));
    assert_eq!(out.grid_overload_wh, 0.0);
}

#[test]
fn dead_battery_and_dark_sky_is_exactly_normal() {
    let cfg = EngineConfig {
        green: GreenConfig::re_only(),
        availability: AvailabilityLevel::Minimum,
        burst_duration: SimDuration::from_mins(20),
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let out = Engine::new(cfg).run();
    assert!((out.speedup_vs_normal - 1.0).abs() < 0.02);
    assert_eq!(out.battery_used_wh, 0.0);
    assert_eq!(out.re_used_wh, 0.0);
}

#[test]
fn breaker_protects_the_grid_from_reckless_sprinting() {
    let cfg = EngineConfig {
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(10),
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let reckless = run_cluster(&cfg, GridSprintPolicy::Reckless);
    assert!(reckless.breaker_tripped);
    // The disciplined policy with the same burst never trips.
    let disciplined = run_cluster(&cfg, GridSprintPolicy::SubOptimal);
    assert!(!disciplined.breaker_tripped);
    assert!(disciplined.cluster_speedup_vs_normal > reckless.cluster_speedup_vs_normal);
}

#[test]
fn utility_outage_during_a_sprint_is_survivable() {
    // Fig. 2 end-to-end: the grid side rides ATS → diesel through a
    // 30-minute utility outage while the green rack sprints on its own
    // bus, oblivious.
    let cfg = EngineConfig {
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(30),
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let green = Engine::new(cfg).run();
    assert!(green.speedup_vs_normal > 4.0, "green bus unaffected");

    let mut ats = AutomaticTransferSwitch::new(DieselGenerator::paper_scale());
    let grid_normal_w = 7.0 * 100.0; // the utility-dependent servers
    let mut delivered_wh = 0.0;
    for minute in 0..30 {
        let utility_up = !(5..25).contains(&minute); // 20-minute outage
        delivered_wh += ats.advance(utility_up, grid_normal_w, SimDuration::from_mins(1)) / 60.0;
    }
    let demanded_wh = grid_normal_w * 0.5;
    // Only the diesel crank gap went unserved (a UPS hold-up would cover it).
    assert!(
        delivered_wh > demanded_wh * 0.98,
        "{delivered_wh} of {demanded_wh}"
    );
    assert!(ats.gap_wh() < 5.0, "gap {}", ats.gap_wh());
    assert!(ats.diesel_wh() > 200.0);
}

#[test]
fn utility_outage_while_re_telemetry_is_stale_still_holds_the_floor() {
    // The compound nightmare: the utility feed drops (grid side rides
    // ATS → diesel) at the same moment the green rack loses its RE
    // sensor mid-burst. The controller must enter safe mode on stale
    // telemetry, ride batteries down against the worst recent
    // observation, and land on Normal — under both measurement planes.
    let dropout = FaultEvent {
        at: SimTime::from_hours(11) + SimDuration::from_mins(5),
        duration: SimDuration::from_mins(25),
        kind: FaultKind::ReSensorDropout,
    };
    for measurement in [MeasurementMode::Analytic, MeasurementMode::Des] {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(30),
            measurement,
            fault_plan: Some(FaultPlan::new(vec![dropout])),
            ..EngineConfig::default()
        };
        let out = Engine::new(cfg).run();
        let floor = match measurement {
            MeasurementMode::Analytic => 0.99,
            MeasurementMode::Des => 0.95,
        };
        assert!(
            out.speedup_vs_normal >= floor,
            "{measurement:?}: speedup {}",
            out.speedup_vs_normal
        );
        assert!(out.floor_held, "{measurement:?}");
        assert!(
            out.safe_mode_epochs > 0,
            "{measurement:?}: never entered safe mode"
        );
        assert_eq!(out.grid_overload_wh, 0.0, "{measurement:?}");
        // Safe mode starts when the dropout does, not before.
        assert!(!out.epochs[0].safe_mode, "{measurement:?}");

        // Meanwhile the utility-dependent servers ride the same outage
        // through ATS → diesel, as in the paper's Fig. 2.
        let mut ats = AutomaticTransferSwitch::new(DieselGenerator::paper_scale());
        let grid_normal_w = 7.0 * 100.0;
        let mut delivered_wh = 0.0;
        for minute in 0..30 {
            let utility_up = !(5..25).contains(&minute);
            delivered_wh +=
                ats.advance(utility_up, grid_normal_w, SimDuration::from_mins(1)) / 60.0;
        }
        assert!(
            delivered_wh > grid_normal_w * 0.5 * 0.98,
            "{measurement:?}: grid side lost load: {delivered_wh}"
        );
        assert!(ats.gap_wh() < 5.0, "{measurement:?}: gap {}", ats.gap_wh());
    }
}

#[test]
fn diesel_running_dry_leaves_a_quantified_gap() {
    let mut ats = AutomaticTransferSwitch::new(DieselGenerator::new(
        2_000.0,
        SimDuration::ZERO,
        1.0,
        0.25, // quarter-litre of fuel: ~15 min at 1 kW-ish loads
    ));
    let mut served = 0.0;
    for _ in 0..60 {
        served += ats.advance(false, 1_000.0, SimDuration::from_mins(1)) / 60.0;
    }
    assert!(served > 0.0);
    assert!(ats.gap_wh() > 400.0, "gap {}", ats.gap_wh());
    // Accounting closes: served + gap = demand.
    assert!((served + ats.gap_wh() - 1_000.0).abs() < 1.0);
}

#[test]
fn thermal_runaway_without_pcm_is_contained_by_throttling() {
    let cfg = EngineConfig {
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(30),
        thermal: ThermalModel::NoPcm,
        measurement: MeasurementMode::Analytic,
        ..EngineConfig::default()
    };
    let out = Engine::new(cfg).run();
    // The guard fired, the chip never exceeded the limit band, and the
    // duty-cycled sprint still beat Normal.
    assert!(out.thermal_throttle_epochs > 0);
    assert!(out.peak_temp_c < 86.0, "peak {}", out.peak_temp_c);
    assert!(out.speedup_vs_normal > 1.2);
}

#[test]
fn breaker_recovers_after_reset() {
    let mut cb = CircuitBreaker::new(1_000.0);
    cb.advance(5_000.0, SimDuration::from_secs(30));
    assert!(cb.is_tripped());
    cb.reset();
    // Back in service at rated load.
    assert!(!cb.advance(1_000.0, SimDuration::from_mins(10)));
}
