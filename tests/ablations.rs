//! Quality-side ablations of the design choices DESIGN.md calls out (the
//! performance-cost side lives in `crates/bench/benches/ablations.rs`).

use greensprint_repro::core::predictor::Predictor;
use greensprint_repro::prelude::*;

#[test]
fn paper_alpha_tracks_flickering_supply_better_than_heavy_smoothing() {
    // The paper picked α = 0.3 because it "weights the model more heavily
    // towards current observed data". On the structured part of the signal
    // (the clear-sky ramp) a sluggish α = 0.9 lags the sun; the reactive
    // α = 0.3 tracks it. (On pure cloud flicker both are equally at the
    // mercy of irreducible noise — that is exactly why the paper notes
    // solar prediction is accurate "when weather conditions are stable".)
    let trace = AvailabilityLevel::Maximum.trace(5);
    let pv = PvArray::paper_spec(3);
    let error = |alpha: f64| {
        let mut p = Predictor::with_alpha(alpha);
        let mut err = 0.0;
        let mut n = 0u32;
        for minute in 0..12 * 60 {
            let t = SimTime::from_mins(6 * 60 + minute); // daytime half
            let actual = pv.output_at(&trace, t);
            err += (p.re_supply_w(actual) - actual).abs();
            n += 1;
            p.observe_re_supply(actual);
        }
        err / n as f64
    };
    let fast = error(0.3);
    let slow = error(0.9);
    assert!(
        fast < slow * 0.5,
        "alpha=0.3 error {fast:.1} W vs alpha=0.9 error {slow:.1} W"
    );
}

#[test]
fn over_conservative_planning_horizon_hurts_battery_only_sprints() {
    // Budgeting the battery over the whole hour (60-minute horizon) at
    // minimum availability starves the sprint below the idle floor; the
    // default 10-minute horizon lets the pacing strategies actually use
    // the stored energy.
    let run = |horizon_mins: u64| {
        let cfg = EngineConfig {
            strategy: Strategy::Pacing,
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(60),
            planning_horizon: SimDuration::from_mins(horizon_mins),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        };
        Engine::new(cfg).run().speedup_vs_normal
    };
    let default = run(10);
    let conservative = run(60);
    assert!(
        default > conservative + 0.03,
        "10-min horizon {default} vs 60-min horizon {conservative}"
    );
}

#[test]
fn epoch_length_choice_is_not_load_bearing() {
    // The paper's results should not hinge on the exact scheduling epoch;
    // 30 s and 60 s epochs land within a few percent of each other.
    let run = |secs: u64| {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(20),
            epoch: SimDuration::from_secs(secs),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        };
        Engine::new(cfg).run().speedup_vs_normal
    };
    let s30 = run(30);
    let s60 = run(60);
    let rel = (s30 - s60).abs() / s60;
    assert!(rel < 0.10, "epoch sensitivity: 30s {s30} vs 60s {s60}");
}

#[test]
fn des_noise_is_small_across_seeds() {
    // The headline numbers are seed-stable: DES runs across seeds stay
    // within a tight band at maximum availability.
    let mut speedups = Vec::new();
    for seed in 0..4 {
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Des,
            seed,
            ..EngineConfig::default()
        };
        speedups.push(Engine::new(cfg).run().speedup_vs_normal);
    }
    let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().cloned().fold(0.0_f64, f64::max);
    assert!(hi - lo < 0.25, "spread {speedups:?}");
}

#[test]
fn clear_sky_indexed_predictor_does_no_harm_and_helps_ramps() {
    use greensprint_repro::core::engine::PredictorKind;
    // Swap the paper's raw EWMA for the clear-sky-indexed predictor: on
    // the flickering medium sky the burst outcome must stay in the same
    // band (the predictor is a refinement, not a behaviour change).
    let run = |kind: PredictorKind| {
        let cfg = EngineConfig {
            green: GreenConfig::re_only(), // no battery: predictions matter most
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(30),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        };
        let cfg = EngineConfig {
            predictor: kind,
            ..cfg
        };
        Engine::new(cfg).run().speedup_vs_normal
    };
    let ewma = run(PredictorKind::PaperEwma);
    let indexed = run(PredictorKind::ClearSkyIndexed);
    assert!(indexed > ewma * 0.92, "indexed {indexed} vs ewma {ewma}");
}

#[test]
fn hysteresis_trims_marginal_switches_at_bounded_cost() {
    // Under a flickering sky most setting changes are *supply-driven*
    // (the incumbent becomes unaffordable, or a much better rung opens
    // up) — a hysteresis band cannot and should not suppress those. What
    // it does remove are the marginal flips between near-equivalent
    // settings, monotonically with the band width, at a bounded
    // performance cost.
    let run = |hysteresis: f64| {
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            green: GreenConfig::re_sbatt(),
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(30),
            switch_hysteresis: hysteresis,
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        };
        Engine::new(cfg).run()
    };
    let churny = run(0.0);
    let damped = run(0.2);
    assert!(
        damped.setting_transitions < churny.setting_transitions,
        "transitions {} -> {}",
        churny.setting_transitions,
        damped.setting_transitions
    );
    assert!(
        damped.speedup_vs_normal > churny.speedup_vs_normal * 0.95,
        "speedup {} -> {}",
        churny.speedup_vs_normal,
        damped.speedup_vs_normal
    );
    // The default configuration reproduces the paper (no hysteresis).
    assert_eq!(EngineConfig::default().switch_hysteresis, 0.0);
}

#[test]
fn battery_capacity_sweep_is_monotone_at_minimum_availability() {
    // More stored energy can only help when the sun is down — an
    // engine-level monotonicity the sizing example relies on.
    let run = |ah: f64| {
        let green = GreenConfig {
            name: "sweep".into(),
            green_servers: 3,
            panels: 3,
            battery_ah: ah,
        };
        let cfg = EngineConfig {
            green,
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(30),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        };
        Engine::new(cfg).run().speedup_vs_normal
    };
    let mut prev = 0.0;
    for ah in [0.0, 3.2, 6.0, 10.0, 16.0] {
        let s = run(ah);
        assert!(s >= prev - 0.02, "{ah} Ah gave {s} after {prev}");
        prev = s;
    }
    assert!(
        prev > 3.0,
        "16 Ah should carry most of a 30-min sprint: {prev}"
    );
}
