//! End-to-end crash/resume tests for the durable-execution layer: a
//! sweep killed mid-run (simulated by truncating its journal inside a
//! half-written record) must resume to output byte-identical to an
//! uninterrupted run, at any `--jobs` value.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gs-ckpt-{}-{name}", std::process::id()))
}

/// A small three-point grid, cheap enough to run several times per test.
const SWEEP_ARGS: &[&str] = &[
    "sweep",
    "--apps",
    "jbb",
    "--strategies",
    "greedy,pacing,hybrid",
    "--availabilities",
    "med",
    "--minutes",
    "5",
    "--analytic",
    "--seed",
    "7",
];

fn sweep_with(extra: &[&str]) -> (String, String, bool) {
    let mut args: Vec<&str> = SWEEP_ARGS.to_vec();
    args.extend_from_slice(extra);
    run(&args)
}

/// Journal bytes cut inside the `record`-th result line (0-based): the
/// shape a SIGKILL between `write_all` and the newline leaves behind.
fn cut_mid_record(journal: &[u8], record: usize) -> Vec<u8> {
    let mut newlines = 0usize;
    let mut cut = None;
    for (i, b) in journal.iter().enumerate() {
        if *b == b'\n' {
            newlines += 1;
            // Header line is newline 1; record `r` ends at newline r+2.
            if newlines == record + 1 {
                cut = Some(i + 1);
            }
        }
    }
    let start = cut.expect("journal has enough records to cut");
    let end = (start + 40).min(journal.len());
    journal[..end].to_vec()
}

#[test]
fn killed_sweep_resumes_byte_identical_at_any_job_count() {
    let (golden, _, ok) = sweep_with(&["--jobs", "1"]);
    assert!(ok);
    assert_eq!(golden.lines().count(), 3);

    for jobs in ["1", "4"] {
        let journal = tmp(&format!("kill-{jobs}.jsonl"));
        let path = journal.to_str().unwrap();
        let (_, _, ok) = sweep_with(&["--jobs", "1", "--checkpoint", path]);
        assert!(ok);

        // "Kill" the run inside the second record's append.
        let full = std::fs::read(&journal).expect("journal written");
        std::fs::write(&journal, cut_mid_record(&full, 1)).unwrap();

        let (resumed, stderr, ok) = run(&["resume", path, "--jobs", jobs]);
        assert!(ok, "{stderr}");
        assert_eq!(
            resumed, golden,
            "resume --jobs {jobs} diverged from the uninterrupted run"
        );
        assert!(
            stderr.contains("dropped a truncated tail record"),
            "{stderr}"
        );
        assert!(
            stderr.contains("1/3 point(s) already journaled"),
            "{stderr}"
        );
        std::fs::remove_file(&journal).ok();
    }
}

#[test]
fn resume_reruns_only_the_missing_points() {
    let journal = tmp("skip.jsonl");
    let path = journal.to_str().unwrap();
    let (_, _, ok) = sweep_with(&["--jobs", "1", "--checkpoint", path]);
    assert!(ok);

    // Truncate cleanly after two full records: two journaled, one missing.
    let full = std::fs::read(&journal).unwrap();
    let mut seen = 0usize;
    let clean_cut = full
        .iter()
        .position(|b| {
            if *b == b'\n' {
                seen += 1;
            }
            seen == 3 // header + 2 records
        })
        .unwrap()
        + 1;
    std::fs::write(&journal, &full[..clean_cut]).unwrap();

    let (_, stderr, ok) = run(&["resume", path]);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("2/3 point(s) already journaled"),
        "{stderr}"
    );
    assert!(
        stderr.contains("1 completed, 0 retried, 0 failed, 2 skipped"),
        "{stderr}"
    );
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_refuses_an_edited_journal() {
    let journal = tmp("edited.jsonl");
    let path = journal.to_str().unwrap();
    let (_, _, ok) = sweep_with(&["--jobs", "1", "--checkpoint", path]);
    assert!(ok);

    // Tamper with the header's embedded point list.
    let text = std::fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    lines[0] = lines[0].replacen("pacing", "racing", 1);
    std::fs::write(&journal, lines.join("\n") + "\n").unwrap();

    let (_, stderr, ok) = run(&["resume", path]);
    assert!(!ok);
    assert!(
        stderr.contains("different build or its point list was edited"),
        "{stderr}"
    );
    std::fs::remove_file(&journal).ok();
}

#[test]
fn a_completed_journal_resumes_to_the_full_result_set() {
    // Nothing to re-run: resume acts as a deterministic replay.
    let (golden, _, ok) = sweep_with(&["--jobs", "1"]);
    assert!(ok);
    let journal = tmp("replay.jsonl");
    let path = journal.to_str().unwrap();
    let (_, _, ok) = sweep_with(&["--jobs", "2", "--checkpoint", path]);
    assert!(ok);
    let (replayed, stderr, ok) = run(&["resume", path]);
    assert!(ok, "{stderr}");
    assert_eq!(replayed, golden);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn an_existing_checkpoint_is_never_clobbered() {
    let journal = tmp("guard.jsonl");
    let path = journal.to_str().unwrap();
    let (_, _, ok) = sweep_with(&["--jobs", "1", "--checkpoint", path]);
    assert!(ok);
    let before = std::fs::read(&journal).unwrap();
    let (_, stderr, ok) = sweep_with(&["--jobs", "1", "--checkpoint", path]);
    assert!(!ok);
    assert!(stderr.contains("already exists"), "{stderr}");
    assert_eq!(std::fs::read(&journal).unwrap(), before);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn over_budget_points_fail_without_aborting_the_sweep() {
    // 5 min at 60 s epochs needs 10 epochs (strategy + baseline); 30 min
    // needs 60. A 20-epoch budget deterministically fails only the latter.
    let (stdout, stderr, ok) = run(&[
        "sweep",
        "--apps",
        "jbb",
        "--strategies",
        "greedy",
        "--availabilities",
        "med",
        "--minutes",
        "5,30",
        "--analytic",
        "--jobs",
        "2",
        "--task-timeout-epochs",
        "20",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.lines().count(), 2);
    assert_eq!(stdout.lines().filter(|l| l.contains("Failed")).count(), 1);
    assert!(stderr.contains("epoch budget exceeded"), "{stderr}");
    assert!(stderr.contains("1 completed"), "{stderr}");
}

#[test]
fn snapshot_checkpoint_resumes_a_burst_identically() {
    let (golden, _, ok) = run(&[
        "simulate",
        "--strategy",
        "hybrid",
        "--minutes",
        "10",
        "--analytic",
    ]);
    assert!(ok);

    let snap = tmp("snap.json");
    let path = snap.to_str().unwrap();
    let (ckpt_out, _, ok) = run(&[
        "simulate",
        "--strategy",
        "hybrid",
        "--minutes",
        "10",
        "--analytic",
        "--checkpoint",
        path,
        "--snapshot-every",
        "3",
    ]);
    assert!(ok);
    assert_eq!(ckpt_out, golden, "snapshotting changed the run");

    // The file holds a late-run snapshot; resuming it must land on the
    // same result block (golden minus its "simulating:" banner line).
    let tail = golden.split_once('\n').unwrap().1;
    let (resumed, stderr, ok) = run(&["resume", path, "--snapshot-every", "3"]);
    assert!(ok, "{stderr}");
    assert_eq!(resumed, tail);
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(format!("{path}.tmp")).ok();
}

#[test]
fn checkpoint_requires_analytic_measurement() {
    let snap = tmp("des.json");
    let (_, stderr, ok) = run(&[
        "simulate",
        "--minutes",
        "5",
        "--checkpoint",
        snap.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("analytic"), "{stderr}");
}
