//! Property and end-to-end tests for the partition-tolerant datacenter
//! broker: under *any* seeded site fault plan the fleet degrades — routed
//! load stays conserved, every rack holds its Normal floor, the site
//! audit stays clean — and the outcome is byte-identical for any `--jobs`
//! and through a snapshot/resume cycle.

use greensprint_repro::prelude::*;
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn template(minutes: u64) -> EngineConfig {
    EngineConfig {
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(minutes),
        measurement: MeasurementMode::Analytic,
        seed: 17,
        ..EngineConfig::default()
    }
}

fn racks(n: usize) -> Vec<RackSpec> {
    (0..n)
        .map(|i| RackSpec {
            app: Application::ALL[i % Application::ALL.len()],
            green: GreenConfig::re_batt(),
            strategy: [Strategy::Hybrid, Strategy::Pacing, Strategy::Greedy][i % 3],
        })
        .collect()
}

fn site_cfg(seed: u64, n_racks: usize, minutes: u64) -> DatacenterConfig {
    let template = template(minutes);
    let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
    DatacenterConfig {
        racks: racks(n_racks),
        site_fault_plan: Some(FaultPlan::generate_site(
            seed,
            start,
            template.burst_duration,
            n_racks as u8,
        )),
        template,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated site plans are always well-formed for the fleet they
    /// were generated for.
    #[test]
    fn generated_site_plans_validate(seed in 0_u64..u64::MAX) {
        let cfg = site_cfg(seed, 4, 5);
        prop_assert!(cfg.validate().is_ok(), "seed {seed}: {:?}", cfg.validate());
        let plan = cfg.site_fault_plan.as_ref().unwrap();
        prop_assert!(!plan.events.is_empty());
        let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        prop_assert_eq!(plan.clone(), back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: any seeded site plan — blackouts,
    /// partitions, lossy/laggy links — and the broker's computed factors
    /// stay conserved every epoch, every rack holds the Normal floor,
    /// and the site audit records nothing.
    #[test]
    fn any_site_plan_conserves_load_and_holds_floors(seed in 0_u64..10_000) {
        let cfg = site_cfg(seed, 3, 5);
        let out = try_run_datacenter(&cfg, 2).expect("valid config");
        prop_assert!(
            out.site_audit_violations.is_empty(),
            "seed {seed}: {:?}",
            out.site_audit_violations
        );
        for (r, o) in out.racks.iter().enumerate() {
            prop_assert!(o.floor_held, "seed {seed}: rack {r} lost the floor");
            prop_assert!(o.audit_violations.is_empty(), "seed {seed}: rack {r}");
            prop_assert_eq!(o.grid_overload_wh, 0.0);
        }
        let n = cfg.racks.len() as f64;
        for (k, row) in out.factors.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            prop_assert!(
                (sum - n).abs() <= 1e-6 * n,
                "seed {seed}: epoch {k} factors sum to {sum}"
            );
        }
    }

    /// Byte-identity across job counts, fault plan and all.
    #[test]
    fn outcomes_are_byte_identical_across_jobs(seed in 0_u64..10_000) {
        let cfg = site_cfg(seed, 3, 5);
        let a = try_run_datacenter(&cfg, 1).expect("valid config");
        let b = try_run_datacenter(&cfg, 3).expect("valid config");
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

/// A rack blackout sheds its load to the survivors within two epochs of
/// the lights going out, and the drained rack draws no power while dark.
#[test]
fn blackout_load_reroutes_to_survivors() {
    let template = template(10);
    let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
    let cfg = DatacenterConfig {
        racks: racks(3),
        site_fault_plan: Some(FaultPlan::new(vec![FaultEvent {
            at: start + SimDuration::from_mins(2),
            duration: SimDuration::from_mins(3),
            kind: FaultKind::RackBlackout { rack: 1, epochs: 3 },
        }])),
        template,
    };
    let out = try_run_datacenter(&cfg, 2).expect("valid config");
    assert!(
        out.site_audit_violations.is_empty(),
        "{:?}",
        out.site_audit_violations
    );
    assert!(out.blackout_epochs >= 3, "{}", out.blackout_epochs);
    assert!(out.rerouted_epochs >= 1, "{}", out.rerouted_epochs);
    // The dark rack is drained within two epochs of the blackout start
    // (epoch 2), and the survivors pick its share up.
    let drained = out
        .factors
        .iter()
        .position(|row| row[1] <= 0.01)
        .expect("rack 1 was never drained");
    assert!(drained <= 4, "drained only at epoch {drained}");
    let row = &out.factors[drained];
    assert!(row[0] > 1.01 && row[2] > 1.01, "{row:?}");
    for o in &out.racks {
        assert!(o.floor_held);
    }
}

/// A partitioned rack degrades to local autonomy — it holds its last
/// good directive, keeps serving, and rejoins through probation.
#[test]
fn partitioned_rack_runs_local_autonomy_and_rejoins() {
    let template = template(10);
    let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
    let cfg = DatacenterConfig {
        racks: racks(3),
        site_fault_plan: Some(FaultPlan::new(vec![FaultEvent {
            at: start + SimDuration::from_mins(2),
            duration: SimDuration::from_mins(2),
            kind: FaultKind::BrokerPartition { rack: 1, epochs: 2 },
        }])),
        template,
    };
    let out = try_run_datacenter(&cfg, 2).expect("valid config");
    assert_eq!(out.partition_epochs, 2);
    assert_eq!(out.rejoins, 1);
    assert_eq!(out.degraded_epochs, 2 + REJOIN_EPOCHS as usize);
    // Held factor through the partition and the probation window.
    let held = out.applied_factors[2][1];
    for k in 2..2 + 2 + REJOIN_EPOCHS as usize {
        assert_eq!(out.applied_factors[k][1], held, "epoch {k}");
    }
    assert!(out.site_events.iter().any(|e| e.contains("partitioned")));
    assert!(out.site_events.iter().any(|e| e.contains("rejoined")));
    for o in &out.racks {
        assert!(o.floor_held);
        assert!(o.speedup_vs_normal > 1.0);
    }
}

/// Snapshot/resume through the middle of a partition is byte-identical
/// to the uninterrupted run, at a different job count.
#[test]
fn resume_through_a_partition_is_byte_identical() {
    let template = template(10);
    let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
    let cfg = DatacenterConfig {
        racks: racks(3),
        site_fault_plan: Some(FaultPlan::new(vec![FaultEvent {
            at: start + SimDuration::from_mins(3),
            duration: SimDuration::from_mins(3),
            kind: FaultKind::BrokerPartition { rack: 0, epochs: 3 },
        }])),
        template,
    };
    let mut snaps: Vec<DatacenterSnapshot> = Vec::new();
    let golden = run_datacenter_with_snapshots(&cfg, 3, 2, &mut |s| snaps.push(s.clone()))
        .expect("valid config");
    // A snapshot taken while rack 0 was pinned behind the partition.
    let mid = snaps
        .iter()
        .find(|s| s.broker.pinned[0].is_some())
        .expect("no snapshot landed inside the partition");
    let back =
        DatacenterSnapshot::from_json(&mid.to_json().expect("serialize")).expect("round trip");
    let resumed = resume_datacenter_snapshot(back, 1, 2, &mut |_| {}).expect("resume");
    assert_eq!(
        serde_json::to_string(&golden).unwrap(),
        serde_json::to_string(&resumed).unwrap()
    );
}
