//! Smoke tests for the operator CLI (the `greensprint` binary).

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn simulate_prints_a_result() {
    let (stdout, _, ok) = run(&[
        "simulate",
        "--app",
        "jbb",
        "--minutes",
        "5",
        "--availability",
        "max",
        "--analytic",
    ]);
    assert!(ok);
    assert!(stdout.contains("speedup vs Normal"), "{stdout}");
    // Max availability: a real sprint happened.
    let speedup_line = stdout
        .lines()
        .find(|l| l.contains("speedup"))
        .expect("speedup line");
    assert!(
        speedup_line.contains("4."),
        "expected ~4.6x: {speedup_line}"
    );
}

#[test]
fn trace_roundtrips_through_simulate() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("gs-cli-trace-{}.csv", std::process::id()));
    let (stdout, _, ok) = run(&[
        "trace",
        "solar",
        "--days",
        "1",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("1440 minute-samples"));
    let (stdout, _, ok) = run(&[
        "simulate",
        "--trace",
        trace.to_str().unwrap(),
        "--minutes",
        "5",
        "--analytic",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("renewable"));
    std::fs::remove_file(trace).ok();
}

#[test]
fn policy_saves_and_warm_starts() {
    let dir = std::env::temp_dir();
    let policy = dir.join(format!("gs-cli-policy-{}.json", std::process::id()));
    let (stdout, _, ok) = run(&[
        "simulate",
        "--strategy",
        "hybrid",
        "--minutes",
        "5",
        "--analytic",
        "--save-policy",
        policy.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(policy.exists(), "policy file written");
    let (stdout, _, ok) = run(&[
        "simulate",
        "--strategy",
        "hybrid",
        "--minutes",
        "5",
        "--analytic",
        "--warm-policy",
        policy.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("speedup"));
    std::fs::remove_file(policy).ok();
}

#[test]
fn tco_and_campaign_run() {
    let (stdout, _, ok) = run(&["tco", "--hours", "30"]);
    assert!(ok);
    assert!(stdout.contains("break-even"));
    let (stdout, _, ok) = run(&["campaign", "--days", "1", "--analytic"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sprint hours"));
}

#[test]
fn scenario_file_drives_a_simulation() {
    let dir = std::env::temp_dir();
    let scenario = dir.join(format!("gs-cli-scenario-{}.json", std::process::id()));
    std::fs::write(
        &scenario,
        r#"{
            "app": "Memcached",
            "green": {"name": "lab", "green_servers": 2, "panels": 3, "battery_ah": 5.0},
            "strategy": "Pacing",
            "availability": "Maximum",
            "burst_duration": 300000000,
            "measurement": "Analytic"
        }"#,
    )
    .unwrap();
    let (stdout, _, ok) = run(&["simulate", "--scenario", scenario.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Memcached"), "{stdout}");
    assert!(stdout.contains("lab"), "{stdout}");
    // Flag overrides beat the file.
    let (stdout, _, ok) = run(&[
        "simulate",
        "--scenario",
        scenario.to_str().unwrap(),
        "--app",
        "jbb",
    ]);
    assert!(ok);
    assert!(stdout.contains("SPECjbb"), "{stdout}");
    // Garbage files fail cleanly.
    std::fs::write(&scenario, "{nope").unwrap();
    let (_, stderr, ok) = run(&["simulate", "--scenario", scenario.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("invalid scenario"), "{stderr}");
    std::fs::remove_file(scenario).ok();
}

#[test]
fn sweep_emits_one_json_line_per_point() {
    // 2 strategies × 2 availabilities × 1 duration = 4 points.
    let (stdout, stderr, ok) = run(&[
        "sweep",
        "--strategies",
        "greedy,hybrid",
        "--availabilities",
        "min,med",
        "--minutes",
        "5",
        "--analytic",
        "--jobs",
        "2",
    ]);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"label\""), "{line}");
        assert!(line.contains("\"seed\""), "{line}");
        assert!(line.contains("speedup_vs_normal"), "{line}");
    }
}

#[test]
fn sweep_rejects_zero_jobs_and_unknown_flag_values() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(["sweep", "--jobs", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--jobs must be at least 1"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (_, stderr, ok) = run(&["sweep", "--strategies", "turbo"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --strategy"), "{stderr}");
}

#[test]
fn malformed_warm_policy_is_a_usage_error_not_a_panic() {
    let dir = std::env::temp_dir();
    let policy = dir.join(format!("gs-cli-badpolicy-{}.json", std::process::id()));
    std::fs::write(&policy, "{this is not a policy").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args([
            "simulate",
            "--strategy",
            "hybrid",
            "--minutes",
            "5",
            "--analytic",
            "--warm-policy",
            policy.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "should exit via usage, not panic"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid warm_policy_json"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_file(policy).ok();
}

#[test]
fn chaos_emits_json_lines_and_holds_the_floor() {
    let (stdout, stderr, ok) = run(&[
        "chaos",
        "--minutes",
        "5",
        "--analytic",
        "--runs",
        "3",
        "--fault-seed",
        "42",
        "--jobs",
        "2",
    ]);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"label\":\"chaos/"), "{line}");
        assert!(line.contains("fault_epochs"), "{line}");
        assert!(line.contains("\"floor_held\":true"), "{line}");
        assert!(line.contains("\"grid_overload_wh\":0.0"), "{line}");
    }
    assert!(stderr.contains("all held the Normal floor"), "{stderr}");
}

#[test]
fn chaos_accepts_a_plan_file_and_rejects_garbage_plans() {
    let dir = std::env::temp_dir();
    let plan = dir.join(format!("gs-cli-plan-{}.json", std::process::id()));
    std::fs::write(
        &plan,
        r#"{"seed": 1, "events": [
            {"at": 39600000000, "duration": 600000000, "kind": "ReSensorDropout"}
        ]}"#,
    )
    .unwrap();
    let (stdout, stderr, ok) = run(&[
        "chaos",
        "--plan",
        plan.to_str().unwrap(),
        "--minutes",
        "5",
        "--analytic",
        "--runs",
        "2",
        "--jobs",
        "1",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
    assert!(stdout.contains("safe_mode_epochs"), "{stdout}");

    // A malformed plan is a usage error (exit 2), not a panic.
    std::fs::write(&plan, "{not a plan").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(["chaos", "--plan", plan.to_str().unwrap(), "--analytic"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid fault plan"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_file(plan).ok();
}

#[test]
fn guardrail_chaos_fails_over_and_exits_clean() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let plan = dir.join(format!("gs-cli-poison-{pid}.json"));
    let quarantine = dir.join(format!("gs-cli-quarantine-{pid}"));
    // One Q-table poisoning event one epoch into an 11:00 burst.
    std::fs::write(
        &plan,
        r#"{"seed": 0, "events": [
            {"at": 39660000000, "duration": 60000000,
             "kind": {"QTablePoison": {"magnitude": 1000000000.0}}}
        ]}"#,
    )
    .unwrap();
    let (stdout, stderr, ok) = run(&[
        "chaos",
        "--plan",
        plan.to_str().unwrap(),
        "--strategy",
        "hybrid",
        "--minutes",
        "15",
        "--analytic",
        "--runs",
        "2",
        "--jobs",
        "2",
        "--guardrail",
        "on",
        "--quarantine-dir",
        quarantine.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    for line in &lines {
        // Every run failed over, quarantined the table, and still passed
        // the chaos gate (floor, grid cap, audit).
        assert!(!line.contains("\"failover_epochs\":0,"), "{line}");
        assert!(line.contains("\"quarantined_tables\":1"), "{line}");
        assert!(line.contains("\"floor_held\":true"), "{line}");
        assert!(line.contains("\"audit_violations\":[]"), "{line}");
    }
    assert!(stderr.contains("all held the Normal floor"), "{stderr}");
    // The quarantine sidecars landed and carry the corrupt table.
    let sidecars: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!sidecars.is_empty(), "no sidecars in {quarantine:?}");
    let (stdout, _, ok) = run(&["qtable", "dump", sidecars[0].to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("quarantine sidecar"), "{stdout}");
    assert!(stdout.contains("checksum ok"), "{stdout}");
    assert!(stdout.contains("verdict: CORRUPT"), "{stdout}");
    // validate refuses the same table with exit 2.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(["qtable", "validate", sidecars[0].to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(plan).ok();
    std::fs::remove_dir_all(quarantine).ok();
}

#[test]
fn qtable_validates_healthy_policies_and_rejects_garbage() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let policy = dir.join(format!("gs-cli-qtable-{pid}.json"));
    let (stdout, _, ok) = run(&[
        "simulate",
        "--strategy",
        "hybrid",
        "--minutes",
        "5",
        "--analytic",
        "--save-policy",
        policy.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    let (stdout, _, ok) = run(&["qtable", "validate", policy.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("verdict: ok"), "{stdout}");
    assert!(stdout.contains("non-finite  : 0"), "{stdout}");

    // Garbage → exit 2 with the typed rejection, no panic.
    std::fs::write(&policy, r#"{"not": "a table"}"#).unwrap();
    for action in ["validate", "dump"] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
            .args(["qtable", action, policy.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{action}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("Q-table"), "{action}: {stderr}");
        assert!(!stderr.contains("panicked"), "{action}: {stderr}");
    }
    // Missing operands are usage errors.
    let (_, stderr, ok) = run(&["qtable", "validate"]);
    assert!(!ok);
    assert!(stderr.contains("qtable needs a FILE"), "{stderr}");
    let (_, stderr, ok) = run(&["qtable"]);
    assert!(!ok);
    assert!(stderr.contains("validate | dump"), "{stderr}");
    std::fs::remove_file(policy).ok();
}

#[test]
fn guardrail_flag_rejects_bad_values() {
    let (_, stderr, ok) = run(&["simulate", "--analytic", "--guardrail", "maybe"]);
    assert!(!ok);
    assert!(stderr.contains("--guardrail takes on|off"), "{stderr}");
    // A Hybrid fallback cannot be certified (it is the learned strategy
    // the guardrail exists to supervise) — rejected up front.
    let (_, stderr, ok) = run(&[
        "simulate",
        "--analytic",
        "--guardrail",
        "on",
        "--fallback",
        "hybrid",
    ]);
    assert!(!ok);
    assert!(stderr.contains("guardrail"), "{stderr}");
}

#[test]
fn missing_input_files_are_usage_errors() {
    for args in [
        ["simulate", "--trace", "/nonexistent/gs-trace.csv"],
        ["simulate", "--scenario", "/nonexistent/gs-scenario.json"],
        ["simulate", "--warm-policy", "/nonexistent/gs-policy.json"],
        ["chaos", "--plan", "/nonexistent/gs-plan.json"],
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cannot read"), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
}

#[test]
fn malformed_trace_csv_is_a_usage_error() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("gs-cli-badtrace-{}.csv", std::process::id()));
    std::fs::write(&trace, "minute,irradiance\n0,0.5\n1,not-a-number\n").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
        .args(["simulate", "--trace", trace.to_str().unwrap(), "--analytic"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "should exit via usage, not panic"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read trace"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_file(trace).ok();
}

#[test]
fn serve_net_flags_validate_with_exit_2() {
    // Each bad knob is a usage error (exit 2) before any socket binds.
    let cases: [(&[&str], &str); 4] = [
        (
            &[
                "serve",
                "--sim-time",
                "--listen",
                "127.0.0.1:0",
                "--max-conns",
                "0",
            ],
            "--max-conns must be >= 1",
        ),
        (
            &[
                "serve",
                "--sim-time",
                "--listen",
                "127.0.0.1:0",
                "--conn-timeout-ms",
                "0",
            ],
            "--conn-timeout-ms must be > 0",
        ),
        (
            &[
                "serve",
                "--sim-time",
                "--listen",
                "127.0.0.1:0",
                "--max-line-len",
                "8",
            ],
            "max line length must be >= 64",
        ),
        // Net knobs without a listener are a contradiction, not a no-op.
        (
            &["serve", "--sim-time", "--max-conns", "4"],
            "need a listener",
        ),
    ];
    for (args, want) in cases {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_greensprint"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(want), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (_, stderr, ok) = run(&["simulate", "--app", "quake"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --app"), "{stderr}");
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
    let (_, stderr, ok) = run(&["trace", "solar", "--days", "1"]);
    assert!(!ok);
    assert!(stderr.contains("--out"), "{stderr}");
}
