//! # gs-thermal — sprint thermals with a phase-change heat buffer
//!
//! Computational sprinting is, at heart, a thermal trick: cores exceed the
//! package's sustainable heat dissipation for a while, parking the excess
//! in thermal mass. The paper assumes servers carry a PCM (paraffin-wax)
//! thermal package, citing Skach et al. [ISCA'15]: "PCM can delay the
//! onset of thermal limits by hours", and treats thermals as non-binding
//! during its minutes-scale bursts. This crate makes that assumption
//! *checkable* instead of implicit:
//!
//! * [`RcNode`] — a lumped thermal RC model of the chip/heatsink path;
//! * [`PcmBuffer`] — a latent-heat reservoir that clamps its temperature
//!   at the melt point while absorbing excess heat;
//! * [`ThermalPackage`] — the composition, with sprint-headroom queries
//!   and a throttle signal the engine can honour.
//!
//! The engine runs with a paper-spec package by default and a test
//! asserts it never throttles a 60-minute full sprint; remove the PCM and
//! the same sprint hits the limit in minutes — the dark-silicon problem
//! the paper starts from.

pub mod package;
pub mod pcm;
pub mod rc;

pub use package::{ThermalPackage, ThermalSpec};
pub use pcm::PcmBuffer;
pub use rc::RcNode;
