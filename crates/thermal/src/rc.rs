//! Lumped thermal RC model of the chip → heatsink → ambient path.
//!
//! `C · dT/dt = P_in − (T − T_amb) / R`
//!
//! Steady state sits at `T_amb + P·R`; the exponential time constant is
//! `τ = R·C`. Integrated with the exact per-step solution, so step size
//! does not affect accuracy.

use serde::{Deserialize, Serialize};

/// One thermal node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RcNode {
    /// Thermal resistance to ambient (K/W).
    pub resistance_k_per_w: f64,
    /// Thermal capacitance (J/K).
    pub capacitance_j_per_k: f64,
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// Current node temperature (°C).
    temp_c: f64,
}

impl RcNode {
    /// A node starting in equilibrium with ambient.
    pub fn new(resistance_k_per_w: f64, capacitance_j_per_k: f64, ambient_c: f64) -> Self {
        assert!(resistance_k_per_w > 0.0 && capacitance_j_per_k > 0.0);
        RcNode {
            resistance_k_per_w,
            capacitance_j_per_k,
            ambient_c,
            temp_c: ambient_c,
        }
    }

    /// Current temperature (°C).
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Force the temperature (tests / initial conditions).
    pub fn set_temp_c(&mut self, t: f64) {
        self.temp_c = t;
    }

    /// Steady-state temperature under constant `power_w`.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + power_w * self.resistance_k_per_w
    }

    /// The time constant τ = R·C (seconds).
    pub fn time_constant_s(&self) -> f64 {
        self.resistance_k_per_w * self.capacitance_j_per_k
    }

    /// Heat currently flowing to ambient (W).
    pub fn dissipation_w(&self) -> f64 {
        (self.temp_c - self.ambient_c) / self.resistance_k_per_w
    }

    /// Advance by `dt_s` seconds under constant `power_w`, using the exact
    /// exponential solution. Returns the new temperature.
    pub fn advance(&mut self, power_w: f64, dt_s: f64) -> f64 {
        let t_ss = self.steady_state_c(power_w);
        let decay = (-dt_s / self.time_constant_s()).exp();
        self.temp_c = t_ss + (self.temp_c - t_ss) * decay;
        self.temp_c
    }

    /// Time (s) until the node reaches `target_c` under constant
    /// `power_w`; `None` if it never will (steady state below target).
    pub fn time_to_reach_s(&self, power_w: f64, target_c: f64) -> Option<f64> {
        if self.temp_c >= target_c {
            return Some(0.0);
        }
        let t_ss = self.steady_state_c(power_w);
        if t_ss <= target_c {
            return None;
        }
        // target = t_ss + (T0 - t_ss) e^{-t/τ}
        let frac = (target_c - t_ss) / (self.temp_c - t_ss);
        Some(-self.time_constant_s() * frac.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> RcNode {
        // Calibration: Normal (100 W) settles at 75 °C, max sprint (155 W)
        // would settle at 102.5 °C — far past an 85 °C junction limit.
        RcNode::new(0.5, 240.0, 25.0)
    }

    #[test]
    fn starts_at_ambient_and_approaches_steady_state() {
        let mut n = node();
        assert_eq!(n.temp_c(), 25.0);
        assert_eq!(n.steady_state_c(100.0), 75.0);
        for _ in 0..100 {
            n.advance(100.0, 30.0);
        }
        assert!((n.temp_c() - 75.0).abs() < 0.01);
        assert!((n.dissipation_w() - 100.0).abs() < 0.1);
    }

    #[test]
    fn exact_integration_is_step_size_invariant() {
        let mut coarse = node();
        let mut fine = node();
        coarse.advance(155.0, 100.0);
        for _ in 0..100 {
            fine.advance(155.0, 1.0);
        }
        assert!((coarse.temp_c() - fine.temp_c()).abs() < 1e-9);
    }

    #[test]
    fn time_to_reach_matches_advance() {
        let mut n = node();
        n.advance(100.0, 1e6); // settle at 75 °C
        let t = n.time_to_reach_s(155.0, 85.0).expect("sprint overheats");
        assert!((30.0..120.0).contains(&t), "time to limit {t}s");
        n.advance(155.0, t);
        assert!((n.temp_c() - 85.0).abs() < 0.01);
        // A sustainable power never reaches the limit (fresh node: the one
        // above sits numerically *at* the target already).
        assert_eq!(node().time_to_reach_s(100.0, 85.0), None);
        // Already past the target.
        n.set_temp_c(90.0);
        assert_eq!(n.time_to_reach_s(155.0, 85.0), Some(0.0));
    }

    #[test]
    fn cooling_when_power_drops() {
        let mut n = node();
        n.set_temp_c(85.0);
        n.advance(0.0, 240.0); // two time constants
        assert!(n.temp_c() < 40.0);
        assert!(n.temp_c() > 25.0);
    }
}
