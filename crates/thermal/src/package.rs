//! The composed thermal package: chip RC node + PCM buffer + junction
//! limit, with the sprint-headroom query the engine uses.

use crate::pcm::PcmBuffer;
use crate::rc::RcNode;
use gs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Static thermal parameters of one server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Chip→ambient thermal resistance (K/W).
    pub resistance_k_per_w: f64,
    /// Chip+heatsink thermal capacitance (J/K).
    pub capacitance_j_per_k: f64,
    /// Machine-room ambient (°C).
    pub ambient_c: f64,
    /// Junction/package limit that forces a throttle (°C).
    pub limit_c: f64,
}

impl ThermalSpec {
    /// Calibrated to the prototype: Normal full load (≈100 W) settles at
    /// 75 °C, comfortably under the 85 °C limit; max sprint (155 W) would
    /// settle at 102.5 °C, i.e. is unsustainable without buffering — the
    /// dark-silicon premise.
    pub fn paper_server() -> Self {
        ThermalSpec {
            resistance_k_per_w: 0.5,
            capacitance_j_per_k: 240.0,
            ambient_c: 25.0,
            limit_c: 85.0,
        }
    }

    /// Largest power sustainable indefinitely (steady state at the limit).
    pub fn sustainable_power_w(&self) -> f64 {
        (self.limit_c - self.ambient_c) / self.resistance_k_per_w
    }
}

/// One server's live thermal state.
///
/// # Example
///
/// ```
/// use gs_thermal::ThermalPackage;
/// use gs_sim::SimDuration;
///
/// let mut pkg = ThermalPackage::paper_spec();
/// pkg.advance(155.0, SimDuration::from_mins(30)); // full sprint
/// // The PCM clamps the chip near its 80 degC melt point: no throttle.
/// assert!(!pkg.is_throttling());
/// assert!(pkg.pcm_melted_fraction() > 0.0);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalPackage {
    spec: ThermalSpec,
    node: RcNode,
    pcm: PcmBuffer,
}

impl ThermalPackage {
    /// Compose a package.
    pub fn new(spec: ThermalSpec, pcm: PcmBuffer) -> Self {
        let node = RcNode::new(
            spec.resistance_k_per_w,
            spec.capacitance_j_per_k,
            spec.ambient_c,
        );
        ThermalPackage { spec, node, pcm }
    }

    /// The paper's assumed configuration: prototype server + wax buffer.
    pub fn paper_spec() -> Self {
        Self::new(ThermalSpec::paper_server(), PcmBuffer::paper_spec())
    }

    /// The same server with no PCM (classic seconds-scale sprinting).
    pub fn without_pcm() -> Self {
        Self::new(ThermalSpec::paper_server(), PcmBuffer::none())
    }

    /// Static parameters.
    pub fn spec(&self) -> &ThermalSpec {
        &self.spec
    }

    /// Current chip temperature (°C).
    pub fn temp_c(&self) -> f64 {
        self.node.temp_c()
    }

    /// Fraction of the PCM melted.
    pub fn pcm_melted_fraction(&self) -> f64 {
        self.pcm.melted_fraction()
    }

    /// True when the junction limit is reached — the server must drop to
    /// Normal mode regardless of available power.
    pub fn is_throttling(&self) -> bool {
        self.node.temp_c() >= self.spec.limit_c - 1e-9
    }

    /// Advance the package by `dt` under constant chip `power_w`.
    ///
    /// While the chip sits at or above the PCM melt point and the buffer
    /// has headroom, heat beyond what the heatsink dissipates at the melt
    /// point flows into the phase change, clamping the chip there. Below
    /// the melt point, spare cooling capacity refreezes the buffer.
    pub fn advance(&mut self, power_w: f64, dt: SimDuration) {
        // Sub-step for the piecewise regimes (1 s is far below τ = 120 s;
        // each sub-step still uses the exact RC solution).
        let mut remaining = dt.as_secs_f64();
        while remaining > 0.0 {
            let step = remaining.min(1.0);
            remaining -= step;
            let melt = self.pcm.melt_temp_c;
            let at_melt_band = self.node.temp_c() >= melt;
            if at_melt_band && !self.pcm.is_spent() {
                // Clamp at the melt point; excess heat melts wax.
                let dissipation = (melt - self.spec.ambient_c) / self.spec.resistance_k_per_w;
                let excess_w = power_w - dissipation;
                if excess_w > 0.0 {
                    let absorbed = self.pcm.absorb(excess_w * step);
                    let leftover_j = excess_w * step - absorbed;
                    self.node
                        .set_temp_c(melt + leftover_j / self.spec.capacitance_j_per_k);
                } else {
                    // Power dropped below the melt-point dissipation:
                    // refreeze with the spare capacity, temperature holds.
                    self.pcm.release(-excess_w * step);
                    self.node.set_temp_c(melt);
                }
            } else {
                self.node.advance(power_w, step);
                // Refreeze opportunistically when below the melt point.
                if self.node.temp_c() < melt {
                    let spare_w = self.node.dissipation_w() - power_w;
                    if spare_w > 0.0 {
                        self.pcm.release(spare_w * step);
                    }
                }
            }
        }
    }

    /// How long constant `power_w` can run from the current state before
    /// the junction limit trips (capped at 24 h; `None` means the power is
    /// sustainable for at least that long).
    pub fn sprint_headroom(&self, power_w: f64) -> Option<SimDuration> {
        if power_w <= self.spec.sustainable_power_w() {
            return None;
        }
        let mut probe = self.clone();
        let mut elapsed = 0u64;
        const CAP_S: u64 = 24 * 3_600;
        const STEP_S: u64 = 5;
        while elapsed < CAP_S {
            if probe.is_throttling() {
                return Some(SimDuration::from_secs(elapsed));
            }
            probe.advance(power_w, SimDuration::from_secs(STEP_S));
            elapsed += STEP_S;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustainable_power_matches_calibration() {
        let spec = ThermalSpec::paper_server();
        assert!((spec.sustainable_power_w() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn without_pcm_full_sprint_throttles_in_minutes() {
        let mut pkg = ThermalPackage::without_pcm();
        // Pre-warm at Normal load.
        pkg.advance(100.0, SimDuration::from_mins(30));
        let headroom = pkg.sprint_headroom(155.0).expect("sprint must overheat");
        let mins = headroom.as_secs_f64() / 60.0;
        assert!(mins < 5.0, "headroom {mins:.1} min");
        // Actually driving it there throttles.
        pkg.advance(155.0, SimDuration::from_mins(5));
        assert!(pkg.is_throttling());
    }

    #[test]
    fn paper_pcm_delays_the_limit_by_hours() {
        let mut pkg = ThermalPackage::paper_spec();
        pkg.advance(100.0, SimDuration::from_mins(30));
        let headroom = pkg.sprint_headroom(155.0).expect("eventually overheats");
        let hours = headroom.as_secs_f64() / 3_600.0;
        assert!(hours > 2.0, "headroom only {hours:.2} h");
        // A 60-minute full sprint never throttles — the paper's working
        // assumption for every burst it evaluates.
        pkg.advance(155.0, SimDuration::from_mins(60));
        assert!(!pkg.is_throttling(), "temp {}", pkg.temp_c());
        assert!(pkg.pcm_melted_fraction() > 0.0);
    }

    #[test]
    fn pcm_clamps_temperature_at_melt_point() {
        let mut pkg = ThermalPackage::paper_spec();
        pkg.advance(155.0, SimDuration::from_mins(30));
        assert!((pkg.temp_c() - 80.0).abs() < 0.5, "temp {}", pkg.temp_c());
    }

    #[test]
    fn pcm_refreezes_during_normal_operation() {
        let mut pkg = ThermalPackage::paper_spec();
        pkg.advance(155.0, SimDuration::from_mins(30));
        let melted = pkg.pcm_melted_fraction();
        assert!(melted > 0.0);
        // Cool-down at Normal load refreezes the wax (excess cooling
        // capacity during non-sprinting periods, paper §II).
        pkg.advance(76.0, SimDuration::from_hours(2));
        assert!(pkg.pcm_melted_fraction() < melted);
    }

    #[test]
    fn sustainable_power_never_trips() {
        let mut pkg = ThermalPackage::without_pcm();
        assert!(pkg.sprint_headroom(110.0).is_none());
        pkg.advance(110.0, SimDuration::from_hours(4));
        assert!(!pkg.is_throttling());
    }

    #[test]
    fn headroom_shrinks_as_pcm_depletes() {
        let mut pkg = ThermalPackage::paper_spec();
        pkg.advance(100.0, SimDuration::from_mins(30));
        let fresh = pkg.sprint_headroom(155.0).unwrap();
        pkg.advance(155.0, SimDuration::from_hours(1));
        let depleted = pkg.sprint_headroom(155.0).unwrap();
        assert!(depleted < fresh);
    }
}
