//! # gs-tco — total cost of ownership for green sprinting
//!
//! Reproduces the paper's TCO consideration (§IV-F, Fig. 11): is the
//! *additional* green provisioning (PV panels, batteries, PCM thermal
//! package) paid back by the revenue that sprinting generates?
//!
//! Paper constants:
//! * sprint revenue: $0.28 per KW per minute of sprinting;
//! * PV capex: $4.74 per watt, amortized over a 25-year panel lifetime;
//! * battery cost: $50 per KW per year;
//! * PCM (wax) cost: < 0.1 % of server cost — negligible.
//!
//! The profit-over-investment (POI) per KW of sprint capacity as a
//! function of yearly sprint hours crosses zero near 14 h/year, so even a
//! handful of Black-Friday-scale events justifies the investment.

pub mod wear;

use serde::{Deserialize, Serialize};

/// Model parameters, defaulting to the paper's constants.
///
/// # Example
///
/// ```
/// use gs_tco::TcoParams;
/// let tco = TcoParams::paper();
/// // Fig. 11's crossover: green provisioning pays for itself past
/// // ~14 sprint-hours a year.
/// assert!((tco.crossover_hours() - 14.3).abs() < 0.1);
/// assert!(tco.poi(36.0) > 0.0);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcoParams {
    /// Revenue per KW of sprint capacity per minute of sprinting ($).
    pub revenue_per_kw_min: f64,
    /// PV capital cost per watt ($).
    pub pv_capex_per_w: f64,
    /// PV amortization period (years).
    pub pv_lifetime_years: f64,
    /// Battery provisioning cost per KW per year ($).
    pub battery_cost_per_kw_year: f64,
    /// PCM thermal-package cost per KW per year ($; negligible).
    pub pcm_cost_per_kw_year: f64,
}

impl Default for TcoParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl TcoParams {
    /// The paper's constants.
    pub fn paper() -> Self {
        TcoParams {
            revenue_per_kw_min: 0.28,
            pv_capex_per_w: 4.74,
            pv_lifetime_years: 25.0,
            battery_cost_per_kw_year: 50.0,
            pcm_cost_per_kw_year: 0.0,
        }
    }

    /// Yearly amortized green capex per KW of sprint capacity ($/KW/yr).
    pub fn yearly_capex_per_kw(&self) -> f64 {
        let pv = self.pv_capex_per_w * 1_000.0 / self.pv_lifetime_years;
        pv + self.battery_cost_per_kw_year + self.pcm_cost_per_kw_year
    }

    /// Sprint revenue per KW per year at the given yearly sprint hours.
    pub fn yearly_revenue_per_kw(&self, sprint_hours_per_year: f64) -> f64 {
        self.revenue_per_kw_min * 60.0 * sprint_hours_per_year.max(0.0)
    }

    /// Profit over investment ($/KW/yr) at the given yearly sprint hours —
    /// the y-axis of paper Fig. 11.
    pub fn poi(&self, sprint_hours_per_year: f64) -> f64 {
        self.yearly_revenue_per_kw(sprint_hours_per_year) - self.yearly_capex_per_kw()
    }

    /// The break-even point in sprint hours per year (the Fig. 11
    /// crossover, ≈ 14 h/yr with the paper's constants).
    pub fn crossover_hours(&self) -> f64 {
        self.yearly_capex_per_kw() / (self.revenue_per_kw_min * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_about_fourteen_hours() {
        let p = TcoParams::paper();
        let x = p.crossover_hours();
        assert!((13.0..15.5).contains(&x), "crossover at {x} h/yr");
        // POI straddles zero around the crossover.
        assert!(p.poi(x - 1.0) < 0.0);
        assert!(p.poi(x + 1.0) > 0.0);
        assert!((p.poi(x)).abs() < 1e-9);
    }

    #[test]
    fn figure11_points_have_expected_shape() {
        let p = TcoParams::paper();
        // The paper plots 12 / 24 / 36 yearly sprint hours.
        let poi12 = p.poi(12.0);
        let poi24 = p.poi(24.0);
        let poi36 = p.poi(36.0);
        assert!(poi12 < 0.0, "12 h/yr should be unprofitable: {poi12}");
        assert!(poi24 > 0.0, "24 h/yr should be profitable: {poi24}");
        assert!(poi36 > poi24 && poi24 > poi12);
        // Magnitude sanity: 36 h/yr lands in the few-hundred-$ range of
        // the figure's y-axis.
        assert!((200.0..600.0).contains(&poi36), "poi36={poi36}");
    }

    #[test]
    fn capex_breakdown() {
        let p = TcoParams::paper();
        // PV: 4740 $/KW over 25 years = 189.6 $/KW/yr, plus 50 battery.
        assert!((p.yearly_capex_per_kw() - 239.6).abs() < 1e-9);
    }

    #[test]
    fn revenue_scales_linearly_and_clamps_negative_hours() {
        let p = TcoParams::paper();
        assert_eq!(p.yearly_revenue_per_kw(-5.0), 0.0);
        assert!((p.yearly_revenue_per_kw(2.0) - 0.28 * 120.0).abs() < 1e-12);
    }

    #[test]
    fn cheaper_panels_move_crossover_left() {
        let mut p = TcoParams::paper();
        p.pv_capex_per_w = 1.0; // modern module prices
        assert!(p.crossover_hours() < TcoParams::paper().crossover_hours());
    }
}
