//! Battery-wear economics — an extension beyond the paper's Fig. 11.
//!
//! The paper caps depth of discharge at 40 % (1300 cycles) but prices
//! batteries at a flat $/KW/year. Frequent sprinting consumes cycle life
//! faster than calendar aging, so heavy sprint schedules carry an extra
//! replacement cost. This module turns the engine's per-burst
//! `battery_cycles` into dollars, letting the examples explore when wear
//! starts to matter.

use gs_power::battery::BatterySpec;
use serde::{Deserialize, Serialize};

/// Battery-replacement economics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearModel {
    /// Replacement cost of one battery unit ($). VRLA units run roughly
    /// $150–250 per KWh of rated capacity; a 10 Ah / 12 V unit is 0.12 KWh.
    pub unit_cost_usd: f64,
    /// Cycle life at the operating DoD cap.
    pub cycle_life: f64,
    /// Calendar life (years) — the unit is replaced at this age even if
    /// cycles remain.
    pub calendar_life_years: f64,
}

impl WearModel {
    /// A wear model for a paper-spec VRLA unit, pricing capacity at
    /// `usd_per_kwh` (default handling: ~$200/KWh).
    pub fn for_spec(spec: &BatterySpec, usd_per_kwh: f64) -> Self {
        WearModel {
            unit_cost_usd: spec.rated_energy_wh() / 1_000.0 * usd_per_kwh,
            cycle_life: spec.cycle_life_at_max_dod,
            calendar_life_years: 5.0,
        }
    }

    /// Cost of consuming `cycles` equivalent cycles ($).
    pub fn cycle_cost_usd(&self, cycles: f64) -> f64 {
        self.unit_cost_usd * (cycles.max(0.0) / self.cycle_life)
    }

    /// Yearly wear cost ($/unit/yr) for a sprint schedule consuming
    /// `cycles_per_sprint` per event at `sprints_per_year` events, floored
    /// by calendar aging.
    pub fn yearly_cost_usd(&self, cycles_per_sprint: f64, sprints_per_year: f64) -> f64 {
        let cycling = self.cycle_cost_usd(cycles_per_sprint * sprints_per_year.max(0.0));
        let calendar = self.unit_cost_usd / self.calendar_life_years;
        cycling.max(calendar)
    }

    /// Sprints per year at which cycling overtakes calendar aging.
    pub fn cycling_dominates_after(&self, cycles_per_sprint: f64) -> f64 {
        if cycles_per_sprint <= 0.0 {
            return f64::INFINITY;
        }
        (self.cycle_life / self.calendar_life_years) / cycles_per_sprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WearModel {
        WearModel::for_spec(&BatterySpec::paper_batt(), 200.0)
    }

    #[test]
    fn unit_cost_from_capacity() {
        // 10 Ah × 12 V = 0.12 KWh × $200 = $24.
        assert!((model().unit_cost_usd - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_cost_is_linear() {
        let m = model();
        let one = m.cycle_cost_usd(1.0);
        assert!((m.cycle_cost_usd(10.0) - 10.0 * one).abs() < 1e-12);
        assert_eq!(m.cycle_cost_usd(-3.0), 0.0);
        // Using the whole cycle life costs the whole unit.
        assert!((m.cycle_cost_usd(m.cycle_life) - m.unit_cost_usd).abs() < 1e-9);
    }

    #[test]
    fn calendar_aging_floors_light_use() {
        let m = model();
        // One sprint a year: calendar aging dominates.
        let light = m.yearly_cost_usd(1.0, 1.0);
        assert!((light - m.unit_cost_usd / m.calendar_life_years).abs() < 1e-9);
        // Daily full-DoD sprinting: cycling dominates.
        let heavy = m.yearly_cost_usd(1.0, 365.0);
        assert!(heavy > light);
    }

    #[test]
    fn dominance_threshold() {
        let m = model();
        let at = m.cycling_dominates_after(1.0);
        // 1300 cycles / 5 years = 260 full-cycle sprints per year.
        assert!((at - 260.0).abs() < 1e-9);
        assert_eq!(m.cycling_dominates_after(0.0), f64::INFINITY);
    }
}
