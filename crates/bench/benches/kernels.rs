//! Kernel benchmarks: the hot inner loops every experiment leans on —
//! the request-level DES, the queueing solvers, the battery model, the
//! solar generator, the PSS planner, and the Q-learner.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use greensprint::profiler::ProfileTable;
use greensprint::qlearning::{reward, QLearner, RewardInputs};
use gs_cluster::ServerSetting;
use gs_power::battery::{Battery, BatterySpec};
use gs_power::pss::PowerSourceSelector;
use gs_power::solar::{SolarTrace, WeatherModel};
use gs_sim::{SimDuration, SimRng};
use gs_workload::apps::Application;
use gs_workload::des::ServerSim;
use gs_workload::queueing::Station;
use std::hint::black_box;

fn bench_des(c: &mut Criterion) {
    let app = Application::Memcached.profile();
    let setting = ServerSetting::max_sprint();
    let offered = app.slo_capacity(setting);
    let epoch = SimDuration::from_secs(10);
    let mut g = c.benchmark_group("des");
    // ~offered × 10 s requests simulated per iteration.
    g.throughput(Throughput::Elements((offered * 10.0) as u64));
    g.bench_function("memcached_epoch_at_capacity", |b| {
        b.iter(|| {
            let mut sim = ServerSim::new(SimRng::seed_from_u64(1));
            black_box(sim.advance_epoch(&app, setting, offered, offered, epoch))
        })
    });
    g.finish();
}

fn bench_queueing(c: &mut Criterion) {
    let st = Station {
        cores: 12,
        mean_service_s: 0.08,
        service_cv: 0.32,
    };
    c.bench_function("queueing_sojourn_tail", |b| {
        b.iter(|| black_box(st.sojourn_tail(100.0, 0.5)))
    });
    c.bench_function("queueing_slo_capacity_solve", |b| {
        b.iter(|| black_box(st.slo_capacity(0.5, 0.99)))
    });
    let mut g = c.benchmark_group("profiles");
    g.sample_size(10);
    g.bench_function("exhaustive_63_setting_sweep", |b| {
        let app = Application::SpecJbb.profile();
        b.iter(|| black_box(ProfileTable::build(&app)))
    });
    g.finish();
}

fn bench_battery(c: &mut Criterion) {
    c.bench_function("battery_discharge_step", |b| {
        let mut batt = Battery::new_full(BatterySpec::paper_batt());
        b.iter(|| {
            black_box(batt.discharge(155.0, SimDuration::from_millis(100)));
            if batt.at_dod_floor() {
                batt.reset_full();
            }
        })
    });
    c.bench_function("battery_sustainable_power", |b| {
        let batt = Battery::new_full(BatterySpec::paper_batt());
        b.iter(|| black_box(batt.sustainable_power(SimDuration::from_mins(10))))
    });
}

fn bench_solar(c: &mut Criterion) {
    c.bench_function("solar_generate_week", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(11);
            black_box(SolarTrace::generate(7, &WeatherModel::default(), &mut rng))
        })
    });
}

fn bench_pss(c: &mut Criterion) {
    let pss = PowerSourceSelector::new();
    c.bench_function("pss_plan", |b| {
        b.iter(|| black_box(pss.plan(465.0, 300.0, 200.0, 90.0, 0.0)))
    });
}

fn bench_qlearning(c: &mut Criterion) {
    let profiles = ProfileTable::cached(Application::SpecJbb);
    let max = profiles.get(ServerSetting::max_sprint());
    c.bench_function("qlearner_bootstrap", |b| {
        b.iter(|| {
            let mut q = QLearner::new(max.full_load_power_w, max.slo_capacity);
            q.bootstrap(profiles);
            black_box(q)
        })
    });
    c.bench_function("qlearner_choose_and_update", |b| {
        let mut q = QLearner::new(max.full_load_power_w, max.slo_capacity);
        q.bootstrap(profiles);
        let mut rng = SimRng::seed_from_u64(3);
        let actions = ServerSetting::all();
        b.iter(|| {
            let s = q.state(140.0, 50.0);
            let a = q.best_action(s, &actions, &mut rng);
            let r = reward(&RewardInputs {
                power_supply_w: 140.0,
                power_current_w: 130.0,
                qos_target_s: 0.5,
                qos_current_s: 0.3,
                offered_slo_fraction: 1.0,
                slo_percentile: 0.99,
            });
            q.update(s, a, r, s);
            black_box(a)
        })
    });
}

fn bench_loadgen(c: &mut Criterion) {
    use gs_workload::loadgen::{Driver, RateSchedule};
    let app = Application::SpecJbb.profile();
    let mut g = c.benchmark_group("loadgen");
    g.sample_size(10);
    g.bench_function("driver_steady_state_run", |b| {
        let driver = Driver {
            warmup: SimDuration::from_secs(10),
            measure: SimDuration::from_secs(60),
            tick: SimDuration::from_secs(5),
        };
        let schedule = RateSchedule::Constant(30.0);
        b.iter(|| black_box(driver.run(&app, ServerSetting::max_sprint(), &schedule, 3)))
    });
    g.finish();
}

fn bench_scale_out(c: &mut Criterion) {
    use greensprint::config::{AvailabilityLevel, GreenConfig};
    use greensprint::datacenter::{run_datacenter, DatacenterConfig, RackSpec};
    use greensprint::engine::{EngineConfig, MeasurementMode};
    use greensprint::pmk::Strategy;
    let mut g = c.benchmark_group("datacenter_scale_out");
    g.sample_size(10);
    for n_racks in [1usize, 4, 16] {
        g.bench_function(format!("racks_{n_racks}"), |b| {
            let cfg = DatacenterConfig {
                racks: (0..n_racks)
                    .map(|i| RackSpec {
                        app: Application::ALL[i % 3],
                        green: GreenConfig::re_sbatt(),
                        strategy: Strategy::Hybrid,
                    })
                    .collect(),
                template: EngineConfig {
                    availability: AvailabilityLevel::Medium,
                    burst_duration: SimDuration::from_mins(5),
                    measurement: MeasurementMode::Analytic,
                    ..EngineConfig::default()
                },
                site_fault_plan: None,
            };
            b.iter(|| black_box(run_datacenter(&cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_des,
    bench_queueing,
    bench_battery,
    bench_solar,
    bench_pss,
    bench_qlearning,
    bench_loadgen,
    bench_scale_out
);
criterion_main!(kernels);
