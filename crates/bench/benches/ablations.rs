//! Ablation benches for the design choices DESIGN.md calls out: the
//! predictor's smoothing factor, the pacing strategies' planning horizon,
//! and the measurement plane (analytic vs DES). Criterion's reports make
//! the performance cost of each choice visible; the printed speedups in
//! EXPERIMENTS.md cover the quality side.

use criterion::{criterion_group, criterion_main, Criterion};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{Engine, EngineConfig, MeasurementMode};
use greensprint::pmk::Strategy;
use greensprint::predictor::Predictor;
use gs_sim::{SimDuration, SimRng};
use std::hint::black_box;

fn base_cfg() -> EngineConfig {
    EngineConfig {
        green: GreenConfig::re_sbatt(),
        strategy: Strategy::Pacing,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(10),
        measurement: MeasurementMode::Analytic,
        seed: 7,
        ..EngineConfig::default()
    }
}

fn bench_predictor_alpha(c: &mut Criterion) {
    // The paper picks α = 0.3; sweep the filter cost and the tracking
    // error on a noisy signal for the alternatives.
    let mut g = c.benchmark_group("ablation_predictor_alpha");
    for alpha in [0.1_f64, 0.3, 0.5, 0.9] {
        g.bench_function(format!("alpha_{alpha}"), |b| {
            b.iter(|| {
                let mut p = Predictor::with_alpha(alpha);
                let mut rng = SimRng::seed_from_u64(5);
                let mut err = 0.0;
                let mut signal = 300.0;
                for _ in 0..512 {
                    signal = (signal + rng.normal(0.0, 40.0)).clamp(0.0, 635.0);
                    let pred = p.re_supply_w(signal);
                    err += (pred - signal).abs();
                    p.observe_re_supply(signal);
                }
                black_box(err)
            })
        });
    }
    g.finish();
}

fn bench_planning_horizon(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_planning_horizon");
    g.sample_size(10);
    for mins in [2u64, 10, 30] {
        g.bench_function(format!("horizon_{mins}min"), |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    planning_horizon: SimDuration::from_mins(mins),
                    ..base_cfg()
                };
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

fn bench_measurement_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_measurement_plane");
    g.sample_size(10);
    g.bench_function("analytic", |b| {
        b.iter(|| black_box(Engine::new(base_cfg()).run()))
    });
    g.bench_function("des", |b| {
        b.iter(|| {
            let cfg = EngineConfig {
                measurement: MeasurementMode::Des,
                ..base_cfg()
            };
            black_box(Engine::new(cfg).run())
        })
    });
    g.finish();
}

fn bench_epoch_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_epoch_length");
    g.sample_size(10);
    for secs in [30u64, 60, 300] {
        g.bench_function(format!("epoch_{secs}s"), |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    epoch: SimDuration::from_secs(secs),
                    ..base_cfg()
                };
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_predictor_alpha,
    bench_planning_horizon,
    bench_measurement_plane,
    bench_epoch_length
);
criterion_main!(ablations);
