//! Sweep-executor throughput: the same 24-point analytic grid pushed
//! through `run_sweep` serially and at full parallelism, so scheduling
//! overhead and scaling regressions are caught. Throughput is reported in
//! sweep points per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{EngineConfig, MeasurementMode};
use greensprint::pmk::Strategy;
use greensprint::sweep::{default_jobs, run_sweep, SweepPoint};
use gs_sim::SimDuration;
use gs_workload::apps::Application;
use std::hint::black_box;

fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for app in [Application::SpecJbb, Application::Memcached] {
        for strategy in [
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Hybrid,
        ] {
            for availability in AvailabilityLevel::ALL {
                let cfg = EngineConfig {
                    app,
                    green: GreenConfig::re_batt(),
                    strategy,
                    availability,
                    burst_duration: SimDuration::from_mins(10),
                    measurement: MeasurementMode::Analytic,
                    ..EngineConfig::default()
                };
                points.push(SweepPoint::burst(
                    format!("{app:?}/{strategy}/{availability:?}"),
                    cfg,
                ));
            }
        }
    }
    points
}

fn bench_sweep(c: &mut Criterion) {
    let n = grid().len() as u64;
    let mut g = c.benchmark_group("sweep");
    g.throughput(Throughput::Elements(n));
    g.sample_size(10);
    g.bench_function("grid24_serial", |b| {
        b.iter(|| black_box(run_sweep(grid(), 7, 1)))
    });
    g.bench_function("grid24_parallel", |b| {
        b.iter(|| black_box(run_sweep(grid(), 7, default_jobs())))
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
