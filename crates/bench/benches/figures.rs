//! One Criterion bench group per paper table/figure: each benchmark runs
//! the exact code path that regenerates that artifact (scaled to a single
//! representative cell where the full figure is a grid), so regressions in
//! any experiment's cost are caught.
//!
//! The full-figure outputs themselves are produced by the `experiments`
//! binary; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{Engine, EngineConfig, MeasurementMode};
use greensprint::pmk::Strategy;
use gs_sim::{SimDuration, SimRng};
use gs_tco::TcoParams;
use gs_workload::apps::Application;
use gs_workload::arrivals::DiurnalTrace;
use std::hint::black_box;

fn cell(
    app: Application,
    green: GreenConfig,
    strategy: Strategy,
    availability: AvailabilityLevel,
    mins: u64,
    intensity: u8,
) -> EngineConfig {
    EngineConfig {
        app,
        green,
        strategy,
        availability,
        burst_duration: SimDuration::from_mins(mins),
        burst_intensity_cores: intensity,
        measurement: MeasurementMode::Analytic,
        seed: 7,
        ..EngineConfig::default()
    }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_green_configs", |b| {
        b.iter(|| black_box(GreenConfig::table1()))
    });
    c.bench_function("table2_workload_profiles", |b| {
        b.iter(|| {
            for app in Application::ALL {
                black_box(app.profile().max_speedup());
            }
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_diurnal_trace_day", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(1);
            black_box(DiurnalTrace::generate(1, 4, &mut rng))
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_power_profile");
    g.sample_size(10);
    g.bench_function("one_hour_day_slice", |b| {
        b.iter(|| {
            let cfg = EngineConfig {
                availability: AvailabilityLevel::Medium,
                burst_duration: SimDuration::from_mins(60),
                burst_start_hour: 0.0,
                measurement: MeasurementMode::Analytic,
                ..EngineConfig::default()
            };
            black_box(Engine::new(cfg).run_with_monitor())
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_specjbb_re_batt");
    g.sample_size(10);
    for strategy in Strategy::SPRINTING {
        g.bench_function(strategy.label(), |b| {
            b.iter(|| {
                let cfg = cell(
                    Application::SpecJbb,
                    GreenConfig::re_batt(),
                    strategy,
                    AvailabilityLevel::Medium,
                    10,
                    12,
                );
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_power_configs");
    g.sample_size(10);
    for green in GreenConfig::table1() {
        g.bench_function(green.name.clone(), |b| {
            let green = green.clone();
            b.iter(|| {
                let cfg = cell(
                    Application::SpecJbb,
                    green.clone(),
                    Strategy::Hybrid,
                    AvailabilityLevel::Medium,
                    10,
                    12,
                );
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

fn bench_fig8_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fig9_other_apps");
    g.sample_size(10);
    for app in [Application::WebSearch, Application::Memcached] {
        g.bench_function(app.profile().name, |b| {
            b.iter(|| {
                let cfg = cell(
                    app,
                    GreenConfig::re_sbatt(),
                    Strategy::Hybrid,
                    AvailabilityLevel::Medium,
                    10,
                    12,
                );
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_burst_intensity");
    g.sample_size(10);
    for intensity in [12u8, 9, 7] {
        g.bench_function(format!("int_{intensity}"), |b| {
            b.iter(|| {
                let cfg = cell(
                    Application::SpecJbb,
                    GreenConfig::re_sbatt(),
                    Strategy::Hybrid,
                    AvailabilityLevel::Medium,
                    10,
                    intensity,
                );
                black_box(Engine::new(cfg).run())
            })
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_tco_poi_sweep", |b| {
        b.iter(|| {
            let tco = TcoParams::paper();
            let mut acc = 0.0;
            for h in 0..60 {
                acc += tco.poi(h as f64);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig1,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8_fig9,
    bench_fig10,
    bench_fig11
);
criterion_main!(figures);
