//! Property tests for the simulation kernel.

use gs_sim::{
    BinaryHeapQueue, EventQueue, Ewma, OnlineStats, ReservoirPercentiles, SimDuration, SimRng,
    SimTime,
};
use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue is a stable priority queue: pops are sorted by
    /// time, and equal times preserve insertion order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0_u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_millis(t));
            if let Some((prev_t, prev_i)) = last {
                prop_assert!(at >= prev_t);
                if at == prev_t {
                    prop_assert!(i > prev_i, "FIFO violated at equal timestamps");
                }
            }
            last = Some((at, i));
        }
    }

    /// The calendar queue and the reference binary heap dequeue identical
    /// `(time, event)` sequences under interleaved schedule/pop traffic
    /// with heavy timestamp duplication — the property the DES leans on
    /// when it swaps queue implementations.
    #[test]
    fn calendar_matches_heap_under_interleaving(
        ops in prop::collection::vec(
            (prop::collection::vec(0_u64..8, 0..12), 0_usize..8),
            1..40,
        )
    ) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut next_id = 0_u32;
        for (offsets, pops) in ops {
            // Tiny offsets force many exact-duplicate timestamps.
            for off in offsets {
                let at = cal.now() + SimDuration::from_millis(off);
                cal.schedule(at, next_id);
                heap.schedule(at, next_id);
                next_id += 1;
            }
            for _ in 0..pops {
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.now(), heap.now());
                prop_assert_eq!(cal.len(), heap.len());
            }
        }
        // Drain both to the end: every remaining event agrees too.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The clock never runs backwards.
    #[test]
    fn event_queue_clock_is_monotone(times in prop::collection::vec(0_u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_millis(t), ());
        }
        let mut prev = SimTime::ZERO;
        while q.pop().is_some() {
            prop_assert!(q.now() >= prev);
            prev = q.now();
        }
    }

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn online_stats_merge_any_split(
        data in prop::collection::vec(-1e6_f64..1e6, 2..100),
        split_frac in 0.0_f64..1.0,
    ) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..split].iter().for_each(|&x| a.record(x));
        data[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().max(1.0));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Exact percentiles below the reservoir cap bracket the data.
    #[test]
    fn percentiles_bracket_data(data in prop::collection::vec(-1e3_f64..1e3, 1..500)) {
        let mut p = ReservoirPercentiles::with_cap(1_000);
        data.iter().for_each(|&x| p.record(x));
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = p.quantile(q).unwrap();
            prop_assert!((lo..=hi).contains(&v), "q={q} gave {v} outside [{lo}, {hi}]");
        }
        prop_assert_eq!(p.quantile(0.0).unwrap(), lo);
        prop_assert_eq!(p.quantile(1.0).unwrap(), hi);
    }

    /// EWMA output always lies between the previous estimate and the new
    /// observation (it is a convex combination).
    #[test]
    fn ewma_is_convex(alpha in 0.0_f64..=1.0, obs in prop::collection::vec(-1e3_f64..1e3, 1..50)) {
        let mut e = Ewma::new(alpha);
        let mut prev: Option<f64> = None;
        for &x in &obs {
            let out = e.observe(x);
            if let Some(p) = prev {
                let lo = p.min(x) - 1e-9;
                let hi = p.max(x) + 1e-9;
                prop_assert!((lo..=hi).contains(&out));
            } else {
                prop_assert_eq!(out, x);
            }
            prev = Some(out);
        }
    }

    /// Forked RNG streams are reproducible and distinct.
    #[test]
    fn rng_forks_reproduce(seed in 0_u64..1_000) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..16 {
            prop_assert_eq!(fa.uniform(), fb.uniform());
        }
        // Parent and child streams differ.
        let x: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let y: Vec<f64> = (0..8).map(|_| fa.uniform()).collect();
        prop_assert!(x != y);
    }

    /// Exponential samples are non-negative; Poisson counts are finite.
    #[test]
    fn distribution_supports(seed in 0_u64..500, mean in 0.001_f64..100.0) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(r.exp(mean) >= 0.0);
            let _ = r.poisson(mean); // must terminate and not panic
            prop_assert!(r.lognormal_mean_cv(mean, 0.4) > 0.0);
        }
    }

    /// Duration arithmetic: (a + b) - b == a, and saturating subtraction
    /// never underflows.
    #[test]
    fn duration_arithmetic(a in 0_u64..1_000_000, b in 0_u64..1_000_000) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((da + db) - db, da);
        if b > a {
            prop_assert_eq!(da - db, SimDuration::ZERO);
        }
    }
}
