//! Simulation time: a monotonically increasing clock with microsecond
//! resolution, represented as an integer so that event ordering is exact
//! and reproducible (no floating-point tie ambiguity in the event queue).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, measured in microseconds since the start of
/// the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * MICROS_PER_SEC)
    }

    /// Microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whole seconds since the simulation origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Whole minutes since the simulation origin (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / (60 * MICROS_PER_SEC)
    }

    /// Hours since the origin, as a float (useful for diurnal models).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Duration since an earlier time; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time-of-day within a repeating 24 h cycle, in hours `[0, 24)`.
    pub fn hour_of_day(self) -> f64 {
        self.as_hours_f64() % 24.0
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours in this duration, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Whole minutes (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / (60 * MICROS_PER_SEC)
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of one duration by another (how many whole
    /// `other` fit into `self`); `None` if `other` is zero.
    pub const fn div_duration(self, other: SimDuration) -> Option<u64> {
        self.0.checked_div(other.0)
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.as_secs();
        let (h, m, s) = (total_s / 3600, (total_s / 60) % 60, total_s % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(5).as_micros(), 5 * MICROS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_mins(2).as_secs(), 120);
        assert_eq!(SimTime::from_hours(1).as_mins(), 60);
        assert_eq!(SimDuration::from_mins(10).as_secs(), 600);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(5)).as_secs(), 10);
        // Saturating subtraction never panics or wraps.
        assert_eq!(
            SimTime::from_secs(1) - SimDuration::from_secs(100),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(26);
        assert!((t.hour_of_day() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn div_duration() {
        let epoch = SimDuration::from_secs(60);
        assert_eq!(SimDuration::from_mins(10).div_duration(epoch), Some(10));
        assert_eq!(SimDuration::from_secs(59).div_duration(epoch), Some(0));
        assert_eq!(epoch.div_duration(SimDuration::ZERO), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.5).as_secs(), 5);
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }
}
