//! Deterministic discrete-event queues.
//!
//! Events are ordered by [`SimTime`]; ties are broken by insertion order so
//! that simulations are fully deterministic regardless of container
//! internals.
//!
//! Two implementations share the contract:
//!
//! * [`EventQueue`] — the production queue, a bucketed *calendar queue*:
//!   events hash by timestamp into a power-of-two ring of sorted buckets,
//!   inserts cost O(bucket occupancy) (kept ~constant by doubling the ring
//!   when it saturates), and the next event is the minimum over bucket
//!   fronts, memoized so `peek_time` is O(1). A monotonically increasing
//!   sequence number breaks timestamp ties FIFO, so the pop order is the
//!   total order `(at, seq)` — independent of bucket geometry or resize
//!   history.
//! * [`BinaryHeapQueue`] — the original heap-backed implementation, retained
//!   as the reference for dequeue-order equivalence property tests (see
//!   `tests/queue_equivalence.rs`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

// ---------------------------------------------------------------------------
// Calendar queue (production implementation)
// ---------------------------------------------------------------------------

/// Initial number of buckets (power of two).
const INITIAL_BUCKETS: usize = 4;
/// Ring stops doubling past this many buckets; beyond it buckets just grow.
const MAX_BUCKETS: usize = 1024;
/// Double the ring when average bucket occupancy exceeds this.
const GROW_OCCUPANCY: usize = 4;
/// Initial bucket width: one simulated second per bucket.
const INITIAL_WIDTH_US: u64 = 1_000_000;

/// A min-priority queue of timestamped events with stable FIFO tie-breaking,
/// backed by a bucketed calendar queue.
pub struct EventQueue<E> {
    /// Ring of buckets, each sorted ascending by `(at_us, seq)`.
    buckets: Vec<VecDeque<(u64, u64, E)>>,
    /// Bucket width in microseconds (>= 1).
    width_us: u64,
    /// Pending events across all buckets.
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// `(at_us, seq, bucket)` of the global minimum; `Some` iff `len > 0`.
    min_cache: Option<(u64, u64, usize)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| VecDeque::new()).collect(),
            width_us: INITIAL_WIDTH_US,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            min_cache: None,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn bucket_of(&self, at_us: u64) -> usize {
        // width >= 1 and bucket count is a power of two.
        ((at_us / self.width_us) as usize) & (self.buckets.len() - 1)
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event fires "now" instead (clamped), keeping
    /// the clock monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let at_us = at.as_micros();
        let seq = self.next_seq;
        self.next_seq += 1;

        if self.len >= GROW_OCCUPANCY * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.grow();
        }

        let b = self.bucket_of(at_us);
        let bucket = &mut self.buckets[b];
        // Insert after every entry with an equal-or-earlier timestamp: seq is
        // globally increasing, so this keeps the bucket sorted by (at, seq)
        // and equal timestamps FIFO.
        let idx = bucket.partition_point(|&(t, _, _)| t <= at_us);
        bucket.insert(idx, (at_us, seq, event));
        self.len += 1;

        match self.min_cache {
            // seq is larger than every pending seq, so the new event only
            // becomes the minimum on a strictly earlier timestamp.
            Some((min_at, _, _)) if at_us >= min_at => {}
            _ => self.min_cache = Some((at_us, seq, b)),
        }
    }

    /// Double the bucket ring and re-spread all pending events.
    ///
    /// Deterministic: the rebuild order depends only on the pending
    /// `(at, seq)` set, never on prior bucket geometry.
    fn grow(&mut self) {
        let mut all: Vec<(u64, u64, E)> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.sort_unstable_by_key(|&(at, seq, _)| (at, seq));

        // Re-derive the bucket width from the pending span so occupancy
        // stays near one event per bucket slot.
        let n = self.buckets.len() * 2;
        if let (Some(first), Some(last)) = (all.first(), all.last()) {
            let span = last.0 - first.0;
            self.width_us = (span / all.len() as u64).max(1);
        }
        self.buckets = (0..n).map(|_| VecDeque::new()).collect();
        for (at_us, seq, event) in all {
            let b = self.bucket_of(at_us);
            // `all` is globally sorted, so per-bucket order stays sorted.
            self.buckets[b].push_back((at_us, seq, event));
        }
        self.refresh_min();
    }

    /// Recompute the cached minimum by scanning bucket fronts. Each bucket
    /// is sorted, so the global minimum is always some bucket's front.
    fn refresh_min(&mut self) {
        self.min_cache = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, q)| q.front().map(|&(at, seq, _)| (at, seq, b)))
            .min_by_key(|&(at, seq, _)| (at, seq));
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (_, _, b) = self.min_cache?;
        let (at_us, _, event) = self.buckets[b].pop_front().expect("cached min bucket");
        self.len -= 1;
        let at = SimTime::from_micros(at_us);
        self.now = at;
        self.refresh_min();
        Some((at, event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_cache
            .map(|(at_us, _, _)| SimTime::from_micros(at_us))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all pending events, leaving the clock untouched.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.min_cache = None;
    }
}

// ---------------------------------------------------------------------------
// Binary-heap reference implementation
// ---------------------------------------------------------------------------

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and among equal times the lowest sequence number pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap-backed reference queue: same contract as [`EventQueue`], kept
/// for dequeue-order equivalence property tests.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (same clamping semantics as
    /// [`EventQueue::schedule`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove all pending events, leaving the clock untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_secs(), e), (1, 1));
        // Scheduling relative to the advanced clock works.
        q.schedule(q.now() + crate::SimDuration::from_secs(1), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_secs(), e), (2, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn survives_bucket_ring_growth() {
        // Push far past the grow threshold with a mix of clustered and
        // spread timestamps, then verify the global (time, FIFO) order.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let t = SimTime::from_micros((i * 7919) % 100 * 250_000);
            q.schedule(t, i);
            expect.push((t, i));
        }
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_reference_queue_exactly() {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        // Interleave schedules and pops, with duplicate timestamps.
        // Offsets are relative to the popped-to clock so no event lands
        // in the past (schedule() rejects that by contract).
        let times = [5u64, 3, 5, 1, 3, 3, 9, 1, 5, 2, 8, 8, 0, 7, 5];
        for (i, &t) in times.iter().enumerate() {
            let at = cal.now() + crate::SimDuration::from_secs(t);
            cal.schedule(at, i);
            heap.schedule(at, i);
            if i % 3 == 2 {
                assert_eq!(cal.pop(), heap.pop());
                assert_eq!(cal.now(), heap.now());
            }
        }
        while !heap.is_empty() {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert!(cal.is_empty());
    }
}
