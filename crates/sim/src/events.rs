//! A stable discrete-event queue.
//!
//! Events are ordered by [`SimTime`]; ties are broken by insertion order so
//! that simulations are fully deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and among equal times the lowest sequence number pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event fires "now" instead (clamped), keeping
    /// the clock monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove all pending events, leaving the clock untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_secs(), e), (1, 1));
        // Scheduling relative to the advanced clock works.
        q.schedule(q.now() + crate::SimDuration::from_secs(1), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_secs(), e), (2, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
