//! Seeded random number generation and the distributions the simulator needs.
//!
//! The generator is a self-contained xoshiro256++ (seeded through
//! SplitMix64, the construction its authors recommend), so the kernel has
//! no external RNG dependency and the stream is reproducible across
//! platforms for a given seed. The non-uniform distributions (exponential,
//! normal, log-normal, Poisson, Pareto) are implemented with standard,
//! well-understood methods (inverse transform, Marsaglia polar,
//! Knuth/inversion-by-chop).

/// Expand a 64-bit seed into successive SplitMix64 outputs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The simulator's random source: xoshiro256++ with convenience samplers.
///
/// Serializable so a checkpoint can capture the exact stream position: a
/// generator restored from its serialized form continues with the same
/// outputs the original would have produced.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second value from the Marsaglia polar method.
    cached_gaussian: Option<f64>,
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            cached_gaussian: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator (e.g. one per server) from
    /// this generator's stream. Children created in the same order are
    /// identical across runs.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard double in [0, 1) with full mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "uniform_range requires hi >= lo");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        // Lemire-style widening multiply: unbiased enough for simulation
        // (bias < 2^-64 relative) and branch-free.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inverse-transform sampling).
    /// A non-positive mean returns 0 (degenerate distribution).
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - U is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal via the Marsaglia polar method (caches the spare).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_gaussian.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached_gaussian = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal parameterized by the *target* mean and coefficient of
    /// variation of the resulting distribution (not of the underlying
    /// normal), which is the natural parameterization for service times.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation (continuity-corrected, clamped at zero) for large ones.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.uniform();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(mean, mean.sqrt()) + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }

    /// Bounded Pareto sample (heavy-tailed burst magnitudes). `alpha > 0`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(
            alpha > 0.0 && lo > 0.0 && hi > lo,
            "invalid Pareto parameters"
        );
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_reproducible_and_independent() {
        let mut root1 = SimRng::seed_from_u64(42);
        let mut root2 = SimRng::seed_from_u64(42);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.uniform(), c2.uniform());
        // A second fork differs from the first.
        let mut c3 = root1.fork();
        assert_ne!(c1.uniform(), c3.uniform());
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn exp_degenerate_mean() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::seed_from_u64(4);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_and_cv_converge() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(4.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 4.0).abs() < 0.05, "mean={mean}");
        assert!((cv - 0.5).abs() < 0.02, "cv={cv}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = SimRng::seed_from_u64(5);
        assert_eq!(r.lognormal_mean_cv(4.0, 0.0), 4.0);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = SimRng::seed_from_u64(6);
        for &mean in &[0.5, 5.0, 80.0] {
            let n = 100_000;
            let avg = (0..n).map(|_| r.poisson(mean)).sum::<u64>() as f64 / n as f64;
            assert!(
                (avg - mean).abs() < 0.05 * mean.max(1.0),
                "mean={mean} avg={avg}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn serialized_rng_continues_the_stream() {
        let mut r = SimRng::seed_from_u64(11);
        // Burn an odd number of gaussians so the polar-method cache is hot.
        let _ = r.standard_normal();
        for _ in 0..17 {
            let _ = r.uniform();
        }
        let json = serde_json::to_string(&r).unwrap();
        let mut restored: SimRng = serde_json::from_str(&json).unwrap();
        for _ in 0..64 {
            assert_eq!(r.next_u64(), restored.next_u64());
        }
        assert_eq!(r.standard_normal(), restored.standard_normal());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
