//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, CACM 1985).
//!
//! Tracks one quantile in O(1) memory without storing samples — the
//! complement to [`crate::stats::ReservoirPercentiles`] for very long
//! campaigns where even a capped reservoir is more state than needed.

use serde::{Deserialize, Serialize};

/// A single-quantile P² estimator.
///
/// # Example
///
/// ```
/// use gs_sim::P2Quantile;
/// let mut p99 = P2Quantile::new(0.99);
/// for i in 1..=1000 {
///     p99.record(i as f64);
/// }
/// let est = p99.estimate().unwrap();
/// assert!((est - 990.0).abs() < 20.0);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimates of the 5 tracked quantile positions).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// Track the `q`-quantile (`0 < q < 1`).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            }
            return;
        }
        self.count += 1;

        // Find the cell and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let step = d.signum();
                let parabolic = self.parabolic(i, step);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, step)
                    };
                self.positions[i] += step;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q0, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n0, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        q0 + d / (np - nm)
            * ((n0 - nm + d) * (qp - q0) / (np - n0) + (np - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate; `None` before any observation. Exact for
    /// fewer than five samples (sorted lookup), P²-estimated afterwards.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut head: Vec<f64> = self.heights[..n as usize].to_vec();
                head.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n as usize);
                Some(head[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn exact_below_five_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.record(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.record(2.0);
        p.record(6.0);
        // Median of {2, 6, 10} by nearest rank.
        assert_eq!(p.estimate(), Some(6.0));
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100_000 {
            p.record(rng.uniform());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
        assert_eq!(p.count(), 100_000);
    }

    #[test]
    fn tail_quantile_of_exponential_converges() {
        let mut p = P2Quantile::new(0.99);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..200_000 {
            p.record(rng.exp(1.0));
        }
        // True p99 of Exp(1) is ln(100) ≈ 4.605.
        let est = p.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.25, "p99 {est}");
    }

    #[test]
    fn agrees_with_reservoir_on_lognormal_latencies() {
        let mut p2 = P2Quantile::new(0.95);
        let mut reservoir = crate::stats::ReservoirPercentiles::with_cap(200_000);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..120_000 {
            let x = rng.lognormal_mean_cv(0.1, 0.4);
            p2.record(x);
            reservoir.record(x);
        }
        let a = p2.estimate().unwrap();
        let b = reservoir.quantile(0.95).unwrap();
        assert!((a - b).abs() / b < 0.03, "p2 {a} vs exact {b}");
    }

    #[test]
    fn monotone_under_shifted_data() {
        // Estimates track a location shift.
        let run = |offset: f64| {
            let mut p = P2Quantile::new(0.9);
            let mut rng = SimRng::seed_from_u64(4);
            for _ in 0..50_000 {
                p.record(offset + rng.uniform());
            }
            p.estimate().unwrap()
        };
        assert!(run(10.0) > run(0.0) + 9.5);
    }

    #[test]
    fn exact_head_covers_every_rank() {
        // For n < 5 the estimator must be *exact* by nearest rank, for
        // any quantile, at every warmup length.
        let data = [7.0, 1.0, 5.0, 3.0];
        for n in 1..=4usize {
            let mut sorted: Vec<f64> = data[..n].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (q, _) in [(0.01, ()), (0.25, ()), (0.5, ()), (0.75, ()), (0.99, ())] {
                let mut p = P2Quantile::new(q);
                for &x in &data[..n] {
                    p.record(x);
                }
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                assert_eq!(
                    p.estimate(),
                    Some(sorted[rank - 1]),
                    "q={q} n={n} must be the exact rank-{rank} statistic"
                );
            }
        }
    }

    #[test]
    fn constant_stream_of_duplicates_is_exact() {
        // Degenerate marker gaps (all heights equal) must not divide by
        // zero or drift: the estimate of a constant stream is the value.
        let mut p = P2Quantile::new(0.9);
        for _ in 0..10_000 {
            p.record(3.5);
        }
        assert_eq!(p.estimate(), Some(3.5));
    }

    #[test]
    fn two_point_mass_with_heavy_duplicates() {
        // 90% zeros / 10% ones: the median is 0, the p99 is 1.
        let mut med = P2Quantile::new(0.5);
        let mut p99 = P2Quantile::new(0.99);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..50_000 {
            let x = if rng.chance(0.1) { 1.0 } else { 0.0 };
            med.record(x);
            p99.record(x);
        }
        let (m, t) = (med.estimate().unwrap(), p99.estimate().unwrap());
        assert!(m < 0.2, "median of 90% zeros drifted to {m}");
        assert!(t > 0.8, "p99 of 10% ones collapsed to {t}");
    }

    #[test]
    fn estimate_stays_within_observed_range() {
        // The parabolic update can overshoot; the linear fallback must
        // keep every estimate inside [min, max] of the data seen.
        let mut p = P2Quantile::new(0.95);
        let mut rng = SimRng::seed_from_u64(10);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in 0..20_000 {
            // Mix duplicates, bursts, and smooth noise.
            let x = match i % 4 {
                0 => 2.0,
                1 => rng.uniform() * 10.0,
                2 => rng.exp(0.5),
                _ => 2.0,
            };
            lo = lo.min(x);
            hi = hi.max(x);
            p.record(x);
            let est = p.estimate().unwrap();
            assert!(
                (lo..=hi).contains(&est),
                "estimate {est} escaped observed range [{lo}, {hi}] at i={i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
