//! Time-series buffers for recorded simulation signals (power draw,
//! renewable production, goodput per epoch, …) with simple resampling and
//! aggregation, used by the experiment harness to print figure series.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An append-only series of `(time, value)` points with non-decreasing time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    name: String,
}

impl TimeSeries {
    /// Create an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            points: Vec::new(),
            name: name.into(),
        }
    }

    /// The series name (used as a column header by the harness).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a point. Time must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in time order");
        }
        self.points.push((t, v));
    }

    /// Pre-allocate room for `additional` more points (a capacity hint —
    /// never observable in the recorded data).
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// All points, in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at time `t` by step interpolation (last point at or before
    /// `t`); `None` before the first point or when empty.
    pub fn sample_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Mean of the values whose timestamps fall in `[from, to)`;
    /// `None` if the window contains no points.
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Maximum value in `[from, to)`; `None` if the window is empty.
    pub fn window_max(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Resample to fixed `step` buckets covering `[start, end)`, taking the
    /// mean of points in each bucket and carrying the previous bucket's
    /// value forward through empty buckets (0 before any data).
    pub fn resample_mean(
        &self,
        start: SimTime,
        end: SimTime,
        step: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        let mut carry = 0.0;
        while t < end {
            let next = t + step;
            let v = self.window_mean(t, next).unwrap_or(carry);
            carry = v;
            out.push((t, v));
            t = next;
        }
        out
    }

    /// Trapezoid-free integral treating the series as a step function held
    /// constant until the next point, over `[from, to)`. For a power series
    /// in watts with times in hours this yields watt-hours; we expose it in
    /// value-seconds so callers pick the unit.
    pub fn step_integral_value_seconds(&self, from: SimTime, to: SimTime) -> f64 {
        if self.points.is_empty() || to <= from {
            return 0.0;
        }
        let mut total = 0.0;
        // Value in effect at `from`.
        let mut cur_val = self.sample_at(from).unwrap_or(0.0);
        let mut cur_t = from;
        for &(t, v) in &self.points {
            if t <= from {
                continue;
            }
            if t >= to {
                break;
            }
            total += cur_val * (t - cur_t).as_secs_f64();
            cur_val = v;
            cur_t = t;
        }
        total += cur_val * (to - cur_t).as_secs_f64();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(t, v) in pts {
            s.push(SimTime::from_secs(t), v);
        }
        s
    }

    #[test]
    fn push_and_sample() {
        let s = series(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        assert_eq!(s.sample_at(SimTime::from_secs(0)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_secs(5)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_secs(10)), Some(2.0));
        assert_eq!(s.sample_at(SimTime::from_secs(99)), Some(3.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sample_before_first_point_is_none() {
        let s = series(&[(10, 2.0)]);
        assert_eq!(s.sample_at(SimTime::from_secs(5)), None);
        assert_eq!(TimeSeries::new("e").sample_at(SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order() {
        let mut s = series(&[(10, 1.0)]);
        s.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn window_mean_and_max() {
        let s = series(&[(0, 1.0), (10, 3.0), (20, 5.0), (30, 7.0)]);
        assert_eq!(
            s.window_mean(SimTime::ZERO, SimTime::from_secs(21)),
            Some(3.0)
        );
        assert_eq!(
            s.window_max(SimTime::from_secs(5), SimTime::from_secs(25)),
            Some(5.0)
        );
        assert_eq!(
            s.window_mean(SimTime::from_secs(100), SimTime::from_secs(200)),
            None
        );
    }

    #[test]
    fn resample_carries_forward() {
        let s = series(&[(0, 2.0), (25, 4.0)]);
        let r = s.resample_mean(
            SimTime::ZERO,
            SimTime::from_secs(40),
            SimDuration::from_secs(10),
        );
        let vals: Vec<f64> = r.iter().map(|&(_, v)| v).collect();
        // Buckets: [0,10)=2, [10,20)=carry 2, [20,30)=4, [30,40)=carry 4.
        assert_eq!(vals, vec![2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn step_integral() {
        // 100 W for 10 s then 200 W for 10 s = 3000 W·s.
        let s = series(&[(0, 100.0), (10, 200.0)]);
        let ws = s.step_integral_value_seconds(SimTime::ZERO, SimTime::from_secs(20));
        assert!((ws - 3000.0).abs() < 1e-9);
        // Partial window starting mid-way through the first step.
        let ws = s.step_integral_value_seconds(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((ws - (100.0 * 5.0 + 200.0 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn step_integral_empty_or_degenerate() {
        let s = TimeSeries::new("e");
        assert_eq!(
            s.step_integral_value_seconds(SimTime::ZERO, SimTime::from_secs(10)),
            0.0
        );
        let s = series(&[(0, 5.0)]);
        assert_eq!(
            s.step_integral_value_seconds(SimTime::from_secs(10), SimTime::from_secs(10)),
            0.0
        );
    }
}
