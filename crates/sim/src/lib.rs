//! # gs-sim — deterministic simulation kernel
//!
//! Shared infrastructure for the GreenSprint reproduction: a discrete
//! simulation clock, a stable event queue for discrete-event simulation,
//! seeded random number generation with the distributions the workload
//! layer needs, online statistics (mean/variance, percentiles, histograms),
//! exponentially weighted moving averages, and time-series buffers.
//!
//! Everything in this crate is deterministic given a seed: the event queue
//! breaks ties by insertion order, and all randomness flows through
//! [`rng::SimRng`] instances created from explicit seeds.

pub mod events;
pub mod ewma;
pub mod p2;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use events::{BinaryHeapQueue, EventQueue};
pub use ewma::Ewma;
pub use p2::P2Quantile;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Histogram, OnlineStats, ReservoirPercentiles};
pub use time::{SimDuration, SimTime};
