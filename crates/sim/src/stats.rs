//! Online statistics: Welford mean/variance, exact percentiles over bounded
//! reservoirs, and fixed-bin histograms.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over all recorded samples, with an optional uniform
/// subsampling cap so epoch-scale DES runs stay memory-bounded.
///
/// Below the cap this is exact; above it, reservoir sampling (Algorithm R)
/// keeps a uniform sample, so percentiles remain unbiased estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReservoirPercentiles {
    samples: Vec<f64>,
    cap: usize,
    seen: u64,
    /// Cheap xorshift state for reservoir replacement decisions; the
    /// percentile estimator keeps its own stream so callers' `SimRng`
    /// sequences are unaffected by sampling internals.
    rng_state: u64,
}

impl ReservoirPercentiles {
    /// Create with a sample cap (use e.g. 100_000 for epoch latencies).
    pub fn with_cap(cap: usize) -> Self {
        assert!(cap > 0, "reservoir cap must be positive");
        ReservoirPercentiles {
            samples: Vec::new(),
            cap,
            seen: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            // Algorithm R: replace a random slot with probability cap/seen.
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total number of observations recorded (not just retained).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (`q` in `[0,1]`) by the nearest-rank method;
    /// `None` if no samples were recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile samples"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Convenience: the `p`-th percentile (`p` in `[0,100]`).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.quantile(p / 100.0)
    }

    /// Fraction of recorded samples `<= threshold`, estimated from the
    /// retained reservoir. `None` if empty.
    pub fn fraction_at_most(&self, threshold: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let k = self.samples.iter().filter(|&&x| x <= threshold).count();
        Some(k as f64 / self.samples.len() as f64)
    }

    /// Drop all samples, keeping the cap.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.seen = 0;
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram of `n_bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(hi > lo && n_bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Counts per bin (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..37].iter().for_each(|&x| a.record(x));
        data[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_exact_below_cap() {
        let mut p = ReservoirPercentiles::with_cap(1000);
        for i in 1..=100 {
            p.record(i as f64);
        }
        assert_eq!(p.percentile(50.0), Some(50.0));
        assert_eq!(p.percentile(99.0), Some(99.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.fraction_at_most(10.0), Some(0.10));
    }

    #[test]
    fn percentiles_empty_is_none() {
        let p = ReservoirPercentiles::with_cap(10);
        assert_eq!(p.percentile(50.0), None);
        assert_eq!(p.fraction_at_most(1.0), None);
    }

    #[test]
    fn reservoir_approximates_above_cap() {
        let mut p = ReservoirPercentiles::with_cap(2_000);
        for i in 0..100_000 {
            p.record(i as f64);
        }
        assert_eq!(p.count(), 100_000);
        let med = p.percentile(50.0).unwrap();
        assert!((med - 50_000.0).abs() < 5_000.0, "med={med}");
    }

    #[test]
    fn reservoir_reset() {
        let mut p = ReservoirPercentiles::with_cap(10);
        p.record(1.0);
        p.reset();
        assert_eq!(p.count(), 0);
        assert_eq!(p.percentile(50.0), None);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 7);
        assert!((h.bin_lo(5) - 5.0).abs() < 1e-12);
    }
}
