//! Exponentially weighted moving average, as used by the GreenSprint
//! Predictor (paper Eq. 1):
//!
//! `RESupp(t) = alpha * RESupp(t-1) + (1 - alpha) * Obs(t)`
//!
//! The paper finds `alpha = 0.3` most consistent — weighting the model
//! towards the current observation — and we keep that as the default.

use serde::{Deserialize, Serialize};

/// The paper's recommended smoothing factor.
pub const PAPER_ALPHA: f64 = 0.3;

/// An EWMA filter following the paper's convention: `alpha` is the weight
/// on the *previous estimate* (so small `alpha` reacts quickly).
///
/// # Example
///
/// ```
/// use gs_sim::Ewma;
/// let mut predictor = Ewma::paper_default(); // alpha = 0.3
/// predictor.observe(100.0);
/// // 0.3 x previous + 0.7 x new observation:
/// assert_eq!(predictor.observe(50.0), 65.0);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create a filter with the given `alpha` in `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Ewma { alpha, value: None }
    }

    /// Create a filter with the paper's `alpha = 0.3`.
    pub fn paper_default() -> Self {
        Ewma::new(PAPER_ALPHA)
    }

    /// Feed one observation and return the updated estimate. The first
    /// observation initializes the filter directly.
    pub fn observe(&mut self, obs: f64) -> f64 {
        let next = match self.value {
            None => obs,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * obs,
        };
        self.value = Some(next);
        next
    }

    /// Current estimate, i.e. the prediction for the next epoch; `None`
    /// before any observation.
    pub fn prediction(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate or a fallback if no observation has been made.
    pub fn prediction_or(&self, fallback: f64) -> f64 {
        self.value.unwrap_or(fallback)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.prediction(), None);
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.prediction(), Some(10.0));
    }

    #[test]
    fn follows_paper_recurrence() {
        let mut e = Ewma::new(0.3);
        e.observe(100.0);
        // 0.3 * 100 + 0.7 * 50 = 65
        assert!((e.observe(50.0) - 65.0).abs() < 1e-12);
        // 0.3 * 65 + 0.7 * 0 = 19.5
        assert!((e.observe(0.0) - 19.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_tracks_observation_exactly() {
        let mut e = Ewma::new(0.0);
        e.observe(5.0);
        assert_eq!(e.observe(42.0), 42.0);
    }

    #[test]
    fn alpha_one_never_updates() {
        let mut e = Ewma::new(1.0);
        e.observe(5.0);
        assert_eq!(e.observe(42.0), 5.0);
        assert_eq!(e.observe(-3.0), 5.0);
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ewma::paper_default();
        for _ in 0..50 {
            e.observe(7.0);
        }
        assert!((e.prediction().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn reset_and_fallback() {
        let mut e = Ewma::new(0.5);
        e.observe(3.0);
        e.reset();
        assert_eq!(e.prediction(), None);
        assert_eq!(e.prediction_or(1.5), 1.5);
    }

    #[test]
    fn warmup_is_alpha_independent() {
        // The first observation initializes the filter directly — no
        // phantom zero state blended in, whatever alpha is.
        for alpha in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let mut e = Ewma::new(alpha);
            assert_eq!(e.observe(123.456), 123.456, "alpha={alpha}");
        }
    }

    #[test]
    fn reinitializes_after_reset() {
        // reset() returns the filter to the warmup state: the next
        // observation initializes directly, with no memory of the old
        // estimate.
        let mut e = Ewma::new(0.9);
        e.observe(3.0);
        e.observe(4.0);
        e.reset();
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.prediction(), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Ewma::new(1.5);
    }
}
