//! Datacenter scale-out: many green racks under one sky.
//!
//! The prototype is one 10-server rack-equivalent; the paper's premise is
//! a *data center* ("provisioning renewable energy on the PDU level allows
//! us to apply computational sprinting in a data center on a per-rack
//! basis", §II). This module runs many racks — possibly hosting different
//! applications and strategies — against the same weather, each with its
//! own PDU-level PV array and batteries, and aggregates the result. Racks
//! are independent given the sky, so they parallelize across threads.

use crate::engine::{BurstOutcome, Engine, EngineConfig};
use crate::pmk::Strategy;
use gs_workload::apps::Application;
use serde::{Deserialize, Serialize};

/// One rack's configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackSpec {
    /// The application this rack serves.
    pub app: Application,
    /// Its green provisioning.
    pub green: crate::config::GreenConfig,
    /// Its PMK strategy.
    pub strategy: Strategy,
}

/// A datacenter of racks sharing burst timing and weather.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// The racks.
    pub racks: Vec<RackSpec>,
    /// Everything else (availability, burst, epoch, measurement, seed) is
    /// taken from this template; its app/green/strategy are ignored.
    pub template: EngineConfig,
}

/// Aggregated datacenter outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatacenterOutcome {
    /// Per-rack results, in configuration order.
    pub racks: Vec<BurstOutcome>,
    /// Goodput-weighted mean speedup across racks.
    pub mean_speedup: f64,
    /// Total renewable energy used (Wh).
    pub re_used_wh: f64,
    /// Total battery energy used (Wh).
    pub battery_used_wh: f64,
    /// Total curtailed renewable energy (Wh).
    pub curtailed_wh: f64,
}

/// Run every rack (in parallel across OS threads — racks are independent
/// given the shared sky) and aggregate.
pub fn run_datacenter(cfg: &DatacenterConfig) -> DatacenterOutcome {
    assert!(!cfg.racks.is_empty(), "datacenter needs at least one rack");
    let outcomes: Vec<BurstOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = cfg
            .racks
            .iter()
            .enumerate()
            .map(|(i, rack)| {
                let template = cfg.template.clone();
                let rack = rack.clone();
                s.spawn(move || {
                    let engine_cfg = EngineConfig {
                        app: rack.app,
                        green: rack.green,
                        strategy: rack.strategy,
                        // Decorrelate racks while keeping the whole
                        // datacenter reproducible from the template seed.
                        seed: template.seed.wrapping_add(i as u64 * 0x9E37_79B9),
                        ..template
                    };
                    Engine::new(engine_cfg).run()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rack simulation panicked"))
            .collect()
    });

    let mean_speedup =
        outcomes.iter().map(|o| o.speedup_vs_normal).sum::<f64>() / outcomes.len() as f64;
    DatacenterOutcome {
        mean_speedup,
        re_used_wh: outcomes.iter().map(|o| o.re_used_wh).sum(),
        battery_used_wh: outcomes.iter().map(|o| o.battery_used_wh).sum(),
        curtailed_wh: outcomes.iter().map(|o| o.curtailed_wh).sum(),
        racks: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::MeasurementMode;
    use gs_sim::SimDuration;

    fn template() -> EngineConfig {
        EngineConfig {
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            seed: 17,
            ..EngineConfig::default()
        }
    }

    fn mixed_racks() -> Vec<RackSpec> {
        vec![
            RackSpec {
                app: Application::SpecJbb,
                green: GreenConfig::re_batt(),
                strategy: Strategy::Hybrid,
            },
            RackSpec {
                app: Application::WebSearch,
                green: GreenConfig::re_sbatt(),
                strategy: Strategy::Pacing,
            },
            RackSpec {
                app: Application::Memcached,
                green: GreenConfig::re_batt(),
                strategy: Strategy::Greedy,
            },
        ]
    }

    #[test]
    fn heterogeneous_datacenter_sprints_every_rack() {
        let out = run_datacenter(&DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
        });
        assert_eq!(out.racks.len(), 3);
        for (rack, o) in mixed_racks().iter().zip(&out.racks) {
            assert!(
                o.speedup_vs_normal > 3.5,
                "{:?} rack got {}",
                rack.app,
                o.speedup_vs_normal
            );
        }
        assert!(out.mean_speedup > 3.5);
        assert!(out.re_used_wh > 0.0);
    }

    #[test]
    fn datacenter_is_deterministic() {
        let cfg = DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
        };
        let a = run_datacenter(&cfg);
        let b = run_datacenter(&cfg);
        assert_eq!(a.mean_speedup, b.mean_speedup);
        assert_eq!(a.re_used_wh, b.re_used_wh);
    }

    #[test]
    fn racks_are_seed_decorrelated() {
        // Two identical racks must not produce bit-identical DES noise.
        let cfg = DatacenterConfig {
            racks: vec![
                RackSpec {
                    app: Application::SpecJbb,
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                },
                RackSpec {
                    app: Application::SpecJbb,
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                },
            ],
            template: EngineConfig {
                measurement: MeasurementMode::Des,
                ..template()
            },
        };
        let out = run_datacenter(&cfg);
        assert_ne!(out.racks[0].mean_goodput_rps, out.racks[1].mean_goodput_rps);
    }

    #[test]
    fn scales_to_many_racks() {
        let racks: Vec<RackSpec> = (0..16)
            .map(|i| RackSpec {
                app: Application::ALL[i % 3],
                green: GreenConfig::re_sbatt(),
                strategy: Strategy::Hybrid,
            })
            .collect();
        let out = run_datacenter(&DatacenterConfig {
            racks,
            template: template(),
        });
        assert_eq!(out.racks.len(), 16);
        assert!(out.mean_speedup > 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn rejects_empty_datacenter() {
        run_datacenter(&DatacenterConfig {
            racks: vec![],
            template: template(),
        });
    }
}
