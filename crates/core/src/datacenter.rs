//! Datacenter scale-out: many green racks under one sky.
//!
//! The prototype is one 10-server rack-equivalent; the paper's premise is
//! a *data center* ("provisioning renewable energy on the PDU level allows
//! us to apply computational sprinting in a data center on a per-rack
//! basis", §II). This module runs many racks — possibly hosting different
//! applications and strategies — against the same weather, and aggregates
//! the result. Racks step in lockstep under the [`crate::broker`]: a
//! deterministic coordinator that routes the fleet's offered load toward
//! racks with renewable surplus and rides through site-level faults
//! (rack blackouts, broker↔rack partitions, lossy/laggy control links)
//! declared in [`DatacenterConfig::site_fault_plan`].

use crate::broker::{rack_engine_config, try_run_datacenter, RackRouteStats};
use crate::engine::{BurstOutcome, EngineConfig};
use crate::faults::FaultPlan;
use crate::pmk::Strategy;
use gs_workload::apps::Application;
use serde::{Deserialize, Serialize};

/// One rack's configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackSpec {
    /// The application this rack serves.
    pub app: Application,
    /// Its green provisioning.
    pub green: crate::config::GreenConfig,
    /// Its PMK strategy.
    pub strategy: Strategy,
}

/// A datacenter of racks sharing burst timing and weather.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// The racks.
    pub racks: Vec<RackSpec>,
    /// Everything else (availability, burst, epoch, measurement, seed) is
    /// taken from this template; its app/green/strategy are ignored. A
    /// template `fault_plan` (rack-local kinds only) replicates to every
    /// rack.
    pub template: EngineConfig,
    /// Site-level fault schedule: rack blackouts, inverter derates,
    /// broker↔rack partitions, link loss/delay (the site kinds of
    /// [`crate::faults::FaultKind`]), plus rack-local kinds replicated to
    /// every rack. `None` runs the site fault-free. Absent in pre-broker
    /// serialized configs.
    #[serde(default)]
    pub site_fault_plan: Option<FaultPlan>,
}

impl DatacenterConfig {
    /// Validate the whole datacenter: at least one rack, every rack's
    /// derived engine configuration valid (including its translated fault
    /// plan), and the site fault plan well-formed for this rack list.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks.is_empty() {
            return Err("datacenter needs at least one rack".to_string());
        }
        if self.racks.len() > usize::from(u8::MAX) {
            return Err(format!(
                "datacenter supports at most {} racks, got {}",
                u8::MAX,
                self.racks.len()
            ));
        }
        if let Some(site) = &self.site_fault_plan {
            site.validate()
                .map_err(|e| format!("site fault plan: {e}"))?;
            let sizes: Vec<usize> = self.racks.iter().map(|r| r.green.green_servers).collect();
            site.validate_for_racks(&sizes)
                .map_err(|e| format!("site fault plan: {e}"))?;
        }
        for i in 0..self.racks.len() {
            rack_engine_config(self, i)
                .validate()
                .map_err(|e| format!("rack {i}: {e}"))?;
        }
        Ok(())
    }
}

/// Aggregated datacenter outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatacenterOutcome {
    /// Per-rack results, in configuration order.
    pub racks: Vec<BurstOutcome>,
    /// Mean speedup across racks.
    pub mean_speedup: f64,
    /// Total renewable energy used (Wh).
    pub re_used_wh: f64,
    /// Total battery energy used (Wh).
    pub battery_used_wh: f64,
    /// Total curtailed renewable energy (Wh).
    pub curtailed_wh: f64,
    /// Rack-epochs spent partitioned from the broker. Absent in
    /// pre-broker serialized outcomes (like every field below).
    #[serde(default)]
    pub partition_epochs: usize,
    /// Rack-epochs run degraded: partitioned, on rejoin probation, or
    /// applying a held factor after directive loss.
    #[serde(default)]
    pub degraded_epochs: usize,
    /// Rack-epochs inside an active rack-blackout event.
    #[serde(default)]
    pub blackout_epochs: usize,
    /// Rack-epochs that applied a stale (link-delayed) factor.
    #[serde(default)]
    pub stale_factor_epochs: usize,
    /// Epochs in which load was re-routed away from a drained rack.
    #[serde(default)]
    pub rerouted_epochs: usize,
    /// Directive retransmissions attempted on lossy links.
    #[serde(default)]
    pub link_retries: usize,
    /// Virtual retransmission latency accumulated from
    /// [`crate::supervisor::backoff_ms`] (bookkeeping only).
    #[serde(default)]
    pub link_latency_ms: u64,
    /// Racks re-admitted to routing after probationary hysteresis.
    #[serde(default)]
    pub rejoins: usize,
    /// Human-readable partition/degrade/rejoin log.
    #[serde(default)]
    pub site_events: Vec<String>,
    /// Site-level audit violations (routed-load conservation, factor
    /// sanity, dark racks drawing power). Empty on a healthy run.
    #[serde(default)]
    pub site_audit_violations: Vec<String>,
    /// Per-rack routing statistics, in configuration order.
    #[serde(default)]
    pub route_stats: Vec<RackRouteStats>,
    /// The broker's computed (conserved) factors, one row per epoch.
    #[serde(default)]
    pub factors: Vec<Vec<f64>>,
    /// The factors each rack actually applied, one row per epoch.
    #[serde(default)]
    pub applied_factors: Vec<Vec<f64>>,
}

/// Run every rack through the stepped broker (racks parallelize across OS
/// threads; results are byte-identical at any parallelism) and aggregate.
/// Panics on an invalid configuration — use
/// [`crate::broker::try_run_datacenter`] to handle untrusted input.
pub fn run_datacenter(cfg: &DatacenterConfig) -> DatacenterOutcome {
    try_run_datacenter(cfg, crate::sweep::default_jobs())
        .unwrap_or_else(|e| panic!("invalid datacenter configuration: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::MeasurementMode;
    use gs_sim::SimDuration;

    fn template() -> EngineConfig {
        EngineConfig {
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            seed: 17,
            ..EngineConfig::default()
        }
    }

    fn mixed_racks() -> Vec<RackSpec> {
        vec![
            RackSpec {
                app: Application::SpecJbb,
                green: GreenConfig::re_batt(),
                strategy: Strategy::Hybrid,
            },
            RackSpec {
                app: Application::WebSearch,
                green: GreenConfig::re_sbatt(),
                strategy: Strategy::Pacing,
            },
            RackSpec {
                app: Application::Memcached,
                green: GreenConfig::re_batt(),
                strategy: Strategy::Greedy,
            },
        ]
    }

    #[test]
    fn heterogeneous_datacenter_sprints_every_rack() {
        let out = run_datacenter(&DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
            site_fault_plan: None,
        });
        assert_eq!(out.racks.len(), 3);
        for (rack, o) in mixed_racks().iter().zip(&out.racks) {
            assert!(
                o.speedup_vs_normal > 3.5,
                "{:?} rack got {}",
                rack.app,
                o.speedup_vs_normal
            );
        }
        assert!(out.mean_speedup > 3.5);
        assert!(out.re_used_wh > 0.0);
        // A healthy fleet routes cleanly: factors stay conserved, no rack
        // degrades, nothing is audited as wrong.
        assert!(
            out.site_audit_violations.is_empty(),
            "{:?}",
            out.site_audit_violations
        );
        assert_eq!(out.partition_epochs, 0);
        assert_eq!(out.degraded_epochs, 0);
        assert_eq!(out.route_stats.len(), 3);
    }

    #[test]
    fn datacenter_is_deterministic() {
        let cfg = DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
            site_fault_plan: None,
        };
        let a = run_datacenter(&cfg);
        let b = run_datacenter(&cfg);
        assert_eq!(a.mean_speedup, b.mean_speedup);
        assert_eq!(a.re_used_wh, b.re_used_wh);
    }

    #[test]
    fn racks_are_seed_decorrelated() {
        // Two identical racks must not produce bit-identical DES noise.
        let cfg = DatacenterConfig {
            racks: vec![
                RackSpec {
                    app: Application::SpecJbb,
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                },
                RackSpec {
                    app: Application::SpecJbb,
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                },
            ],
            template: EngineConfig {
                measurement: MeasurementMode::Des,
                ..template()
            },
            site_fault_plan: None,
        };
        let out = run_datacenter(&cfg);
        assert_ne!(out.racks[0].mean_goodput_rps, out.racks[1].mean_goodput_rps);
    }

    #[test]
    fn scales_to_many_racks() {
        let racks: Vec<RackSpec> = (0..16)
            .map(|i| RackSpec {
                app: Application::ALL[i % 3],
                green: GreenConfig::re_sbatt(),
                strategy: Strategy::Hybrid,
            })
            .collect();
        let out = run_datacenter(&DatacenterConfig {
            racks,
            template: template(),
            site_fault_plan: None,
        });
        assert_eq!(out.racks.len(), 16);
        assert!(out.mean_speedup > 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn rejects_empty_datacenter() {
        run_datacenter(&DatacenterConfig {
            racks: vec![],
            template: template(),
            site_fault_plan: None,
        });
    }

    #[test]
    fn validate_rejects_bad_racks_and_site_plans() {
        // A rack whose engine config is invalid names the rack.
        let mut cfg = DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
            site_fault_plan: None,
        };
        cfg.racks[1].green.green_servers = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("rack 1"), "{err}");

        // A site plan targeting a rack the datacenter does not have.
        let mut cfg = DatacenterConfig {
            racks: mixed_racks(),
            template: template(),
            site_fault_plan: Some(crate::faults::FaultPlan::new(vec![
                crate::faults::FaultEvent {
                    at: gs_sim::SimTime::from_hours(11),
                    duration: SimDuration::from_mins(1),
                    kind: crate::faults::FaultKind::RackBlackout { rack: 9, epochs: 2 },
                },
            ])),
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("site fault plan"), "{err}");
        assert!(err.contains("rack 9"), "{err}");
        cfg.site_fault_plan = None;
        assert!(cfg.validate().is_ok());
    }
}
