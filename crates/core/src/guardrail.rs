//! Policy guardrails: a shadow fallback controller, deterministic
//! misbehavior detectors, and a failover ladder with Q-table quarantine.
//!
//! The learned Hybrid PMK is the one component of the controller whose
//! behavior is not certified by construction: a poisoned or diverging
//! Q-table can burn the battery against phantom reward, violate the SLO
//! for epochs on end, or simply crash into NaN. The paper's own strategy
//! set supplies certified simple policies to fall back onto — and
//! constraint-controlled RL scheduling work argues learned controllers in
//! green data centers need exactly this supervision to be deployable.
//!
//! The subsystem has three parts:
//!
//! * **Shadow scoring** — every epoch the engine evaluates a certified
//!   fallback strategy ([`GuardrailConfig::fallback`], Pacing by default)
//!   on the same planning context the active policy saw, on the analytic
//!   measurement plane, and scores both with the paper's reward function
//!   (Algorithm 1). The shadow is a pure counterfactual: it never touches
//!   physical state and its strategies are rng-free, so runs with the
//!   guardrail enabled remain byte-identical at any `--jobs` and across
//!   checkpoint/resume.
//! * **Detectors** ([`Guardrail::observe`]) — deterministic, streak-based:
//!   SLO-violation streaks the shadow would have avoided, reward
//!   regression against the shadow, SoC depletion beyond the planned
//!   sustainable budget, and Q-table corruption (NaN/inf cells, value
//!   explosion, out-of-range pending states — immediate, no streak).
//! * **Failover ladder** — on a trigger, control demotes one rung down a
//!   deterministic ladder (e.g. Hybrid → Parallel → Pacing → Normal),
//!   quarantining the offending Q-table to a checksummed sidecar file
//!   ([`QuarantineRecord`]). After [`GuardrailConfig::probation_epochs`]
//!   consecutive clean epochs the ladder re-promotes one rung; a
//!   re-promotion into Hybrid restarts from the deterministic profile
//!   bootstrap, never the quarantined table.
//!
//! All ladder and detector state lives in [`GuardrailState`], which the
//! engine persists inside `LoopState` snapshots — a resumed run replays
//! failovers byte-identically.

use crate::checkpoint::fingerprint;
use crate::pmk::Strategy;
use gs_cluster::ServerSetting;
use serde::{Deserialize, Serialize};

/// Schema tag for quarantine sidecar files.
pub const QUARANTINE_SCHEMA: &str = "gs-quarantine-1";

/// Guardrail configuration, embedded in `EngineConfig`.
///
/// Disabled by default: the paper's controller runs unsupervised, and a
/// paper-faithful run must stay byte-identical to the seed behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct GuardrailConfig {
    /// Master switch (`--guardrail on|off`).
    pub enabled: bool,
    /// The certified strategy run in shadow and compared against
    /// (`--fallback`). Must not be Hybrid — the point is a policy whose
    /// behavior is certified by construction, not another learner.
    pub fallback: Strategy,
    /// Consecutive epochs the active policy must violate the SLO while
    /// the shadow meets it before failover.
    pub slo_streak_epochs: u32,
    /// Consecutive epochs of shadow reward exceeding active reward by
    /// more than [`Self::reward_margin`] before failover.
    pub reward_regression_epochs: u32,
    /// Reward slack before an epoch counts as a regression; absorbs
    /// honest tie-breaking noise between near-equivalent settings.
    pub reward_margin: f64,
    /// Consecutive epochs of battery discharge beyond plan before
    /// failover.
    pub soc_divergence_epochs: u32,
    /// Discharge beyond `factor ×` the planned sustainable budget counts
    /// as SoC divergence.
    pub soc_divergence_factor: f64,
    /// A finite Q-value with absolute value above this cap counts as
    /// table corruption (value explosion).
    pub value_explosion_cap: f64,
    /// Consecutive clean epochs at a demoted level before re-promotion
    /// one rung up (the ladder's hysteresis).
    pub probation_epochs: u32,
    /// Directory for quarantined Q-table sidecar files
    /// (`--quarantine-dir`); `None` keeps quarantine accounting only.
    pub quarantine_dir: Option<String>,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        GuardrailConfig {
            enabled: false,
            fallback: Strategy::Pacing,
            slo_streak_epochs: 3,
            reward_regression_epochs: 3,
            reward_margin: 1.0,
            soc_divergence_epochs: 3,
            soc_divergence_factor: 1.5,
            value_explosion_cap: 1e6,
            probation_epochs: 6,
            quarantine_dir: None,
        }
    }
}

impl GuardrailConfig {
    /// Reject configurations that cannot supervise anything: a learned
    /// fallback, zero-length streaks (which would fail over on the first
    /// epoch), or non-finite thresholds.
    pub fn validate(&self) -> Result<(), String> {
        if self.fallback == Strategy::Hybrid {
            return Err("fallback must be a certified non-learned strategy, not Hybrid".into());
        }
        for (name, v) in [
            ("slo_streak_epochs", self.slo_streak_epochs),
            ("reward_regression_epochs", self.reward_regression_epochs),
            ("soc_divergence_epochs", self.soc_divergence_epochs),
            ("probation_epochs", self.probation_epochs),
        ] {
            if v == 0 {
                return Err(format!("{name} must be at least 1"));
            }
        }
        if !(self.reward_margin.is_finite() && self.reward_margin >= 0.0) {
            return Err(format!(
                "reward_margin must be finite and non-negative, got {}",
                self.reward_margin
            ));
        }
        if !(self.soc_divergence_factor.is_finite() && self.soc_divergence_factor >= 1.0) {
            return Err(format!(
                "soc_divergence_factor must be finite and at least 1, got {}",
                self.soc_divergence_factor
            ));
        }
        if !(self.value_explosion_cap.is_finite() && self.value_explosion_cap > 0.0) {
            return Err(format!(
                "value_explosion_cap must be finite and positive, got {}",
                self.value_explosion_cap
            ));
        }
        Ok(())
    }
}

/// The deterministic failover ladder for an active strategy: the strategy
/// itself, then strictly simpler certified strategies down to the Normal
/// floor. `None` for Normal — it already *is* the floor, there is nothing
/// to guard or fall back to.
pub fn ladder_for(active: Strategy) -> Option<Vec<Strategy>> {
    match active {
        Strategy::Normal => None,
        Strategy::Hybrid => Some(vec![
            Strategy::Hybrid,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Normal,
        ]),
        Strategy::Greedy => Some(vec![
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Normal,
        ]),
        Strategy::Parallel => Some(vec![Strategy::Parallel, Strategy::Pacing, Strategy::Normal]),
        Strategy::Pacing => Some(vec![Strategy::Pacing, Strategy::Normal]),
    }
}

/// One epoch's detector inputs, assembled by the engine.
#[derive(Debug, Clone, Copy)]
pub struct EpochSignals {
    /// Scheduling-epoch index (diagnostics only).
    pub epoch_index: u64,
    /// Algorithm 1 reward of the active policy's epoch (server 0).
    pub active_reward: f64,
    /// Algorithm 1 reward of the shadow fallback's counterfactual epoch.
    pub shadow_reward: f64,
    /// The active policy met the SLO percentile on the offered load.
    pub active_slo_ok: bool,
    /// The shadow's counterfactual epoch would have met it.
    pub shadow_slo_ok: bool,
    /// Rack battery discharge this epoch (W).
    pub battery_discharge_w: f64,
    /// Planned horizon-sustainable battery budget this epoch (W).
    pub planned_battery_w: f64,
    /// The active Q-table is corrupt (NaN/inf cells, value explosion, or
    /// an out-of-range pending state). Always `false` while a
    /// learner-free ladder level is steering.
    pub table_corrupt: bool,
    /// Load-carrying servers as a fraction of the configured rack
    /// (`1.0` on a healthy fleet). Below 1.0 the comparative detectors
    /// freeze: an SLO miss on a shrunken fleet is capacity-driven, not
    /// policy misbehavior, and must not quarantine a healthy Q-table.
    pub live_fraction: f64,
}

/// What the ladder decided this epoch. `Demote`/`Promote` take effect for
/// the *next* epoch's decisions; the engine swaps controllers on receipt.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardrailAction {
    /// No change of level.
    Hold,
    /// One rung down the ladder; the engine quarantines the active
    /// learner (if the demoted level carried one).
    Demote {
        /// Human-readable detector verdict.
        reason: String,
    },
    /// Probation passed: one rung up the ladder.
    Promote,
}

/// Serializable ladder + detector state, persisted in `LoopState`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardrailState {
    /// The failover ladder (level 0 = the configured strategy).
    pub ladder: Vec<Strategy>,
    /// Current ladder level.
    pub level: usize,
    /// Deepest level reached so far.
    pub peak_level: usize,
    /// Consecutive active-SLO-violated / shadow-compliant epochs.
    pub slo_streak: u32,
    /// Consecutive reward-regression epochs.
    pub reward_streak: u32,
    /// Consecutive SoC-divergence epochs.
    pub soc_streak: u32,
    /// Consecutive clean epochs at the current demoted level.
    pub clean_streak: u32,
    /// Epochs spent at level > 0.
    pub failover_epochs: usize,
    /// Q-tables quarantined so far.
    pub quarantined_tables: usize,
    /// Human-readable failover/promotion/quarantine log.
    pub events: Vec<String>,
    /// The shadow controller's previous setting (its hysteresis
    /// incumbent).
    pub shadow_prev: ServerSetting,
}

/// The policy-health supervisor: detectors plus the failover ladder.
#[derive(Debug, Clone)]
pub struct Guardrail {
    cfg: GuardrailConfig,
    state: GuardrailState,
}

impl Guardrail {
    /// A guardrail supervising `active`; `None` when there is no ladder
    /// (the Normal baseline).
    pub fn new(cfg: GuardrailConfig, active: Strategy) -> Option<Self> {
        let ladder = ladder_for(active)?;
        Some(Guardrail {
            cfg,
            state: GuardrailState {
                ladder,
                level: 0,
                peak_level: 0,
                slo_streak: 0,
                reward_streak: 0,
                soc_streak: 0,
                clean_streak: 0,
                failover_epochs: 0,
                quarantined_tables: 0,
                events: Vec::new(),
                shadow_prev: ServerSetting::normal(),
            },
        })
    }

    /// Rebuild from a snapshot's persisted state.
    pub fn restore(cfg: GuardrailConfig, state: GuardrailState) -> Self {
        Guardrail { cfg, state }
    }

    /// The persisted state (for snapshots and outcome counters).
    pub fn state(&self) -> &GuardrailState {
        &self.state
    }

    /// The configuration this guardrail runs.
    pub fn config(&self) -> &GuardrailConfig {
        &self.cfg
    }

    /// Current ladder level (0 = the configured strategy).
    pub fn level(&self) -> usize {
        self.state.level
    }

    /// The strategy steering at the current level.
    pub fn active_strategy(&self) -> Strategy {
        self.state.ladder[self.state.level]
    }

    /// The full ladder.
    pub fn ladder(&self) -> &[Strategy] {
        &self.state.ladder
    }

    /// The shadow controller's hysteresis incumbent.
    pub fn shadow_prev(&self) -> ServerSetting {
        self.state.shadow_prev
    }

    /// Update the shadow controller's hysteresis incumbent.
    pub fn set_shadow_prev(&mut self, s: ServerSetting) {
        self.state.shadow_prev = s;
    }

    /// Position of the fallback strategy on the ladder. The comparative
    /// detectors (SLO streak, reward regression) only arm *above* this
    /// level: at or below it the active controller is the fallback or
    /// something strictly simpler, so "the shadow would have done better"
    /// carries no signal and would pin the ladder down forever.
    fn fallback_pos(&self) -> usize {
        self.state
            .ladder
            .iter()
            .position(|&s| s == self.cfg.fallback)
            .unwrap_or(self.state.ladder.len() - 1)
    }

    /// Record a quarantined table (the engine owns serialization and the
    /// sidecar write; `detail` carries the file path or write error).
    pub fn note_quarantine(&mut self, epoch: u64, checksum: &str, detail: &str) {
        self.state.quarantined_tables += 1;
        self.state.events.push(format!(
            "epoch {epoch}: quarantined q-table {checksum}{detail}"
        ));
    }

    /// Demote one rung down the ladder for an externally detected reason
    /// — serve mode's tick-deadline overruns under `--overrun degrade`
    /// use this, where the signal (wall-clock or a disturbance plan, not
    /// epoch telemetry) never flows through [`Guardrail::observe`].
    ///
    /// Bookkeeping mirrors an observe-driven demotion exactly: the clean
    /// streak and detector streaks reset, peak level is tracked, and an
    /// event line is recorded. Returns `true` if a rung remained to
    /// demote to; at the Normal floor it records nothing and holds.
    pub fn force_demote(&mut self, epoch_index: u64, reason: &str) -> bool {
        let st = &mut self.state;
        st.clean_streak = 0;
        if st.level + 1 < st.ladder.len() {
            st.level += 1;
            st.peak_level = st.peak_level.max(st.level);
            st.slo_streak = 0;
            st.reward_streak = 0;
            st.soc_streak = 0;
            st.events.push(format!(
                "epoch {epoch_index}: demoted to {} ({reason})",
                st.ladder[st.level]
            ));
            true
        } else {
            false
        }
    }

    /// Feed one epoch's signals through the detectors and the ladder.
    ///
    /// Detector streaks are NaN-safe: a NaN reward or discharge never
    /// *clears* a streak by accident because every comparison is phrased
    /// so NaN counts as misbehavior where it plausibly is one.
    pub fn observe(&mut self, sig: &EpochSignals) -> GuardrailAction {
        // While the fleet is degraded (live_fraction < 1), the shadow
        // comparison loses meaning in both directions — the active policy
        // and the shadow both serve redistributed load on fewer servers,
        // so an SLO miss or reward gap is capacity, not policy. The
        // comparative streaks freeze: they neither grow nor clear until
        // the fleet is whole again. A NaN live_fraction counts as
        // degraded. The absolute detectors (SoC overdraw, corruption)
        // keep full authority at any fleet size.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let degraded = !(sig.live_fraction >= 1.0);
        let comparative = self.state.level < self.fallback_pos() && !degraded;
        let st = &mut self.state;
        let corrupt = sig.table_corrupt;
        let slo_bad = comparative && !sig.active_slo_ok && sig.shadow_slo_ok;
        // NaN active reward compares false under `>=`, so the negated
        // phrasing counts it as a regression.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let reward_bad =
            comparative && !(sig.active_reward >= sig.shadow_reward - self.cfg.reward_margin);
        let soc_bad =
            sig.battery_discharge_w > self.cfg.soc_divergence_factor * sig.planned_battery_w + 1.0;
        st.slo_streak = if slo_bad {
            st.slo_streak + 1
        } else if degraded {
            st.slo_streak
        } else {
            0
        };
        st.reward_streak = if reward_bad {
            st.reward_streak + 1
        } else if degraded {
            st.reward_streak
        } else {
            0
        };
        st.soc_streak = if soc_bad { st.soc_streak + 1 } else { 0 };

        let trigger = if corrupt {
            Some("q-table corruption".to_string())
        } else if st.slo_streak >= self.cfg.slo_streak_epochs {
            Some(format!(
                "SLO violated {} epochs while the shadow complied",
                st.slo_streak
            ))
        } else if st.reward_streak >= self.cfg.reward_regression_epochs {
            Some(format!(
                "reward regressed vs shadow for {} epochs",
                st.reward_streak
            ))
        } else if st.soc_streak >= self.cfg.soc_divergence_epochs {
            Some(format!(
                "battery discharge exceeded plan for {} epochs",
                st.soc_streak
            ))
        } else {
            None
        };

        let action = if let Some(reason) = trigger {
            st.clean_streak = 0;
            if st.level + 1 < st.ladder.len() {
                st.level += 1;
                st.peak_level = st.peak_level.max(st.level);
                st.slo_streak = 0;
                st.reward_streak = 0;
                st.soc_streak = 0;
                st.events.push(format!(
                    "epoch {}: demoted to {} ({reason})",
                    sig.epoch_index, st.ladder[st.level]
                ));
                GuardrailAction::Demote { reason }
            } else {
                // Already on the Normal floor; nothing left to demote to.
                GuardrailAction::Hold
            }
        } else if st.level > 0 {
            if corrupt || slo_bad || reward_bad || soc_bad {
                st.clean_streak = 0;
                GuardrailAction::Hold
            } else if degraded {
                // A degraded fleet can neither incriminate nor exonerate
                // the demoted policy: hold probation where it stands.
                GuardrailAction::Hold
            } else {
                st.clean_streak += 1;
                if st.clean_streak >= self.cfg.probation_epochs {
                    st.level -= 1;
                    st.clean_streak = 0;
                    st.slo_streak = 0;
                    st.reward_streak = 0;
                    st.soc_streak = 0;
                    st.events.push(format!(
                        "epoch {}: probation passed, re-promoted to {}",
                        sig.epoch_index, st.ladder[st.level]
                    ));
                    GuardrailAction::Promote
                } else {
                    GuardrailAction::Hold
                }
            }
        } else {
            GuardrailAction::Hold
        };

        if st.level > 0 {
            st.failover_epochs += 1;
        }
        action
    }
}

/// A quarantined Q-table sidecar record: the serialized policy plus an
/// FNV-1a checksum (the checkpoint module's fingerprint), so offline
/// tooling (`greensprint qtable validate|dump`) can verify the capture
/// was not itself corrupted in transit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Always [`QUARANTINE_SCHEMA`].
    pub schema: String,
    /// Scheduling-epoch index of the demotion.
    pub epoch: u64,
    /// The detector verdict that triggered it.
    pub reason: String,
    /// Fingerprint of `policy`.
    pub checksum: String,
    /// The offending policy, as [`crate::qlearning::QLearner::to_json`]
    /// emitted it.
    pub policy: String,
}

impl QuarantineRecord {
    /// Wrap a policy capture with its checksum.
    pub fn new(epoch: u64, reason: &str, policy: String) -> Self {
        let checksum = fingerprint(&[&policy]);
        QuarantineRecord {
            schema: QUARANTINE_SCHEMA.to_string(),
            epoch,
            reason: reason.to_string(),
            checksum,
            policy,
        }
    }

    /// Verify the schema tag and that the policy matches its checksum.
    pub fn verify(&self) -> Result<(), String> {
        if self.schema != QUARANTINE_SCHEMA {
            return Err(format!(
                "unknown quarantine schema {:?} (expected {QUARANTINE_SCHEMA:?})",
                self.schema
            ));
        }
        let computed = fingerprint(&[&self.policy]);
        if computed != self.checksum {
            return Err(format!(
                "checksum mismatch: recorded {}, computed {computed}",
                self.checksum
            ));
        }
        Ok(())
    }

    /// The sidecar file name: `qtable-e{epoch}-{checksum}.json`.
    pub fn file_name(&self) -> String {
        format!("qtable-e{}-{}.json", self.epoch, self.checksum)
    }

    /// Serialize the record.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("quarantine records serialize")
    }

    /// Parse and verify a record.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let rec: QuarantineRecord = serde_json::from_str(text).map_err(|e| e.to_string())?;
        rec.verify()?;
        Ok(rec)
    }

    /// Write the sidecar into `dir` (created if needed) atomically via a
    /// temp file + rename; concurrent identical writes from parallel
    /// sweep workers land on the same final name and content. Returns
    /// the path written.
    pub fn write_to(&self, dir: &str) -> Result<String, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
        let path = std::path::Path::new(dir).join(self.file_name());
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        Ok(path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GuardrailConfig {
        GuardrailConfig {
            enabled: true,
            ..GuardrailConfig::default()
        }
    }

    fn quiet(epoch: u64) -> EpochSignals {
        EpochSignals {
            epoch_index: epoch,
            active_reward: 3.0,
            shadow_reward: 2.5,
            active_slo_ok: true,
            shadow_slo_ok: true,
            battery_discharge_w: 50.0,
            planned_battery_w: 100.0,
            table_corrupt: false,
            live_fraction: 1.0,
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_guardrails() {
        assert!(cfg().validate().is_ok());
        let mut c = cfg();
        c.fallback = Strategy::Hybrid;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.slo_streak_epochs = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.probation_epochs = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.reward_margin = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.soc_divergence_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.value_explosion_cap = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ladders_end_at_normal_and_normal_has_none() {
        for s in Strategy::SPRINTING {
            let ladder = ladder_for(s).unwrap();
            assert_eq!(ladder[0], s);
            assert_eq!(*ladder.last().unwrap(), Strategy::Normal);
            // Strictly descending in sophistication: no duplicates.
            let unique: std::collections::HashSet<_> = ladder.iter().collect();
            assert_eq!(unique.len(), ladder.len());
        }
        assert!(ladder_for(Strategy::Normal).is_none());
        assert!(Guardrail::new(cfg(), Strategy::Normal).is_none());
    }

    #[test]
    fn corruption_demotes_immediately_without_a_streak() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let action = g.observe(&EpochSignals {
            table_corrupt: true,
            ..quiet(0)
        });
        assert!(
            matches!(action, GuardrailAction::Demote { ref reason } if reason.contains("corruption"))
        );
        assert_eq!(g.level(), 1);
        assert_eq!(g.active_strategy(), Strategy::Parallel);
        assert_eq!(g.state().failover_epochs, 1);
        assert_eq!(g.state().peak_level, 1);
    }

    #[test]
    fn slo_streak_needs_the_full_streak_and_a_compliant_shadow() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let bad = EpochSignals {
            active_slo_ok: false,
            shadow_slo_ok: true,
            ..quiet(0)
        };
        assert_eq!(g.observe(&bad), GuardrailAction::Hold);
        assert_eq!(g.observe(&bad), GuardrailAction::Hold);
        // A clean epoch resets the streak (trigger hysteresis).
        assert_eq!(g.observe(&quiet(2)), GuardrailAction::Hold);
        assert_eq!(g.state().slo_streak, 0);
        assert_eq!(g.observe(&bad), GuardrailAction::Hold);
        assert_eq!(g.observe(&bad), GuardrailAction::Hold);
        assert!(matches!(g.observe(&bad), GuardrailAction::Demote { .. }));
        assert_eq!(g.level(), 1);

        // When the shadow *also* violates, the streak never arms — the
        // fallback would do no better, so failover buys nothing.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let both_bad = EpochSignals {
            active_slo_ok: false,
            shadow_slo_ok: false,
            ..quiet(0)
        };
        for _ in 0..10 {
            assert_eq!(g.observe(&both_bad), GuardrailAction::Hold);
        }
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn reward_regression_respects_the_margin_and_catches_nan() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        // Within the margin: not a regression.
        let close = EpochSignals {
            active_reward: 2.0,
            shadow_reward: 2.5,
            ..quiet(0)
        };
        for _ in 0..10 {
            assert_eq!(g.observe(&close), GuardrailAction::Hold);
        }
        assert_eq!(g.state().reward_streak, 0);
        // Beyond the margin for the full streak: demote.
        let regressed = EpochSignals {
            active_reward: 0.0,
            shadow_reward: 2.5,
            ..quiet(0)
        };
        assert_eq!(g.observe(&regressed), GuardrailAction::Hold);
        assert_eq!(g.observe(&regressed), GuardrailAction::Hold);
        assert!(matches!(
            g.observe(&regressed),
            GuardrailAction::Demote { .. }
        ));

        // NaN active reward counts as regressed, not as a tie.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let nan = EpochSignals {
            active_reward: f64::NAN,
            ..quiet(0)
        };
        g.observe(&nan);
        assert_eq!(g.state().reward_streak, 1);
    }

    #[test]
    fn soc_divergence_is_absolute_and_streaked() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let draining = EpochSignals {
            battery_discharge_w: 400.0,
            planned_battery_w: 100.0,
            ..quiet(0)
        };
        assert_eq!(g.observe(&draining), GuardrailAction::Hold);
        assert_eq!(g.observe(&draining), GuardrailAction::Hold);
        assert!(matches!(
            g.observe(&draining),
            GuardrailAction::Demote { .. }
        ));
        // Discharge within factor × plan (+1 W slack) never arms.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let fine = EpochSignals {
            battery_discharge_w: 149.0,
            planned_battery_w: 100.0,
            ..quiet(0)
        };
        for _ in 0..10 {
            g.observe(&fine);
        }
        assert_eq!(g.state().soc_streak, 0);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn degraded_fleet_freezes_comparative_detectors_but_not_absolute_ones() {
        // Capacity-driven SLO misses while servers are down must not
        // quarantine a healthy policy: comparative detectors disarm and
        // their streaks freeze for as long as live_fraction < 1.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let capacity_miss = EpochSignals {
            active_slo_ok: false,
            shadow_slo_ok: true,
            active_reward: -5.0,
            shadow_reward: 2.5,
            live_fraction: 0.7,
            ..quiet(0)
        };
        for _ in 0..10 {
            assert_eq!(g.observe(&capacity_miss), GuardrailAction::Hold);
        }
        assert_eq!(g.level(), 0);
        assert_eq!(g.state().slo_streak, 0);
        assert_eq!(g.state().reward_streak, 0);

        // Freeze, not reset: two bad full-fleet epochs, one degraded
        // epoch in between, then a third bad epoch completes the streak.
        let bad = EpochSignals {
            active_slo_ok: false,
            shadow_slo_ok: true,
            ..quiet(1)
        };
        g.observe(&bad);
        g.observe(&bad);
        assert_eq!(g.state().slo_streak, 2);
        assert_eq!(
            g.observe(&EpochSignals {
                live_fraction: 0.5,
                ..bad
            }),
            GuardrailAction::Hold
        );
        assert_eq!(g.state().slo_streak, 2, "degraded epoch froze the streak");
        assert!(matches!(g.observe(&bad), GuardrailAction::Demote { .. }));

        // Absolute detectors keep their authority at any fleet size:
        // corruption demotes immediately...
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        assert!(matches!(
            g.observe(&EpochSignals {
                table_corrupt: true,
                live_fraction: 0.5,
                ..quiet(0)
            }),
            GuardrailAction::Demote { .. }
        ));
        // ...and SoC overdraw still streaks to a demotion.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let draining = EpochSignals {
            battery_discharge_w: 400.0,
            planned_battery_w: 100.0,
            live_fraction: 0.5,
            ..quiet(0)
        };
        g.observe(&draining);
        g.observe(&draining);
        assert!(matches!(
            g.observe(&draining),
            GuardrailAction::Demote { .. }
        ));

        // A NaN live_fraction is treated as degraded, never as healthy.
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        let nan_fleet = EpochSignals {
            active_slo_ok: false,
            shadow_slo_ok: true,
            live_fraction: f64::NAN,
            ..quiet(0)
        };
        for _ in 0..10 {
            assert_eq!(g.observe(&nan_fleet), GuardrailAction::Hold);
        }
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn probation_holds_but_does_not_reset_while_the_fleet_is_degraded() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        g.observe(&EpochSignals {
            table_corrupt: true,
            ..quiet(0)
        });
        assert_eq!(g.level(), 1);
        for k in 1..=4 {
            assert_eq!(g.observe(&quiet(k)), GuardrailAction::Hold);
        }
        assert_eq!(g.state().clean_streak, 4);
        // Degraded epochs neither advance nor reset the probation clock.
        for k in 5..=8 {
            assert_eq!(
                g.observe(&EpochSignals {
                    live_fraction: 0.7,
                    ..quiet(k)
                }),
                GuardrailAction::Hold
            );
        }
        assert_eq!(g.state().clean_streak, 4, "probation held, not reset");
        // Full-fleet clean epochs finish the window and promote.
        assert_eq!(g.observe(&quiet(9)), GuardrailAction::Hold);
        assert_eq!(g.observe(&quiet(10)), GuardrailAction::Promote);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn comparative_detectors_disarm_at_and_below_the_fallback_level() {
        // Demote twice: Hybrid -> Parallel -> Pacing (the fallback).
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        g.observe(&EpochSignals {
            table_corrupt: true,
            ..quiet(0)
        });
        let regressed = EpochSignals {
            active_reward: -5.0,
            shadow_reward: 2.5,
            active_slo_ok: false,
            shadow_slo_ok: true,
            ..quiet(1)
        };
        for _ in 0..3 {
            g.observe(&regressed);
        }
        assert_eq!(g.level(), 2, "comparative detectors still arm at level 1");
        assert_eq!(g.active_strategy(), Strategy::Pacing);
        // At the fallback level the same signals are ignored: the active
        // controller IS the shadow, so "the shadow would win" is vacuous
        // and probation must be able to complete.
        for k in 0..20 {
            let a = g.observe(&EpochSignals {
                epoch_index: 10 + k,
                ..regressed
            });
            if a == GuardrailAction::Promote {
                break;
            }
        }
        assert!(
            g.level() <= 1,
            "probation completed despite shadow-vs-active noise"
        );
    }

    #[test]
    fn probation_requires_consecutive_clean_epochs_then_promotes_one_rung() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        g.observe(&EpochSignals {
            table_corrupt: true,
            ..quiet(0)
        });
        assert_eq!(g.level(), 1);
        // 5 clean epochs, then a dirty one: streak resets.
        for k in 1..=5 {
            assert_eq!(g.observe(&quiet(k)), GuardrailAction::Hold);
        }
        assert_eq!(g.state().clean_streak, 5);
        g.observe(&EpochSignals {
            battery_discharge_w: 500.0,
            planned_battery_w: 10.0,
            ..quiet(6)
        });
        assert_eq!(g.state().clean_streak, 0, "dirty epoch resets probation");
        assert_eq!(g.level(), 1, "one dirty epoch is not a new streak");
        // A full clean probation window promotes exactly one rung.
        for k in 7..=11 {
            assert_eq!(g.observe(&quiet(k)), GuardrailAction::Hold);
        }
        assert_eq!(g.observe(&quiet(12)), GuardrailAction::Promote);
        assert_eq!(g.level(), 0);
        assert_eq!(g.active_strategy(), Strategy::Hybrid);
        // Peak level and failover accounting survive the recovery.
        assert_eq!(g.state().peak_level, 1);
        assert!(g.state().failover_epochs >= 12);
        // Back at level 0, clean epochs do not "promote" further.
        assert_eq!(g.observe(&quiet(13)), GuardrailAction::Hold);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn the_normal_floor_absorbs_triggers_without_further_demotion() {
        let mut g = Guardrail::new(cfg(), Strategy::Pacing).unwrap();
        assert_eq!(g.ladder(), [Strategy::Pacing, Strategy::Normal]);
        g.observe(&EpochSignals {
            battery_discharge_w: 1e4,
            planned_battery_w: 0.0,
            ..quiet(0)
        });
        g.observe(&EpochSignals {
            battery_discharge_w: 1e4,
            planned_battery_w: 0.0,
            ..quiet(1)
        });
        let a = g.observe(&EpochSignals {
            battery_discharge_w: 1e4,
            planned_battery_w: 0.0,
            ..quiet(2)
        });
        assert!(matches!(a, GuardrailAction::Demote { .. }));
        assert_eq!(g.active_strategy(), Strategy::Normal);
        // Keep signalling SoC divergence at the floor: Hold, not panic.
        for k in 3..10 {
            let a = g.observe(&EpochSignals {
                battery_discharge_w: 1e4,
                planned_battery_w: 0.0,
                ..quiet(k)
            });
            assert_eq!(a, GuardrailAction::Hold);
            assert_eq!(
                g.state().clean_streak,
                0,
                "dirty floor epochs are not probation"
            );
        }
        assert_eq!(g.level(), 1);
    }

    #[test]
    fn state_roundtrips_through_snapshot_serialization() {
        let mut g = Guardrail::new(cfg(), Strategy::Hybrid).unwrap();
        g.observe(&EpochSignals {
            table_corrupt: true,
            ..quiet(0)
        });
        g.note_quarantine(0, "abc123", " -> /tmp/q.json");
        g.set_shadow_prev(ServerSetting::max_sprint());
        g.observe(&quiet(1));
        let json = serde_json::to_string(g.state()).unwrap();
        let restored: GuardrailState = serde_json::from_str(&json).unwrap();
        assert_eq!(*g.state(), restored);
        let g2 = Guardrail::restore(cfg(), restored);
        assert_eq!(g2.level(), g.level());
        assert_eq!(g2.shadow_prev(), ServerSetting::max_sprint());
    }

    #[test]
    fn quarantine_records_checksum_and_verify() {
        let rec = QuarantineRecord::new(7, "q-table corruption", "{\"fake\":1}".to_string());
        assert_eq!(rec.schema, QUARANTINE_SCHEMA);
        assert!(rec.verify().is_ok());
        assert!(rec.file_name().starts_with("qtable-e7-"));
        let back = QuarantineRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(rec, back);
        // Tampering with the policy breaks verification.
        let mut tampered = rec.clone();
        tampered.policy.push(' ');
        assert!(tampered.verify().is_err());
        assert!(QuarantineRecord::from_json(&tampered.to_json()).is_err());
        let mut bad_schema = rec.clone();
        bad_schema.schema = "nope".to_string();
        assert!(bad_schema.verify().is_err());
    }

    #[test]
    fn quarantine_write_is_atomic_and_readable_back() {
        let dir = std::env::temp_dir().join(format!("gs-quarantine-test-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        let rec = QuarantineRecord::new(3, "test", "{\"p\":2}".to_string());
        let path = rec.write_to(&dir_s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = QuarantineRecord::from_json(&text).unwrap();
        assert_eq!(rec, back);
        // Idempotent: a second (concurrent-worker) write lands cleanly.
        let path2 = rec.write_to(&dir_s).unwrap();
        assert_eq!(path, path2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
