//! Offline profiling tables.
//!
//! Paper §III-B: "We measure and collect the power demand
//! `LoadPower_j(L_{j,t}, S_{j,t})` of an individual workload for each
//! server setting `S_j` and workload intensity level `L_j` with a priori
//! knowledge using an exhaustive method on real servers." The PMK
//! strategies and the Hybrid learner's bootstrap all read these tables.
//!
//! Our "real servers" are the calibrated models of `gs-cluster` +
//! `gs-workload`; the exhaustive sweep enumerates all 63 sprint settings
//! once and caches SLO capacity, raw capacity, and full-load power.

use gs_cluster::ServerSetting;
use gs_workload::apps::{AppProfile, Application};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The process-wide table cache, one slot per paper application. The
/// tables depend only on the application's calibrated model — the
/// measurement mode (DES vs analytic) never enters a profile, so keying
/// by application alone is exact, not an approximation.
static CACHED_TABLES: [OnceLock<ProfileTable>; 3] =
    [OnceLock::new(), OnceLock::new(), OnceLock::new()];

/// Cache slot for an application.
pub(crate) fn app_cache_index(app: Application) -> usize {
    match app {
        Application::SpecJbb => 0,
        Application::WebSearch => 1,
        Application::Memcached => 2,
    }
}

/// One profiled setting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SettingProfile {
    /// The sprint setting.
    pub setting: ServerSetting,
    /// SLO-constrained capacity (req/s) — the performance entry.
    pub slo_capacity: f64,
    /// Saturation capacity (req/s) — used to convert load to utilization.
    pub raw_capacity: f64,
    /// Full-load power (W) — `LoadPower(L_max, S)`.
    pub full_load_power_w: f64,
    /// Idle power (W).
    pub idle_power_w: f64,
}

impl SettingProfile {
    /// Power (W) at an offered load of `rps`, interpolating linearly in
    /// utilization between idle and full load — the paper's
    /// `LoadPower(L, S)` with `L` quantized by the measured intensity.
    pub fn load_power_w(&self, rps: f64) -> f64 {
        let util = (rps / self.raw_capacity).clamp(0.0, 1.0);
        self.idle_power_w + util * (self.full_load_power_w - self.idle_power_w)
    }
}

/// The exhaustive per-application profile table, indexed by
/// [`ServerSetting::action_index`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileTable {
    entries: Vec<SettingProfile>,
}

impl ProfileTable {
    /// Run the exhaustive sweep for an application.
    pub fn build(app: &AppProfile) -> Self {
        let model = app.power_model();
        let entries = ServerSetting::all()
            .into_iter()
            .map(|setting| SettingProfile {
                setting,
                slo_capacity: app.slo_capacity(setting),
                raw_capacity: app.raw_capacity(setting),
                full_load_power_w: model.full_load_power_w(setting),
                idle_power_w: model.min_power_w(),
            })
            .collect();
        ProfileTable { entries }
    }

    /// The shared, lazily-built table for a paper application. The sweep
    /// is deterministic, so all engines can share one copy per process.
    pub fn cached(app: Application) -> &'static ProfileTable {
        CACHED_TABLES[app_cache_index(app)].get_or_init(|| ProfileTable::build(&app.profile()))
    }

    /// If `table` is one of the process-wide cached tables, the
    /// application it belongs to. Lets downstream caches (e.g. the
    /// Hybrid learner's bootstrap) key themselves by application without
    /// forcing any table to build.
    pub fn cached_app(table: &ProfileTable) -> Option<Application> {
        [
            Application::SpecJbb,
            Application::WebSearch,
            Application::Memcached,
        ]
        .into_iter()
        .find(|&app| {
            CACHED_TABLES[app_cache_index(app)]
                .get()
                .is_some_and(|t| std::ptr::eq(t, table))
        })
    }

    /// Profile of one setting.
    pub fn get(&self, setting: ServerSetting) -> &SettingProfile {
        &self.entries[setting.action_index()]
    }

    /// All profiled settings.
    pub fn entries(&self) -> &[SettingProfile] {
        &self.entries
    }

    /// Expected goodput (req/s) at a setting under offered load `rps`:
    /// `min(load, SLO capacity)` — the per-epoch term of the paper's
    /// objective (Eq. 3).
    pub fn expected_perf(&self, setting: ServerSetting, offered_rps: f64) -> f64 {
        offered_rps.min(self.get(setting).slo_capacity)
    }

    /// Planning power (W) at a setting for offered load `rps`
    /// (`LoadPower(L_pre, S)` in Eq. 2).
    pub fn planned_power_w(&self, setting: ServerSetting, offered_rps: f64) -> f64 {
        let e = self.get(setting);
        let served = offered_rps.min(e.raw_capacity);
        e.load_power_w(served)
    }

    /// The cheapest setting (by planned power) among `candidates` that
    /// still delivers at least `target_perf` under `offered_rps`; `None`
    /// if no candidate reaches the target.
    pub fn cheapest_reaching(
        &self,
        candidates: &[ServerSetting],
        offered_rps: f64,
        target_perf: f64,
    ) -> Option<ServerSetting> {
        candidates
            .iter()
            .copied()
            .filter(|&s| self.expected_perf(s, offered_rps) >= target_perf)
            .min_by(|&a, &b| {
                self.planned_power_w(a, offered_rps)
                    .total_cmp(&self.planned_power_w(b, offered_rps))
            })
    }

    /// Among `candidates` whose planned power fits `budget_w`, the one with
    /// the highest expected performance; ties break toward lower power
    /// (energy efficiency). Returns `None` if nothing fits the budget.
    pub fn best_within_budget(
        &self,
        candidates: &[ServerSetting],
        offered_rps: f64,
        budget_w: f64,
    ) -> Option<ServerSetting> {
        candidates
            .iter()
            .copied()
            .filter(|&s| self.planned_power_w(s, offered_rps) <= budget_w)
            .max_by(|&a, &b| {
                let (pa, pb) = (
                    self.expected_perf(a, offered_rps),
                    self.expected_perf(b, offered_rps),
                );
                pa.total_cmp(&pb).then_with(|| {
                    // Prefer *lower* power on perf ties.
                    self.planned_power_w(b, offered_rps)
                        .total_cmp(&self.planned_power_w(a, offered_rps))
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_workload::apps::Application;

    fn table() -> ProfileTable {
        ProfileTable::build(&Application::SpecJbb.profile())
    }

    #[test]
    fn covers_all_63_settings() {
        let t = table();
        assert_eq!(t.entries().len(), 63);
        for s in ServerSetting::all() {
            assert_eq!(t.get(s).setting, s);
        }
    }

    #[test]
    fn load_power_interpolates() {
        let t = table();
        let e = t.get(ServerSetting::max_sprint());
        assert_eq!(e.load_power_w(0.0), e.idle_power_w);
        assert!((e.load_power_w(f64::INFINITY) - e.full_load_power_w).abs() < 1e-9);
        let half = e.load_power_w(e.raw_capacity / 2.0);
        assert!((half - (e.idle_power_w + e.full_load_power_w) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn expected_perf_caps_at_slo_capacity() {
        let t = table();
        let s = ServerSetting::normal();
        let cap = t.get(s).slo_capacity;
        assert_eq!(t.expected_perf(s, cap / 2.0), cap / 2.0);
        assert_eq!(t.expected_perf(s, cap * 10.0), cap);
    }

    #[test]
    fn best_within_budget_prefers_perf_then_low_power() {
        let t = table();
        let all = ServerSetting::all();
        let heavy_load = 1e9;
        // Huge budget: should pick the max-performance setting (max sprint).
        let best = t.best_within_budget(&all, heavy_load, 1e9).unwrap();
        assert_eq!(best, ServerSetting::max_sprint());
        // Budget below idle: nothing fits.
        assert_eq!(t.best_within_budget(&all, heavy_load, 10.0), None);
        // Budget of ~100 W: Normal-class settings only.
        let best = t.best_within_budget(&all, heavy_load, 100.0).unwrap();
        assert!(t.planned_power_w(best, heavy_load) <= 100.0);
        // With a tiny offered load every setting performs equally; the
        // tie-break must pick something idle-cheap.
        let light = t.best_within_budget(&all, 1.0, 1e9).unwrap();
        assert!(
            t.planned_power_w(light, 1.0) <= t.planned_power_w(ServerSetting::max_sprint(), 1.0)
        );
    }

    #[test]
    fn cheapest_reaching_finds_energy_efficient_setting() {
        let t = table();
        let all = ServerSetting::all();
        let normal_cap = t.get(ServerSetting::normal()).slo_capacity;
        // Reaching Normal-level perf should not require max sprint power.
        let s = t.cheapest_reaching(&all, 1e9, normal_cap).unwrap();
        assert!(t.planned_power_w(s, 1e9) < t.get(ServerSetting::max_sprint()).full_load_power_w);
        // An impossible target yields None.
        assert_eq!(t.cheapest_reaching(&all, 1e9, 1e12), None);
    }

    #[test]
    fn profiles_are_consistent_with_app_model() {
        let app = Application::Memcached.profile();
        let t = ProfileTable::build(&app);
        for s in [ServerSetting::normal(), ServerSetting::max_sprint()] {
            assert!((t.get(s).slo_capacity - app.slo_capacity(s)).abs() < 1e-9);
            assert!((t.get(s).full_load_power_w - app.load_power_w(s)).abs() < 1e-9);
        }
    }
}
