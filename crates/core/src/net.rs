//! `greensprint::net` — the fault-tolerant TCP network plane for
//! [`mod@crate::serve`].
//!
//! A std-only (no async runtime; all deps vendored) JSON-lines plane
//! with three endpoint roles multiplexed over one line protocol, on one
//! listener or split across per-role ports:
//!
//! * **Telemetry ingest** — any line that is not a recognized command is
//!   a telemetry frame in the same formats as `--feed`: a plain finite
//!   f64 or a JSON object carrying `supply_w`/`re_supply_w`. Malformed
//!   frames are counted per connection and are never fatal; a
//!   per-connection read timeout and a max-line-length cap bound
//!   slowloris and memory-flood clients.
//! * **Metrics subscribe** — `SUB` (optionally `SUB ?from_epoch=N`)
//!   turns the connection into a fan-out of the serve metrics stream
//!   through a bounded per-subscriber drop-oldest queue, so one slow
//!   client can never stall the tick loop. `?from_epoch=` replays the
//!   catch-up window from the metrics file plus an in-memory replay
//!   ring, so a reconnecting subscriber sees a gap-free stream. Under
//!   `--racks N` the plane also carries per-rack topic lines (prefixed
//!   `{"rack":R,`): the default stream filters them out so existing
//!   tooling keeps seeing only the site aggregate, while
//!   `SUB ?rack=R` (combinable as `?from_epoch=N&rack=R`) selects one
//!   rack's topic. Rack topics are hub/ring-only — never in the durable
//!   file — so their catch-up window is bounded by the replay ring.
//! * **Control/admin** — `STATUS [token]` returns a one-line JSON
//!   status (including per-rack health under `--racks N`); `DRAIN
//!   token` requests a graceful drain that rides the same path as
//!   SIGTERM; `KILL-RACK R token` marks rack `R` for a worker kill at
//!   the next epoch (exercising the supervised restart path) and
//!   `RESTART-RACK R token` re-admits a quarantined rack. Every
//!   mutating verb requires a configured shared secret; a mismatch is
//!   counted in `auth_rejects`. Requests are subject to the same
//!   line-length cap.
//!
//! All I/O lives on dedicated threads. Telemetry flows to the tick loop
//! through a bounded channel (overflow counted, never blocking); metrics
//! flow out through per-subscriber bounded queues (overflow drops the
//! oldest line, counted, never blocking). The epoch loop therefore stays
//! byte-identical under `--sim-time` goldens regardless of network
//! activity — in sim-time, arriving frames are validated and counted but
//! never shape the deterministic stream.
//!
//! Robustness is testable without real chaos: [`NetFaultPlan`] is a
//! seeded, serializable storm (drops mid-frame, stalled writers, corrupt
//! and oversized frames, reconnect storms, accept-queue bursts, killed
//! subscribers, bad tokens) mirroring [`crate::serve::DisturbancePlan`],
//! executed against a live plane by the in-process [`run_fault_plan`]
//! harness client.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Default concurrent-connection cap (`--max-conns`).
pub const DEFAULT_MAX_CONNS: usize = 64;
/// Default per-connection read/write timeout (`--conn-timeout-ms`).
pub const DEFAULT_CONN_TIMEOUT_MS: u64 = 5_000;
/// Default max accepted line length in bytes (frames and commands).
pub const DEFAULT_MAX_LINE_LEN: usize = 8_192;
/// Default per-subscriber queue capacity in lines (drop-oldest beyond).
pub const DEFAULT_SUB_QUEUE_CAP: usize = 256;
/// Default in-memory replay ring capacity in lines.
pub const DEFAULT_REPLAY_RING_CAP: usize = 4_096;

/// Malformed frames tolerated on one connection before it is shed.
const MAX_MALFORMED_PER_CONN: u64 = 64;
/// An oversized frame may spill this many times the line cap before the
/// connection is shed as a flood instead of skipped to the next line.
const OVERSIZE_FLOOD_FACTOR: usize = 16;
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Subscriber wakeup interval for shutdown checks.
const SUB_WAIT: Duration = Duration::from_millis(50);

/// Lock a mutex, riding through poisoning: a panicked peer thread must
/// not cascade into the control plane.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Parse one telemetry frame: a plain finite f64 or a JSON object with
/// `supply_w`/`re_supply_w`, clamped non-negative. Shared by the serve
/// `--feed` path and the TCP ingest path so both speak one format.
pub fn parse_frame(line: &str) -> Option<f64> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if let Ok(v) = line.parse::<f64>() {
        return v.is_finite().then_some(v.max(0.0));
    }
    let v: serde_json::Value = serde_json::from_str(line).ok()?;
    let w = v.get("supply_w").or_else(|| v.get("re_supply_w"))?;
    let w = w.as_number()?.as_f64();
    w.is_finite().then_some(w.max(0.0))
}

/// Extract the `epoch` field from a metrics JSON line.
pub fn line_epoch(line: &str) -> Option<u64> {
    let v: serde_json::Value = serde_json::from_str(line).ok()?;
    v.get("epoch")
        .and_then(|e| e.as_number())
        .and_then(|n| n.as_u64())
}

/// The addresses a started plane actually bound (resolves `:0` ports).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetAddrs {
    /// The ingest/admin/subscribe listener.
    pub listen: Option<SocketAddr>,
    /// The metrics-only listener (same protocol; separate port so
    /// operators can firewall the roles apart).
    pub metrics: Option<SocketAddr>,
}

/// Runtime configuration of the network plane. Lives in
/// [`crate::serve::ServeArgs`] (the runtime half): nothing here shapes
/// the content of the deterministic metrics stream.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Ingest/admin/subscribe listen address (e.g. `127.0.0.1:7070`).
    pub listen: Option<String>,
    /// Additional subscribe/status listen address.
    pub metrics_listen: Option<String>,
    /// Shared secret for admin commands (`DRAIN` refuses without one).
    pub admin_token: Option<String>,
    /// Concurrent-connection cap across both listeners.
    pub max_conns: usize,
    /// Per-connection read/write timeout in milliseconds.
    pub conn_timeout_ms: u64,
    /// Max accepted line length in bytes; longer frames are skipped.
    pub max_line_len: usize,
    /// Per-subscriber queue capacity in lines (drop-oldest beyond).
    pub sub_queue_cap: usize,
    /// In-memory replay ring capacity in lines.
    pub replay_ring_cap: usize,
    /// Set once bound, so a harness started before [`mod@crate::serve`]
    /// returns can learn the real `:0` ports.
    pub ready: Option<Arc<OnceLock<NetAddrs>>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            listen: None,
            metrics_listen: None,
            admin_token: None,
            max_conns: DEFAULT_MAX_CONNS,
            conn_timeout_ms: DEFAULT_CONN_TIMEOUT_MS,
            max_line_len: DEFAULT_MAX_LINE_LEN,
            sub_queue_cap: DEFAULT_SUB_QUEUE_CAP,
            replay_ring_cap: DEFAULT_REPLAY_RING_CAP,
            ready: None,
        }
    }
}

impl NetConfig {
    /// True when at least one listener is requested.
    pub fn enabled(&self) -> bool {
        self.listen.is_some() || self.metrics_listen.is_some()
    }

    /// Validate the knobs; the CLI maps the message to exit code 2.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Err("network plane enabled with no listen address".to_string());
        }
        if self.max_conns == 0 {
            return Err("--max-conns must be >= 1".to_string());
        }
        if self.conn_timeout_ms == 0 {
            return Err("--conn-timeout-ms must be > 0".to_string());
        }
        if self.max_line_len < 64 {
            return Err("max line length must be >= 64 bytes".to_string());
        }
        if self.sub_queue_cap == 0 {
            return Err("subscriber queue capacity must be >= 1".to_string());
        }
        if self.replay_ring_cap == 0 {
            return Err("replay ring capacity must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Counters every robustness path increments; surfaced in the serve
/// summary, the heartbeat, and `STATUS` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct NetSummary {
    /// Connections accepted across both listeners.
    pub conns_accepted: u64,
    /// Connections shed (over `max_conns`, flooding, malformed storms).
    pub conns_dropped: u64,
    /// Connections closed by the per-connection read timeout.
    pub conns_timed_out: u64,
    /// Well-formed telemetry frames received.
    pub frames_received: u64,
    /// Malformed/oversized frames counted (never fatal).
    pub malformed_frames: u64,
    /// Well-formed frames dropped because the ingest channel was full.
    pub frames_discarded: u64,
    /// Subscribers accepted (monotonic).
    pub subscribers: u64,
    /// Metrics lines dropped on slow/killed subscribers.
    pub subscriber_drops: u64,
    /// Admin requests rejected by the token check.
    pub auth_rejects: u64,
    /// Accepted `DRAIN` commands.
    pub drain_requests: u64,
    /// Accepted `KILL-RACK` commands.
    pub kill_rack_requests: u64,
    /// Accepted `RESTART-RACK` commands.
    pub restart_rack_requests: u64,
}

#[derive(Default)]
struct NetCounters {
    conns_accepted: AtomicU64,
    conns_dropped: AtomicU64,
    conns_timed_out: AtomicU64,
    frames_received: AtomicU64,
    malformed_frames: AtomicU64,
    frames_discarded: AtomicU64,
    subscribers: AtomicU64,
    subscriber_drops: AtomicU64,
    auth_rejects: AtomicU64,
    drain_requests: AtomicU64,
    kill_rack_requests: AtomicU64,
    restart_rack_requests: AtomicU64,
}

impl NetCounters {
    fn summary(&self) -> NetSummary {
        NetSummary {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_dropped: self.conns_dropped.load(Ordering::Relaxed),
            conns_timed_out: self.conns_timed_out.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            frames_discarded: self.frames_discarded.load(Ordering::Relaxed),
            subscribers: self.subscribers.load(Ordering::Relaxed),
            subscriber_drops: self.subscriber_drops.load(Ordering::Relaxed),
            auth_rejects: self.auth_rejects.load(Ordering::Relaxed),
            drain_requests: self.drain_requests.load(Ordering::Relaxed),
            kill_rack_requests: self.kill_rack_requests.load(Ordering::Relaxed),
            restart_rack_requests: self.restart_rack_requests.load(Ordering::Relaxed),
        }
    }
}

/// One rack's live health as published to `STATUS` clients. Runtime
/// observability only: nothing here enters the deterministic stream.
#[derive(Debug, Clone, Serialize)]
pub struct RackStat {
    /// Rack index.
    pub rack: u32,
    /// Supervision ladder rung: `live`, `degraded`, or `quarantined`.
    pub health: String,
    /// Restarts consumed out of the per-rack budget.
    pub restarts: u32,
    /// The rack's routed load factor this epoch.
    pub factor: f64,
}

/// One subscriber's bounded drop-oldest queue.
struct SubQueue {
    cap: usize,
    state: Mutex<SubState>,
    cv: Condvar,
}

#[derive(Default)]
struct SubState {
    lines: VecDeque<Arc<String>>,
    closed: bool,
}

impl SubQueue {
    fn new(cap: usize) -> Self {
        SubQueue {
            cap: cap.max(1),
            state: Mutex::new(SubState::default()),
            cv: Condvar::new(),
        }
    }
}

/// Fan-out hub: the replay ring plus the live subscriber queues.
struct HubInner {
    subs: Vec<Arc<SubQueue>>,
    recent: VecDeque<(u64, Arc<String>)>,
    ring_cap: usize,
    /// The next epoch `publish` will deliver; queues hold only epochs
    /// `>= next_epoch` as of a subscriber's registration instant.
    next_epoch: u64,
}

/// State shared between the serve driver and every network thread.
pub(crate) struct NetShared {
    admin_token: Option<String>,
    max_conns: usize,
    conn_timeout: Duration,
    max_line_len: usize,
    sub_queue_cap: usize,
    metrics_path: Option<PathBuf>,
    counters: NetCounters,
    shutdown: AtomicBool,
    drain: AtomicBool,
    active_conns: AtomicUsize,
    conn_seq: AtomicU64,
    /// Last published epoch (`u64::MAX` = none yet).
    last_epoch: AtomicU64,
    hub: Mutex<HubInner>,
    /// Force-shutdown registry: reader-role sockets slammed on `stop`.
    /// Subscribers deregister — they get a graceful flush instead.
    conns: Mutex<HashMap<u64, TcpStream>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    ingest: SyncSender<f64>,
    /// Racks marked for a worker kill (`KILL-RACK`), drained per epoch.
    kill_requests: Mutex<Vec<u32>>,
    /// Quarantined racks marked for re-admission (`RESTART-RACK`).
    restart_requests: Mutex<Vec<u32>>,
    /// The serve loop's last per-rack health mirror for `STATUS`.
    rack_status: Mutex<Option<Vec<RackStat>>>,
}

impl NetShared {
    /// Publish one metrics line to the ring and every live subscriber.
    /// Never blocks: a full subscriber queue drops its oldest line.
    pub(crate) fn publish(&self, epoch: u64, line: String) {
        self.last_epoch.store(epoch, Ordering::SeqCst);
        let line = Arc::new(line);
        let mut hub = lock(&self.hub);
        if hub.recent.len() >= hub.ring_cap {
            hub.recent.pop_front();
        }
        hub.recent.push_back((epoch, line.clone()));
        hub.next_epoch = epoch + 1;
        hub.subs.retain(|s| !lock(&s.state).closed);
        for sub in &hub.subs {
            let mut st = lock(&sub.state);
            while st.lines.len() >= sub.cap {
                st.lines.pop_front();
                bump(&self.counters.subscriber_drops);
            }
            st.lines.push_back(line.clone());
            sub.cv.notify_one();
        }
    }

    /// True once an authenticated `DRAIN` arrived; serve polls this at
    /// each epoch boundary alongside the SIGTERM latch.
    pub(crate) fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    pub(crate) fn summary(&self) -> NetSummary {
        self.counters.summary()
    }

    /// Drain the queued admin rack requests: `(kills, re-admissions)`.
    /// The serve loop takes these once per epoch; rack indices beyond
    /// the fleet are ignored by the consumer.
    pub(crate) fn take_rack_requests(&self) -> (Vec<u32>, Vec<u32>) {
        (
            std::mem::take(&mut *lock(&self.kill_requests)),
            std::mem::take(&mut *lock(&self.restart_requests)),
        )
    }

    /// Refresh the per-rack health mirror returned by `STATUS`.
    pub(crate) fn set_rack_status(&self, racks: Vec<RackStat>) {
        *lock(&self.rack_status) = Some(racks);
    }
}

/// The running network plane: listeners, connection threads, hub.
pub struct NetPlane {
    shared: Arc<NetShared>,
    acceptors: Vec<JoinHandle<()>>,
    /// The bound addresses (resolves `:0` requests).
    pub addrs: NetAddrs,
}

impl NetPlane {
    /// Bind the configured listeners and start the acceptor threads.
    /// Well-formed telemetry frames flow into `ingest` (overflow counted
    /// in `frames_discarded`); `metrics_path` feeds `?from_epoch=`
    /// catch-up replay.
    pub fn start(
        cfg: &NetConfig,
        ingest: SyncSender<f64>,
        metrics_path: Option<PathBuf>,
    ) -> std::io::Result<NetPlane> {
        cfg.validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        let shared = Arc::new(NetShared {
            admin_token: cfg.admin_token.clone(),
            max_conns: cfg.max_conns,
            conn_timeout: Duration::from_millis(cfg.conn_timeout_ms),
            max_line_len: cfg.max_line_len,
            sub_queue_cap: cfg.sub_queue_cap,
            metrics_path,
            counters: NetCounters::default(),
            shutdown: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            last_epoch: AtomicU64::new(u64::MAX),
            hub: Mutex::new(HubInner {
                subs: Vec::new(),
                recent: VecDeque::new(),
                ring_cap: cfg.replay_ring_cap.max(1),
                next_epoch: 0,
            }),
            conns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            ingest,
            kill_requests: Mutex::new(Vec::new()),
            restart_requests: Mutex::new(Vec::new()),
            rack_status: Mutex::new(None),
        });
        let mut acceptors = Vec::new();
        let mut addrs = NetAddrs::default();
        if let Some(a) = &cfg.listen {
            let listener = TcpListener::bind(a)?;
            addrs.listen = listener.local_addr().ok();
            let sh = shared.clone();
            acceptors.push(std::thread::spawn(move || acceptor_loop(&sh, &listener)));
        }
        if let Some(a) = &cfg.metrics_listen {
            let listener = TcpListener::bind(a)?;
            addrs.metrics = listener.local_addr().ok();
            let sh = shared.clone();
            acceptors.push(std::thread::spawn(move || acceptor_loop(&sh, &listener)));
        }
        if let Some(ready) = &cfg.ready {
            let _ = ready.set(addrs);
        }
        Ok(NetPlane {
            shared,
            acceptors,
            addrs,
        })
    }

    pub(crate) fn shared(&self) -> Arc<NetShared> {
        self.shared.clone()
    }

    /// Publish one metrics line (serve calls this per emitted epoch).
    pub fn publish(&self, epoch: u64, line: String) {
        self.shared.publish(epoch, line);
    }

    /// True once an authenticated `DRAIN` command arrived.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested()
    }

    /// Live snapshot of the robustness counters.
    pub fn counters(&self) -> NetSummary {
        self.shared.summary()
    }

    /// Currently registered (not yet pruned) subscribers.
    pub fn subscriber_count(&self) -> usize {
        lock(&self.shared.hub).subs.len()
    }

    /// Stop the plane: slam reader connections, flush subscribers, join
    /// every thread (all exits are bounded by the connection timeouts),
    /// and return the final counters.
    pub fn stop(self) -> NetSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let hub = lock(&self.shared.hub);
            for sub in &hub.subs {
                sub.cv.notify_all();
            }
        }
        for (_, s) in lock(&self.shared.conns).drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.acceptors {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *lock(&self.shared.workers));
        for h in workers {
            let _ = h.join();
        }
        self.shared.counters.summary()
    }
}

fn acceptor_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => accept_conn(shared, stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn accept_conn(shared: &Arc<NetShared>, stream: TcpStream) {
    let prev = shared.active_conns.fetch_add(1, Ordering::SeqCst);
    if prev >= shared.max_conns {
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        bump(&shared.counters.conns_dropped);
        let mut s = stream;
        let _ = s.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = s.write_all(b"err busy\n");
        return;
    }
    bump(&shared.counters.conns_accepted);
    let id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(id, clone);
    }
    let sh = shared.clone();
    let handle = std::thread::spawn(move || conn_main(&sh, stream, id));
    let mut workers = lock(&shared.workers);
    // Dropping a finished handle detaches nothing live; this keeps the
    // registry bounded under reconnect storms.
    workers.retain(|h| !h.is_finished());
    workers.push(handle);
}

/// Decrements the live-connection count and clears the force-shutdown
/// registry entry however the connection thread exits.
struct ConnGuard {
    shared: Arc<NetShared>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        lock(&self.shared.conns).remove(&self.id);
    }
}

fn conn_main(shared: &Arc<NetShared>, stream: TcpStream, id: u64) {
    let _guard = ConnGuard {
        shared: shared.clone(),
        id,
    };
    let c = &shared.counters;
    let _ = stream.set_read_timeout(Some(shared.conn_timeout));
    let _ = stream.set_write_timeout(Some(shared.conn_timeout));
    let Ok(read_half) = stream.try_clone() else {
        bump(&c.conns_dropped);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let first = match read_frame(&mut reader, shared.max_line_len) {
        FrameRead::Line(l) => l,
        FrameRead::Oversized => {
            bump(&c.malformed_frames);
            bump(&c.conns_dropped);
            return;
        }
        FrameRead::Eof => return,
        FrameRead::PartialEof => {
            bump(&c.malformed_frames);
            return;
        }
        FrameRead::TimedOut => {
            bump(&c.conns_timed_out);
            return;
        }
        FrameRead::Closed | FrameRead::Flooded => {
            bump(&c.conns_dropped);
            return;
        }
    };
    let trimmed = first.trim().to_string();
    let mut toks = trimmed.split_whitespace();
    match toks.next() {
        Some("SUB") => subscriber_main(shared, stream, id, toks.next()),
        Some("STATUS") => admin_status(shared, stream, toks.next()),
        Some("DRAIN") => admin_drain(shared, stream, toks.next()),
        Some("KILL-RACK") => admin_rack(shared, stream, toks.next(), toks.next(), true),
        Some("RESTART-RACK") => admin_rack(shared, stream, toks.next(), toks.next(), false),
        _ => ingest_main(shared, &mut reader, &first),
    }
}

fn ingest_main(shared: &Arc<NetShared>, reader: &mut BufReader<TcpStream>, first: &str) {
    let c = &shared.counters;
    let mut malformed_here: u64 = 0;
    let handle = |line: &str, malformed_here: &mut u64| match parse_frame(line) {
        Some(w) => {
            bump(&c.frames_received);
            if shared.ingest.try_send(w).is_err() {
                bump(&c.frames_discarded);
            }
        }
        None => {
            bump(&c.malformed_frames);
            *malformed_here += 1;
        }
    };
    handle(first, &mut malformed_here);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if malformed_here > MAX_MALFORMED_PER_CONN {
            bump(&c.conns_dropped);
            return;
        }
        match read_frame(reader, shared.max_line_len) {
            FrameRead::Line(l) => handle(&l, &mut malformed_here),
            FrameRead::Oversized => {
                bump(&c.malformed_frames);
                malformed_here += 1;
            }
            FrameRead::Eof => return,
            FrameRead::PartialEof => {
                bump(&c.malformed_frames);
                return;
            }
            FrameRead::TimedOut => {
                bump(&c.conns_timed_out);
                return;
            }
            FrameRead::Closed | FrameRead::Flooded => {
                bump(&c.conns_dropped);
                return;
            }
        }
    }
}

/// The one-line JSON reply to `STATUS`.
#[derive(Serialize)]
struct StatusReply {
    role: &'static str,
    /// Last published epoch (absent before the first one).
    epoch: Option<u64>,
    drain_pending: bool,
    active_conns: usize,
    subscribers_live: usize,
    /// Per-rack supervision ladder (`null` unless serving `--racks N`).
    racks: Option<Vec<RackStat>>,
    net: NetSummary,
}

fn admin_status(shared: &Arc<NetShared>, stream: TcpStream, token: Option<&str>) {
    let mut s = stream;
    // Read-only status is open when no secret is configured; once one
    // is, every admin verb requires it.
    let ok = match (&shared.admin_token, token) {
        (Some(want), Some(got)) => want == got,
        (Some(_), None) => false,
        (None, _) => true,
    };
    if !ok {
        bump(&shared.counters.auth_rejects);
        let _ = s.write_all(b"err unauthorized\n");
        return;
    }
    let last = shared.last_epoch.load(Ordering::SeqCst);
    let reply = StatusReply {
        role: "greensprint-serve",
        epoch: (last != u64::MAX).then_some(last),
        drain_pending: shared.drain.load(Ordering::SeqCst),
        active_conns: shared.active_conns.load(Ordering::SeqCst),
        subscribers_live: lock(&shared.hub).subs.len(),
        racks: lock(&shared.rack_status).clone(),
        net: shared.counters.summary(),
    };
    match serde_json::to_string(&reply) {
        Ok(json) => {
            let _ = writeln!(s, "{json}");
        }
        Err(_) => {
            let _ = s.write_all(b"err status\n");
        }
    }
}

fn admin_drain(shared: &Arc<NetShared>, stream: TcpStream, token: Option<&str>) {
    let mut s = stream;
    // A mutating verb never runs without a configured, matching secret.
    let ok = matches!((&shared.admin_token, token), (Some(want), Some(got)) if want == got);
    if !ok {
        bump(&shared.counters.auth_rejects);
        let _ = s.write_all(b"err unauthorized\n");
        return;
    }
    shared.drain.store(true, Ordering::SeqCst);
    bump(&shared.counters.drain_requests);
    let _ = s.write_all(b"ok drain\n");
}

/// `KILL-RACK R token` / `RESTART-RACK R token`: queue a rack request
/// for the serve loop to apply at its next epoch. Token-gated exactly
/// like `DRAIN` — both verbs mutate the fleet.
fn admin_rack(
    shared: &Arc<NetShared>,
    stream: TcpStream,
    rack: Option<&str>,
    token: Option<&str>,
    kill: bool,
) {
    let mut s = stream;
    let ok = matches!((&shared.admin_token, token), (Some(want), Some(got)) if want == got);
    if !ok {
        bump(&shared.counters.auth_rejects);
        let _ = s.write_all(b"err unauthorized\n");
        return;
    }
    let Some(r) = rack.and_then(|v| v.parse::<u32>().ok()) else {
        let _ = s.write_all(b"err bad rack\n");
        return;
    };
    if kill {
        lock(&shared.kill_requests).push(r);
        bump(&shared.counters.kill_rack_requests);
        let _ = writeln!(s, "ok kill-rack {r}");
    } else {
        lock(&shared.restart_requests).push(r);
        bump(&shared.counters.restart_rack_requests);
        let _ = writeln!(s, "ok restart-rack {r}");
    }
}

/// The parsed options of a `SUB` request.
#[derive(Debug, Default, PartialEq, Eq)]
struct SubOptions {
    from_epoch: Option<u64>,
    rack: Option<u32>,
}

/// Parse `SUB` options: nothing, `?from_epoch=N`, `?rack=R`, or both
/// joined with `&` in either order. `None` on anything else.
fn parse_sub_options(arg: Option<&str>) -> Option<SubOptions> {
    let mut opts = SubOptions::default();
    let Some(a) = arg else { return Some(opts) };
    for part in a.strip_prefix('?')?.split('&') {
        if let Some(v) = part.strip_prefix("from_epoch=") {
            opts.from_epoch = Some(v.parse().ok()?);
        } else if let Some(v) = part.strip_prefix("rack=") {
            opts.rack = Some(v.parse().ok()?);
        } else {
            return None;
        }
    }
    Some(opts)
}

fn subscriber_main(shared: &Arc<NetShared>, stream: TcpStream, id: u64, arg: Option<&str>) {
    let c = &shared.counters;
    let Some(opts) = parse_sub_options(arg) else {
        bump(&c.malformed_frames);
        let mut s = stream;
        let _ = s.write_all(b"err bad subscribe\n");
        return;
    };
    let from_epoch = opts.from_epoch;
    // Topic selection: `?rack=R` keeps only that rack's lines; the
    // default stream keeps only non-rack (aggregate) lines, so adding
    // `--racks N` never changes what existing subscribers receive.
    let rack_prefix = opts.rack.map(|r| format!("{{\"rack\":{r},"));
    let keep = |line: &str| match &rack_prefix {
        Some(p) => line.starts_with(p.as_str()),
        None => !line.starts_with("{\"rack\":"),
    };
    bump(&c.subscribers);
    // This socket now belongs to the graceful-flush path; the
    // force-shutdown registry must not slam it mid-replay.
    lock(&shared.conns).remove(&id);
    let sub = Arc::new(SubQueue::new(shared.sub_queue_cap));
    // Register under the hub lock and snapshot the ring at the same
    // instant: the queue then holds exactly the epochs >= `live_from`,
    // the ring exactly a suffix of those below it — no overlap, no gap.
    let (ring, live_from) = {
        let mut hub = lock(&shared.hub);
        hub.subs.push(sub.clone());
        (hub.recent.clone(), hub.next_epoch)
    };
    let mut out = BufWriter::new(stream);
    let mut write_failed = false;
    if let Some(from) = from_epoch {
        let ring_first = ring.front().map_or(live_from, |&(e, _)| e);
        if from < ring_first {
            // The catch-up window below the ring comes from the durable
            // metrics file (the flush-before-snapshot invariant keeps it
            // at most a stall window behind the ring).
            if let Some(path) = &shared.metrics_path {
                if let Ok(text) = std::fs::read_to_string(path) {
                    for line in text.lines() {
                        let Some(e) = line_epoch(line) else { continue };
                        if e >= from
                            && e < ring_first
                            && keep(line)
                            && writeln!(out, "{line}").is_err()
                        {
                            write_failed = true;
                            break;
                        }
                    }
                }
            }
        }
        if !write_failed {
            for (e, l) in &ring {
                if *e >= from && keep(l) && writeln!(out, "{l}").is_err() {
                    write_failed = true;
                    break;
                }
            }
        }
    }
    if !write_failed {
        write_failed = out.flush().is_err();
    }
    while !write_failed {
        let next = {
            let mut st = lock(&sub.state);
            loop {
                if let Some(l) = st.lines.pop_front() {
                    break Some(l);
                }
                if st.closed || shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                st = match sub.cv.wait_timeout(st, SUB_WAIT) {
                    Ok((g, _)) => g,
                    Err(e) => e.into_inner().0,
                };
            }
        };
        match next {
            Some(l) => {
                if keep(&l) && (writeln!(out, "{l}").is_err() || out.flush().is_err()) {
                    write_failed = true;
                }
            }
            None => break,
        }
    }
    // Unregister; a failed writer charges the line it lost plus every
    // line still queued behind it.
    let remaining = {
        let mut st = lock(&sub.state);
        st.closed = true;
        std::mem::take(&mut st.lines).len() as u64
    };
    if write_failed {
        c.subscriber_drops
            .fetch_add(1 + remaining, Ordering::Relaxed);
    }
    let _ = out.flush();
    if let Ok(s) = out.into_inner() {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FrameRead {
    /// A complete line within the cap (newline stripped).
    Line(String),
    /// A line over the cap: its bytes were discarded up to the newline.
    Oversized,
    /// Clean end of stream on a line boundary.
    Eof,
    /// End of stream mid-line (a drop mid-frame).
    PartialEof,
    /// The read timeout elapsed.
    TimedOut,
    /// The peer reset or an unrecoverable I/O error.
    Closed,
    /// An oversized line kept flowing past the flood bound.
    Flooded,
}

/// Read one newline-delimited frame with a hard length cap. Never
/// allocates more than `cap` bytes for the line itself; an oversized
/// line is skipped to its newline, bounded by [`OVERSIZE_FLOOD_FACTOR`].
pub(crate) fn read_frame<R: BufRead>(r: &mut R, cap: usize) -> FrameRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut discarded = 0usize;
    loop {
        let (consumed, done) = {
            let available = match r.fill_buf() {
                Ok(b) => b,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return FrameRead::TimedOut;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return FrameRead::Closed,
            };
            if available.is_empty() {
                if discarding {
                    return FrameRead::Oversized;
                }
                if buf.is_empty() {
                    return FrameRead::Eof;
                }
                return FrameRead::PartialEof;
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if discarding {
                        discarded += available.len();
                    } else {
                        buf.extend_from_slice(available);
                    }
                    (available.len(), false)
                }
            }
        };
        r.consume(consumed);
        if done {
            if discarding || buf.len() > cap {
                return FrameRead::Oversized;
            }
            return FrameRead::Line(String::from_utf8_lossy(&buf).into_owned());
        }
        if !discarding && buf.len() > cap {
            discarding = true;
            discarded = buf.len();
            buf.clear();
        }
        if discarding && discarded > cap.saturating_mul(OVERSIZE_FLOOD_FACTOR) {
            return FrameRead::Flooded;
        }
    }
}

/// One operation of a seeded network fault storm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetFaultOp {
    /// A well-formed plain-f64 telemetry frame.
    ValidFrame {
        /// The supply reading to send.
        watts: f64,
    },
    /// A frame that parses as neither f64 nor telemetry JSON.
    CorruptFrame,
    /// A frame longer than the line cap.
    OversizedFrame {
        /// Total frame length in bytes.
        len: usize,
    },
    /// Write half a frame, then close the connection.
    DropMidFrame,
    /// Open a connection and go silent past the read timeout.
    StallWriter {
        /// How long to stall in milliseconds.
        ms: u64,
    },
    /// Rapid connect/send/disconnect cycles.
    ReconnectStorm {
        /// Number of cycles.
        conns: usize,
    },
    /// Many simultaneous held-open connections (exercises `max_conns`).
    AcceptBurst {
        /// Number of concurrent connections.
        conns: usize,
    },
    /// Subscribe, read a few lines, then vanish without unsubscribing.
    KillSubscriber {
        /// Lines to read before vanishing.
        after_lines: usize,
    },
    /// An admin command with a wrong shared secret.
    BadToken,
}

const NET_FAULT_KINDS: usize = 9;

/// A seeded, serializable schedule of network misbehavior, mirroring
/// [`crate::serve::DisturbancePlan`]: the same seed always yields the
/// same storm, and a generated plan exercises every op kind at least
/// once. Executed against a live plane by [`run_fault_plan`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct NetFaultPlan {
    /// Generator seed (`0` for hand-written plans; provenance only).
    pub seed: u64,
    /// The ops, executed in order by the harness.
    pub ops: Vec<NetFaultOp>,
}

impl NetFaultPlan {
    /// Generate a storm: one op of every kind plus `extra_ops` random
    /// ones, deterministically shuffled. `line_cap` and
    /// `conn_timeout_ms` should match the target plane so oversize and
    /// stall ops actually cross their thresholds.
    pub fn generate(seed: u64, extra_ops: usize, line_cap: usize, conn_timeout_ms: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6e65_7466_6175); // "netfau"
        let mut ops: Vec<NetFaultOp> = (0..NET_FAULT_KINDS)
            .map(|k| Self::op(k, &mut rng, line_cap, conn_timeout_ms))
            .collect();
        for _ in 0..extra_ops {
            let k = rng.index(NET_FAULT_KINDS);
            ops.push(Self::op(k, &mut rng, line_cap, conn_timeout_ms));
        }
        for i in (1..ops.len()).rev() {
            let j = rng.index(i + 1);
            ops.swap(i, j);
        }
        NetFaultPlan { seed, ops }
    }

    fn op(kind: usize, rng: &mut SimRng, line_cap: usize, conn_timeout_ms: u64) -> NetFaultOp {
        match kind {
            0 => NetFaultOp::ValidFrame {
                watts: (50 + rng.index(450)) as f64,
            },
            1 => NetFaultOp::CorruptFrame,
            2 => NetFaultOp::OversizedFrame {
                len: line_cap * 2 + rng.index(line_cap.max(1)),
            },
            3 => NetFaultOp::DropMidFrame,
            4 => NetFaultOp::StallWriter {
                ms: conn_timeout_ms + conn_timeout_ms / 2,
            },
            5 => NetFaultOp::ReconnectStorm {
                conns: 2 + rng.index(4),
            },
            6 => NetFaultOp::AcceptBurst {
                conns: 4 + rng.index(8),
            },
            7 => NetFaultOp::KillSubscriber {
                after_lines: 1 + rng.index(3),
            },
            _ => NetFaultOp::BadToken,
        }
    }
}

/// What the in-process harness observed while executing a plan.
#[derive(Debug, Clone, Default, Serialize)]
pub struct NetHarnessReport {
    /// Ops executed (always the full plan; failures are counted, not fatal).
    pub ops_run: usize,
    /// Connection attempts the target refused or shed.
    pub connect_failures: u64,
    /// Mid-op write errors (expected under shedding).
    pub io_errors: u64,
    /// Metrics lines the killed subscribers read before vanishing.
    pub sub_lines_seen: u64,
}

/// Connect without caring whether the target sheds us (used for
/// accept bursts, where shedding is the point).
fn harness_connect_raw(addr: SocketAddr, rep: &mut NetHarnessReport) -> Option<TcpStream> {
    match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
        Ok(s) => {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = s.set_write_timeout(Some(Duration::from_secs(2)));
            Some(s)
        }
        Err(_) => {
            rep.connect_failures += 1;
            None
        }
    }
}

/// Connect and briefly probe for an `err busy` shed (the listener
/// accepts at the TCP level before deciding); retry until a connection
/// is genuinely held open. Bounded: gives up after a few attempts.
fn harness_connect(addr: SocketAddr, rep: &mut NetHarnessReport) -> Option<TcpStream> {
    use std::io::Read as _;
    for _ in 0..10 {
        let Some(s) = harness_connect_raw(addr, rep) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
        let mut probe = [0u8; 16];
        match (&s).read(&mut probe) {
            // Silence is acceptance: a held connection gets no greeting.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                return Some(s);
            }
            // Anything readable (or an immediate close) is a shed.
            _ => rep.connect_failures += 1,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

/// Execute a [`NetFaultPlan`] against a live plane, best-effort: every
/// op runs, every failure is counted. The target must survive all of it
/// with nothing worse than incremented counters.
pub fn run_fault_plan(addr: SocketAddr, plan: &NetFaultPlan) -> NetHarnessReport {
    let mut rep = NetHarnessReport::default();
    let mut conn: Option<TcpStream> = None;
    for op in &plan.ops {
        rep.ops_run += 1;
        match op {
            NetFaultOp::ValidFrame { watts } => {
                if conn.is_none() {
                    conn = harness_connect(addr, &mut rep);
                }
                if let Some(s) = conn.as_mut() {
                    if writeln!(s, "{watts}").is_err() {
                        rep.io_errors += 1;
                        conn = None;
                    }
                }
            }
            NetFaultOp::CorruptFrame => {
                if conn.is_none() {
                    conn = harness_connect(addr, &mut rep);
                }
                if let Some(s) = conn.as_mut() {
                    if s.write_all(b"{\"supply_w\": bogus}\n").is_err() {
                        rep.io_errors += 1;
                        conn = None;
                    }
                }
            }
            NetFaultOp::OversizedFrame { len } => {
                if conn.is_none() {
                    conn = harness_connect(addr, &mut rep);
                }
                if let Some(s) = conn.as_mut() {
                    let mut frame = vec![b'x'; *len];
                    frame.push(b'\n');
                    if s.write_all(&frame).is_err() {
                        rep.io_errors += 1;
                        conn = None;
                    }
                }
            }
            NetFaultOp::DropMidFrame => {
                if let Some(mut s) = harness_connect(addr, &mut rep) {
                    let _ = s.write_all(b"777.0");
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
            NetFaultOp::StallWriter { ms } => {
                if let Some(s) = harness_connect(addr, &mut rep) {
                    std::thread::sleep(Duration::from_millis(*ms));
                    drop(s);
                }
            }
            NetFaultOp::ReconnectStorm { conns } => {
                for _ in 0..*conns {
                    if let Some(mut s) = harness_connect(addr, &mut rep) {
                        if writeln!(s, "100.0").is_err() {
                            rep.io_errors += 1;
                        }
                    }
                }
            }
            NetFaultOp::AcceptBurst { conns } => {
                let held: Vec<TcpStream> = (0..*conns)
                    .filter_map(|_| harness_connect_raw(addr, &mut rep))
                    .collect();
                std::thread::sleep(Duration::from_millis(20));
                drop(held);
            }
            NetFaultOp::KillSubscriber { after_lines } => {
                if let Some(mut s) = harness_connect(addr, &mut rep) {
                    if writeln!(s, "SUB").is_ok() {
                        if let Ok(clone) = s.try_clone() {
                            let mut r = BufReader::new(clone);
                            for _ in 0..*after_lines {
                                let mut line = String::new();
                                match r.read_line(&mut line) {
                                    Ok(0) | Err(_) => break,
                                    Ok(_) => rep.sub_lines_seen += 1,
                                }
                            }
                        }
                    }
                    drop(s);
                }
            }
            NetFaultOp::BadToken => {
                if let Some(mut s) = harness_connect(addr, &mut rep) {
                    if writeln!(s, "DRAIN definitely-wrong-token").is_ok() {
                        let mut r = BufReader::new(s);
                        let mut line = String::new();
                        let _ = r.read_line(&mut line);
                    }
                }
            }
        }
    }
    drop(conn);
    rep
}

/// Subscribe to `addr` and collect metrics lines until the server
/// closes the stream or `idle` elapses with nothing new. Test/tooling
/// helper — the gap-free reconnect check is one call.
pub fn subscribe_collect(
    addr: SocketAddr,
    from_epoch: Option<u64>,
    idle: Duration,
) -> std::io::Result<Vec<String>> {
    let s = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    s.set_read_timeout(Some(idle))?;
    s.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut w = s.try_clone()?;
    match from_epoch {
        Some(n) => writeln!(w, "SUB ?from_epoch={n}")?,
        None => writeln!(w, "SUB")?,
    }
    let mut r = BufReader::new(s);
    let mut out = Vec::new();
    loop {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => out.push(line.trim_end().to_string()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Send one admin request line and return the one-line reply.
pub fn admin_request(
    addr: SocketAddr,
    request: &str,
    timeout: Duration,
) -> std::io::Result<String> {
    let s = TcpStream::connect_timeout(&addr, timeout)?;
    s.set_read_timeout(Some(timeout))?;
    s.set_write_timeout(Some(timeout))?;
    let mut w = s.try_clone()?;
    writeln!(w, "{request}")?;
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line)?;
    Ok(line.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::mpsc;
    use std::time::Instant;

    fn wait_until(what: &str, f: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if f() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    fn test_cfg() -> NetConfig {
        NetConfig {
            listen: Some("127.0.0.1:0".to_string()),
            conn_timeout_ms: 300,
            max_line_len: 128,
            max_conns: 4,
            sub_queue_cap: 4,
            ..NetConfig::default()
        }
    }

    fn start_plane(cfg: NetConfig) -> (NetPlane, mpsc::Receiver<f64>) {
        let (tx, rx) = mpsc::sync_channel(64);
        let plane = NetPlane::start(&cfg, tx, None).expect("plane binds");
        (plane, rx)
    }

    fn connect(addr: SocketAddr) -> TcpStream {
        let s = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        s
    }

    #[test]
    fn config_validation_rejects_each_bad_knob() {
        assert!(NetConfig::default().validate().is_err(), "no listener");
        let ok = test_cfg();
        assert!(ok.validate().is_ok());
        for (name, cfg) in [
            (
                "max_conns",
                NetConfig {
                    max_conns: 0,
                    ..test_cfg()
                },
            ),
            (
                "conn_timeout_ms",
                NetConfig {
                    conn_timeout_ms: 0,
                    ..test_cfg()
                },
            ),
            (
                "max_line_len",
                NetConfig {
                    max_line_len: 16,
                    ..test_cfg()
                },
            ),
            (
                "sub_queue_cap",
                NetConfig {
                    sub_queue_cap: 0,
                    ..test_cfg()
                },
            ),
            (
                "replay_ring_cap",
                NetConfig {
                    replay_ring_cap: 0,
                    ..test_cfg()
                },
            ),
        ] {
            assert!(cfg.validate().is_err(), "{name} should be rejected");
        }
    }

    #[test]
    fn frames_parse_plain_json_and_garbage() {
        assert_eq!(parse_frame("412.5"), Some(412.5));
        assert_eq!(parse_frame("  300 "), Some(300.0));
        assert_eq!(parse_frame("-17"), Some(0.0), "supply clamps at zero");
        assert_eq!(parse_frame("{\"supply_w\": 250.0}"), Some(250.0));
        assert_eq!(parse_frame("{\"re_supply_w\": 99}"), Some(99.0));
        assert_eq!(parse_frame(""), None);
        assert_eq!(parse_frame("potato"), None);
        assert_eq!(parse_frame("{\"watts\": 5}"), None);
        assert_eq!(parse_frame("NaN"), None);
    }

    #[test]
    fn read_frame_bounds_lines_and_skips_oversize() {
        let long = "y".repeat(50);
        let text = format!("short\n{long}\nafter\npartial");
        let mut r = Cursor::new(text.into_bytes());
        assert_eq!(read_frame(&mut r, 16), FrameRead::Line("short".into()));
        assert_eq!(read_frame(&mut r, 16), FrameRead::Oversized);
        assert_eq!(
            read_frame(&mut r, 16),
            FrameRead::Line("after".into()),
            "an oversized line is skipped to its newline, not fatal"
        );
        assert_eq!(read_frame(&mut r, 16), FrameRead::PartialEof);
        assert_eq!(read_frame(&mut r, 16), FrameRead::Eof);
    }

    #[test]
    fn read_frame_sheds_a_newline_free_flood() {
        let flood = vec![b'z'; 16 * OVERSIZE_FLOOD_FACTOR + 64];
        let mut r = Cursor::new(flood);
        assert_eq!(read_frame(&mut r, 16), FrameRead::Flooded);
    }

    #[test]
    fn fault_plan_is_deterministic_covers_every_kind_and_roundtrips() {
        let a = NetFaultPlan::generate(42, 8, 128, 200);
        let b = NetFaultPlan::generate(42, 8, 128, 200);
        assert_eq!(a, b);
        let c = NetFaultPlan::generate(43, 8, 128, 200);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.ops.len(), NET_FAULT_KINDS + 8);
        let kind = |op: &NetFaultOp| -> usize {
            match op {
                NetFaultOp::ValidFrame { .. } => 0,
                NetFaultOp::CorruptFrame => 1,
                NetFaultOp::OversizedFrame { .. } => 2,
                NetFaultOp::DropMidFrame => 3,
                NetFaultOp::StallWriter { .. } => 4,
                NetFaultOp::ReconnectStorm { .. } => 5,
                NetFaultOp::AcceptBurst { .. } => 6,
                NetFaultOp::KillSubscriber { .. } => 7,
                NetFaultOp::BadToken => 8,
            }
        };
        let mut seen = [false; NET_FAULT_KINDS];
        for op in &a.ops {
            seen[kind(op)] = true;
            if let NetFaultOp::OversizedFrame { len } = op {
                assert!(*len > 128, "oversize must cross the line cap");
            }
            if let NetFaultOp::StallWriter { ms } = op {
                assert!(*ms > 200, "stall must cross the read timeout");
            }
        }
        assert!(seen.iter().all(|&s| s), "every kind exercised: {seen:?}");
        let json = serde_json::to_string(&a).unwrap();
        let back: NetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn ingest_counts_frames_and_forwards_to_the_channel() {
        let (plane, rx) = start_plane(test_cfg());
        let addr = plane.addrs.listen.unwrap();
        let mut s = connect(addr);
        s.write_all(b"123.5\njunk frame\n").unwrap();
        s.write_all(format!("{}\n", "x".repeat(200)).as_bytes())
            .unwrap();
        s.write_all(b"{\"supply_w\": 50}\n").unwrap();
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, 123.5);
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, 50.0);
        wait_until("malformed counted", || {
            plane.counters().malformed_frames >= 2
        });
        drop(s);
        let summary = plane.stop();
        assert_eq!(summary.frames_received, 2);
        assert!(summary.malformed_frames >= 2, "{summary:?}");
        assert_eq!(summary.conns_accepted, 1);
    }

    #[test]
    fn a_silent_connection_times_out_and_a_half_frame_counts_malformed() {
        let (plane, _rx) = start_plane(test_cfg());
        let addr = plane.addrs.listen.unwrap();
        let silent = connect(addr);
        let mut half = connect(addr);
        half.write_all(b"42.0").unwrap(); // no newline
        half.shutdown(Shutdown::Both).unwrap();
        wait_until("timeout + malformed", || {
            let c = plane.counters();
            c.conns_timed_out >= 1 && c.malformed_frames >= 1
        });
        drop(silent);
        plane.stop();
    }

    #[test]
    fn connections_beyond_max_conns_are_shed_with_busy() {
        let (plane, _rx) = start_plane(test_cfg());
        let addr = plane.addrs.listen.unwrap();
        // Fill the 4 slots with silent conns, then overflow.
        let held: Vec<TcpStream> = (0..4).map(|_| connect(addr)).collect();
        wait_until("slots filled", || plane.counters().conns_accepted >= 4);
        let mut extra = connect(addr);
        let mut r = BufReader::new(extra.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "err busy");
        let _ = extra.write_all(b"1.0\n");
        wait_until("shed counted", || plane.counters().conns_dropped >= 1);
        drop(held);
        plane.stop();
    }

    #[test]
    fn publish_drops_oldest_on_a_full_subscriber_queue() {
        let (plane, _rx) = start_plane(test_cfg());
        // Register a queue with no draining thread behind it.
        let sub = Arc::new(SubQueue::new(2));
        lock(&plane.shared.hub).subs.push(sub.clone());
        for k in 0..5u64 {
            plane.publish(k, format!("{{\"epoch\":{k}}}"));
        }
        {
            let st = lock(&sub.state);
            let got: Vec<String> = st.lines.iter().map(|l| l.as_str().to_string()).collect();
            assert_eq!(got, vec!["{\"epoch\":3}", "{\"epoch\":4}"]);
        }
        assert_eq!(plane.counters().subscriber_drops, 3);
        plane.stop();
    }

    #[test]
    fn subscriber_replay_is_gap_free_across_file_ring_and_live() {
        let dir = std::env::temp_dir().join("gs_net_replay_test");
        let _ = std::fs::create_dir_all(&dir);
        let metrics = dir.join("metrics.jsonl");
        // Epochs 0..=2 durable in the file only.
        let mut text = String::new();
        for k in 0..3u64 {
            text.push_str(&format!("{{\"epoch\":{k},\"src\":\"file\"}}\n"));
        }
        std::fs::write(&metrics, text).unwrap();
        let (tx, _rx) = mpsc::sync_channel(64);
        let cfg = NetConfig {
            replay_ring_cap: 16,
            ..test_cfg()
        };
        let plane = NetPlane::start(&cfg, tx, Some(metrics.clone())).expect("plane binds");
        let addr = plane.addrs.listen.unwrap();
        // Epochs 3..=5 in the ring (published before the subscriber).
        for k in 3..6u64 {
            plane.publish(k, format!("{{\"epoch\":{k},\"src\":\"ring\"}}"));
        }
        let collector = std::thread::spawn(move || {
            subscribe_collect(addr, Some(0), Duration::from_secs(5)).expect("collect")
        });
        wait_until("subscriber registered", || plane.subscriber_count() == 1);
        // Epochs 6..=7 live.
        for k in 6..8u64 {
            plane.publish(k, format!("{{\"epoch\":{k},\"src\":\"live\"}}"));
        }
        let summary = plane.stop(); // flushes and closes the subscriber
        let lines = collector.join().expect("collector thread");
        let epochs: Vec<u64> = lines.iter().filter_map(|l| line_epoch(l)).collect();
        assert_eq!(
            epochs,
            (0..8).collect::<Vec<u64>>(),
            "gap-free across file, ring, and live: {lines:?}"
        );
        assert_eq!(summary.subscribers, 1);
        assert_eq!(summary.subscriber_drops, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_file_line_is_skipped_without_a_gap() {
        // A SIGKILL mid-write leaves the durable metrics file ending in
        // a torn (truncated-JSON) line. The file replay must skip the
        // fragment — `line_epoch` refuses it — and the ring re-serves
        // that epoch intact, so `?from_epoch=0` stays gap-free and no
        // corrupt bytes ever reach a subscriber.
        let dir = std::env::temp_dir().join("gs_net_torn_test");
        let _ = std::fs::create_dir_all(&dir);
        let metrics = dir.join("metrics.jsonl");
        let mut text = String::new();
        for k in 0..5u64 {
            text.push_str(&format!("{{\"epoch\":{k},\"src\":\"file\"}}\n"));
        }
        text.push_str("{\"epoch\":5,\"src\":\"fi"); // torn: no close, no newline
        std::fs::write(&metrics, text).unwrap();
        let (tx, _rx) = mpsc::sync_channel(64);
        let cfg = NetConfig {
            replay_ring_cap: 4,
            ..test_cfg()
        };
        let plane = NetPlane::start(&cfg, tx, Some(metrics.clone())).expect("plane binds");
        let addr = plane.addrs.listen.unwrap();
        // The epoch the torn line belonged to, plus its successors, all
        // land in the ring before the subscriber connects.
        for k in 5..9u64 {
            plane.publish(k, format!("{{\"epoch\":{k},\"src\":\"ring\"}}"));
        }
        let collector = std::thread::spawn(move || {
            subscribe_collect(addr, Some(0), Duration::from_secs(5)).expect("collect")
        });
        wait_until("subscriber registered", || plane.subscriber_count() == 1);
        plane.stop();
        let lines = collector.join().expect("collector thread");
        let epochs: Vec<u64> = lines.iter().filter_map(|l| line_epoch(l)).collect();
        assert_eq!(
            epochs,
            (0..9).collect::<Vec<u64>>(),
            "gap-free despite the torn tail: {lines:?}"
        );
        assert!(
            lines.iter().all(|l| l.ends_with('}')),
            "the torn fragment leaked to a subscriber: {lines:?}"
        );
        assert_eq!(
            line_epoch("{\"epoch\":5,\"src\":\"fi"),
            None,
            "a torn line must never parse to an epoch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admin_status_and_drain_enforce_the_shared_secret() {
        let cfg = NetConfig {
            admin_token: Some("s3cret".to_string()),
            ..test_cfg()
        };
        let (plane, _rx) = start_plane(cfg);
        let addr = plane.addrs.listen.unwrap();
        let t = Duration::from_secs(2);
        assert_eq!(
            admin_request(addr, "STATUS wrong", t).unwrap(),
            "err unauthorized"
        );
        assert_eq!(
            admin_request(addr, "DRAIN wrong", t).unwrap(),
            "err unauthorized"
        );
        assert!(!plane.drain_requested());
        let status = admin_request(addr, "STATUS s3cret", t).unwrap();
        assert!(status.starts_with('{'), "{status}");
        let v: serde_json::Value = serde_json::from_str(&status).unwrap();
        assert_eq!(
            v.get("role").and_then(|r| r.as_str()),
            Some("greensprint-serve")
        );
        let rejects = v
            .get("net")
            .and_then(|n| n.get("auth_rejects"))
            .and_then(|r| r.as_number())
            .and_then(|n| n.as_u64());
        assert_eq!(rejects, Some(2));
        assert_eq!(admin_request(addr, "DRAIN s3cret", t).unwrap(), "ok drain");
        wait_until("drain latched", || plane.drain_requested());
        let summary = plane.stop();
        assert_eq!(summary.auth_rejects, 2);
        assert_eq!(summary.drain_requests, 1);
    }

    #[test]
    fn sub_options_parse_each_shape_and_reject_garbage() {
        assert_eq!(parse_sub_options(None), Some(SubOptions::default()));
        assert_eq!(
            parse_sub_options(Some("?from_epoch=7")),
            Some(SubOptions {
                from_epoch: Some(7),
                rack: None
            })
        );
        assert_eq!(
            parse_sub_options(Some("?rack=2")),
            Some(SubOptions {
                from_epoch: None,
                rack: Some(2)
            })
        );
        assert_eq!(
            parse_sub_options(Some("?rack=2&from_epoch=7")),
            Some(SubOptions {
                from_epoch: Some(7),
                rack: Some(2)
            })
        );
        for bad in ["from_epoch=7", "?from_epoch=x", "?rack=", "?bogus=1"] {
            assert_eq!(parse_sub_options(Some(bad)), None, "{bad}");
        }
    }

    #[test]
    fn rack_verbs_queue_requests_and_enforce_the_shared_secret() {
        let cfg = NetConfig {
            admin_token: Some("s3cret".to_string()),
            ..test_cfg()
        };
        let (plane, _rx) = start_plane(cfg);
        let addr = plane.addrs.listen.unwrap();
        let t = Duration::from_secs(2);
        assert_eq!(
            admin_request(addr, "KILL-RACK 1 wrong", t).unwrap(),
            "err unauthorized"
        );
        assert_eq!(
            admin_request(addr, "KILL-RACK zero s3cret", t).unwrap(),
            "err bad rack"
        );
        assert_eq!(
            admin_request(addr, "KILL-RACK 1 s3cret", t).unwrap(),
            "ok kill-rack 1"
        );
        assert_eq!(
            admin_request(addr, "RESTART-RACK 3 s3cret", t).unwrap(),
            "ok restart-rack 3"
        );
        let (kills, readmits) = plane.shared.take_rack_requests();
        assert_eq!(kills, vec![1]);
        assert_eq!(readmits, vec![3]);
        let (kills, readmits) = plane.shared.take_rack_requests();
        assert!(kills.is_empty() && readmits.is_empty(), "take drains");
        let summary = plane.stop();
        assert_eq!(summary.kill_rack_requests, 1);
        assert_eq!(summary.restart_rack_requests, 1);
        assert_eq!(summary.auth_rejects, 1);
    }

    #[test]
    fn rack_topic_lines_are_filtered_by_subscription() {
        // Topic filtering happens at write time, so every published line
        // transits each subscriber queue: the cap must cover the whole
        // burst or drop-oldest races the writer threads.
        let (plane, _rx) = start_plane(NetConfig {
            sub_queue_cap: 64,
            ..test_cfg()
        });
        let addr = plane.addrs.listen.unwrap();
        let agg = std::thread::spawn(move || {
            subscribe_collect(addr, None, Duration::from_secs(5)).expect("collect")
        });
        let rack1 = std::thread::spawn(move || {
            let s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut w = s.try_clone().unwrap();
            writeln!(w, "SUB ?from_epoch=0&rack=1").unwrap();
            let mut r = BufReader::new(s);
            let mut out = Vec::new();
            loop {
                let mut line = String::new();
                match r.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => out.push(line.trim_end().to_string()),
                }
            }
            out
        });
        wait_until("subscribers registered", || plane.subscriber_count() == 2);
        for k in 0..3u64 {
            plane.publish(k, format!("{{\"epoch\":{k},\"src\":\"agg\"}}"));
            for rack in 0..2u64 {
                plane.publish(k, format!("{{\"rack\":{rack},\"epoch\":{k}}}"));
            }
        }
        plane.stop();
        let agg_lines = agg.join().expect("agg thread");
        assert_eq!(agg_lines.len(), 3, "{agg_lines:?}");
        assert!(agg_lines.iter().all(|l| l.contains("\"src\":\"agg\"")));
        let rack_lines = rack1.join().expect("rack thread");
        assert_eq!(rack_lines.len(), 3, "{rack_lines:?}");
        assert!(rack_lines.iter().all(|l| l.starts_with("{\"rack\":1,")));
    }

    #[test]
    fn drain_without_a_configured_token_is_always_refused() {
        let (plane, _rx) = start_plane(test_cfg());
        let addr = plane.addrs.listen.unwrap();
        let t = Duration::from_secs(2);
        // Read-only status is open without a secret; the mutating verb
        // is not.
        let status = admin_request(addr, "STATUS", t).unwrap();
        assert!(status.starts_with('{'), "{status}");
        assert_eq!(
            admin_request(addr, "DRAIN anything", t).unwrap(),
            "err unauthorized"
        );
        assert!(!plane.drain_requested());
        let summary = plane.stop();
        assert_eq!(summary.auth_rejects, 1);
        assert_eq!(summary.drain_requests, 0);
    }

    #[test]
    fn a_fault_storm_never_panics_the_plane_and_exercises_counters() {
        let cfg = NetConfig {
            admin_token: Some("s3cret".to_string()),
            max_conns: 3,
            ..test_cfg()
        };
        let (plane, rx) = start_plane(cfg);
        let addr = plane.addrs.listen.unwrap();
        let plan = NetFaultPlan::generate(7, 6, 128, 300);
        let rep = run_fault_plan(addr, &plan);
        assert_eq!(rep.ops_run, plan.ops.len());
        // Publish a few lines so killed subscribers have something to miss.
        for k in 0..20u64 {
            plane.publish(k, format!("{{\"epoch\":{k}}}"));
            std::thread::sleep(Duration::from_millis(5));
        }
        while rx.try_recv().is_ok() {}
        wait_until("storm counters", || {
            let c = plane.counters();
            c.frames_received >= 1 && c.malformed_frames >= 2 && c.auth_rejects >= 1
        });
        let summary = plane.stop();
        assert!(summary.conns_accepted >= 5, "{summary:?}");
        assert!(summary.subscribers >= 1, "{summary:?}");
        assert_eq!(summary.drain_requests, 0, "bad tokens must not drain");
    }
}
