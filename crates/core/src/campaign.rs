//! Long-horizon campaigns: days of diurnal operation instead of one
//! controlled burst.
//!
//! The paper's TCO argument (§IV-F) prices green provisioning against the
//! *yearly hours of sprinting* a real workload generates — breaking even
//! near 14 h/year. A campaign runs the controller against the Google-style
//! diurnal load curve of Fig. 1 (daily plateau plus flash spikes) under
//! generated weather for multiple days, counts sprint hours, and
//! extrapolates them to a year so [`gs_tco`]-style models can be fed with
//! *measured* sprint activity instead of an assumption.

use crate::checkpoint::{EngineSnapshot, LoopState, MainCarry, RunPhase, SnapshotScope};
use crate::engine::{
    run_window, run_window_resumable, BurstOutcome, EngineConfig, EngineError, MeasurementMode,
    NoHooks, RunWindow,
};
use crate::fleet::EngineScratch;
use crate::pmk::Strategy;
use crate::profiler::ProfileTable;
use gs_cluster::{ServerSetting, NUM_FREQ_LEVELS};
use gs_power::solar::{SolarTrace, WeatherModel};
use gs_sim::{SimDuration, SimRng, SimTime};
use gs_workload::arrivals::DiurnalTrace;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-day campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignConfig {
    /// The burst-level engine configuration supplying app, provisioning,
    /// strategy, epoch, measurement, thermal model, and seed. Its burst
    /// fields (`availability`, `burst_duration`, `burst_intensity_cores`,
    /// `burst_start_hour`) are ignored — the campaign provides its own
    /// load and sky.
    pub engine: EngineConfig,
    /// Days of operation.
    pub days: u32,
    /// Daily flash spikes in the diurnal load (paper Fig. 1 shows several).
    pub spikes_per_day: u32,
    /// Peak offered load as a core-equivalent intensity (12 = the paper's
    /// saturating `Int=12`).
    pub peak_intensity_cores: u8,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            engine: EngineConfig::default(),
            days: 3,
            spikes_per_day: 4,
            peak_intensity_cores: 12,
        }
    }
}

/// What a campaign produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Days simulated.
    pub days: u32,
    /// Server-hours of sprinting (sum over green servers).
    pub sprint_server_hours: f64,
    /// Wall-clock hours during which at least one server sprinted.
    pub sprint_hours: f64,
    /// Extrapolation of `sprint_hours` to a 365-day year.
    pub sprint_hours_per_year: f64,
    /// Total goodput relative to a Normal-mode run of the same days.
    pub goodput_vs_normal: f64,
    /// The underlying strategy-run outcome (energy accounting etc.).
    pub run: BurstOutcome,
}

impl CampaignConfig {
    /// Validate this configuration without running it.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.days < 1 {
            return Err(EngineError::ZeroDays);
        }
        self.engine.validate_base()
    }
}

/// Run a campaign: the configured strategy plus a Normal baseline over
/// identical load and weather. Panics on an invalid configuration; see
/// [`try_run_campaign`] for the reporting variant.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    try_run_campaign(cfg).unwrap_or_else(|e| panic!("invalid campaign configuration: {e}"))
}

/// As [`run_campaign`], surfacing configuration errors instead of
/// panicking — for callers handling untrusted input (the CLI).
pub fn try_run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, EngineError> {
    let mut scratch = EngineScratch::new();
    try_run_campaign_in(cfg, &mut scratch)
}

/// As [`try_run_campaign`], reusing a caller-provided scratch arena
/// across the strategy and baseline windows (sweep workers thread one
/// arena through every task).
pub(crate) fn try_run_campaign_in(
    cfg: &CampaignConfig,
    scratch: &mut EngineScratch,
) -> Result<CampaignOutcome, EngineError> {
    cfg.validate()?;
    let (run, normal) = with_campaign_window(cfg, |profiles, window| {
        let (run, _) = run_window(&cfg.engine, cfg.engine.strategy, profiles, window, scratch);
        let (normal, _) = run_window(&cfg.engine, Strategy::Normal, profiles, window, scratch);
        (run, normal)
    });
    Ok(assemble_outcome(cfg, run, &normal))
}

/// Rebuild the campaign's deterministic load and sky from its seed and
/// hand the window to `f` — the one place both fresh runs and snapshot
/// resumes derive the environment, so they cannot diverge.
fn with_campaign_window<T>(
    cfg: &CampaignConfig,
    f: impl FnOnce(&ProfileTable, &RunWindow<'_>) -> T,
) -> T {
    let profiles = ProfileTable::cached(cfg.engine.app);
    let app = cfg.engine.app.profile();

    let mut rng = SimRng::seed_from_u64(cfg.engine.seed ^ 0xCA3A_16E5);
    let load = DiurnalTrace::generate(cfg.days, cfg.spikes_per_day, &mut rng);
    let sky = SolarTrace::generate(cfg.days, &WeatherModel::default(), &mut rng);
    let peak_rps = app.slo_capacity(ServerSetting::new(
        cfg.peak_intensity_cores,
        (NUM_FREQ_LEVELS - 1) as u8,
    ));
    let offered = move |t: SimTime| load.offered_rps(t, peak_rps);

    let window = RunWindow {
        offered_rps: &offered,
        trace: &sky,
        start: SimTime::ZERO,
        duration: SimDuration::from_hours(cfg.days as u64 * 24),
    };
    f(profiles, &window)
}

/// Derive the campaign-level metrics from the finished strategy and
/// Normal-baseline runs. The baseline's auditor findings fold into the
/// strategy outcome — a physics violation in either run taints the result.
fn assemble_outcome(
    cfg: &CampaignConfig,
    mut run: BurstOutcome,
    normal: &BurstOutcome,
) -> CampaignOutcome {
    run.audit_violations.extend(
        normal
            .audit_violations
            .iter()
            .map(|v| format!("baseline: {v}")),
    );
    let epoch_hours = cfg.engine.epoch.as_hours_f64();
    let sprint_server_hours: f64 = run
        .epochs
        .iter()
        .map(|e| e.sprinting_servers as f64 * epoch_hours)
        .sum();
    let sprint_hours: f64 = run
        .epochs
        .iter()
        .filter(|e| e.sprinting_servers > 0)
        .count() as f64
        * epoch_hours;
    let goodput_vs_normal = if normal.mean_goodput_rps > 0.0 {
        run.mean_goodput_rps / normal.mean_goodput_rps
    } else {
        1.0
    };
    CampaignOutcome {
        days: cfg.days,
        sprint_server_hours,
        sprint_hours,
        sprint_hours_per_year: sprint_hours * 365.0 / cfg.days as f64,
        goodput_vs_normal,
        run,
    }
}

/// The checkpoint fingerprint of a campaign configuration.
fn campaign_fingerprint(cfg: &CampaignConfig) -> String {
    let json = serde_json::to_string(cfg).expect("config serializes");
    crate::checkpoint::config_fingerprint(&json)
}

/// As [`try_run_campaign`], emitting a resumable [`EngineSnapshot`] at
/// every `every_epochs`-th epoch boundary (0 = never) of both the
/// strategy and the Normal-baseline run. Requires analytic measurement
/// (snapshots serialize the full controller state; DES state cannot).
pub fn try_run_campaign_with_snapshots(
    cfg: &CampaignConfig,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
) -> Result<CampaignOutcome, EngineError> {
    cfg.validate()?;
    if cfg.engine.measurement != MeasurementMode::Analytic {
        return Err(EngineError::SnapshotRequiresAnalytic);
    }
    let fp = campaign_fingerprint(cfg);
    let mut scratch = EngineScratch::new();
    let run = with_campaign_window(cfg, |profiles, window| {
        let mut emit = |state: LoopState| {
            sink(&EngineSnapshot {
                fingerprint: fp.clone(),
                scope: SnapshotScope::Campaign(cfg.clone()),
                phase: RunPhase::Strategy,
                main_carry: None,
                state,
            });
        };
        run_window_resumable(
            &cfg.engine,
            cfg.engine.strategy,
            profiles,
            window,
            None,
            every_epochs,
            &mut emit,
            &mut scratch,
            &mut NoHooks,
        )
        .0
    });
    finish_campaign(cfg, &fp, run, None, every_epochs, sink, &mut scratch)
}

/// Resume a campaign from a mid-run snapshot; called through
/// [`crate::engine::resume_snapshot`] after the fingerprint check.
pub(crate) fn resume_campaign_snapshot(
    cfg: &CampaignConfig,
    snap: EngineSnapshot,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
) -> Result<CampaignOutcome, EngineError> {
    cfg.validate()?;
    if cfg.engine.measurement != MeasurementMode::Analytic {
        return Err(EngineError::SnapshotRequiresAnalytic);
    }
    let fp = snap.fingerprint.clone();
    let mut scratch = EngineScratch::new();
    match snap.phase {
        RunPhase::Strategy => {
            let run = with_campaign_window(cfg, |profiles, window| {
                let mut emit = |state: LoopState| {
                    sink(&EngineSnapshot {
                        fingerprint: fp.clone(),
                        scope: SnapshotScope::Campaign(cfg.clone()),
                        phase: RunPhase::Strategy,
                        main_carry: None,
                        state,
                    });
                };
                run_window_resumable(
                    &cfg.engine,
                    cfg.engine.strategy,
                    profiles,
                    window,
                    Some(snap.state),
                    every_epochs,
                    &mut emit,
                    &mut scratch,
                    &mut NoHooks,
                )
                .0
            });
            finish_campaign(cfg, &fp, run, None, every_epochs, sink, &mut scratch)
        }
        RunPhase::Baseline => {
            let carry = snap.main_carry.ok_or_else(|| {
                EngineError::SnapshotMismatch(
                    "baseline-phase snapshot is missing the finished strategy run".to_string(),
                )
            })?;
            finish_campaign(
                cfg,
                &fp,
                carry.outcome,
                Some(snap.state),
                every_epochs,
                sink,
                &mut scratch,
            )
        }
    }
}

/// Run (or resume) the campaign's Normal-baseline pass with snapshotting
/// and assemble the final outcome. Baseline snapshots carry the finished
/// strategy run so a resume from one still has everything.
#[allow(clippy::too_many_arguments)]
fn finish_campaign(
    cfg: &CampaignConfig,
    fp: &str,
    run: BurstOutcome,
    baseline_resume: Option<LoopState>,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
    scratch: &mut EngineScratch,
) -> Result<CampaignOutcome, EngineError> {
    let normal = with_campaign_window(cfg, |profiles, window| {
        let mut emit = |state: LoopState| {
            sink(&EngineSnapshot {
                fingerprint: fp.to_string(),
                scope: SnapshotScope::Campaign(cfg.clone()),
                phase: RunPhase::Baseline,
                main_carry: Some(MainCarry {
                    outcome: run.clone(),
                    monitor: None,
                    policy: None,
                }),
                state,
            });
        };
        run_window_resumable(
            &cfg.engine,
            Strategy::Normal,
            profiles,
            window,
            baseline_resume,
            every_epochs,
            &mut emit,
            scratch,
            &mut NoHooks,
        )
        .0
    });
    Ok(assemble_outcome(cfg, run, &normal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GreenConfig;
    use crate::engine::MeasurementMode;

    fn campaign(strategy: Strategy) -> CampaignOutcome {
        let cfg = CampaignConfig {
            engine: EngineConfig {
                strategy,
                green: GreenConfig::re_batt(),
                measurement: MeasurementMode::Analytic,
                seed: 3,
                ..EngineConfig::default()
            },
            days: 1,
            spikes_per_day: 3,
            peak_intensity_cores: 12,
        };
        run_campaign(&cfg)
    }

    #[test]
    fn hybrid_campaign_sprints_and_outperforms_normal() {
        let out = campaign(Strategy::Hybrid);
        assert!(out.sprint_hours > 0.5, "sprint hours {}", out.sprint_hours);
        assert!(out.sprint_hours < 24.0);
        assert!(
            out.goodput_vs_normal > 1.3,
            "gain {}",
            out.goodput_vs_normal
        );
        assert!(out.sprint_server_hours >= out.sprint_hours);
        // Extrapolation is consistent.
        assert!((out.sprint_hours_per_year - out.sprint_hours * 365.0).abs() < 1e-6);
    }

    #[test]
    fn normal_campaign_never_sprints() {
        let out = campaign(Strategy::Normal);
        assert_eq!(out.sprint_hours, 0.0);
        assert!((out.goodput_vs_normal - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a_single_day_of_real_load_clears_the_tco_crossover() {
        // The paper's punchline: break-even is ~14 sprint-hours a year; a
        // bursty interactive service generates that in days.
        let out = campaign(Strategy::Hybrid);
        let tco = gs_tco::TcoParams::paper();
        assert!(
            out.sprint_hours_per_year > tco.crossover_hours(),
            "{} h/yr vs crossover {}",
            out.sprint_hours_per_year,
            tco.crossover_hours()
        );
    }

    #[test]
    fn batteries_grid_recharge_in_the_overnight_valley() {
        // After daytime sprinting drains the packs, the diurnal trough
        // (offered load below Normal capacity, zero sun) lets the paper's
        // case-3 grid recharge run — visible as SoC climbing through
        // epochs with no renewable supply.
        let out = campaign(Strategy::Hybrid);
        let recharged_in_the_dark = out.run.epochs.windows(2).any(|w| {
            w[1].re_supply_w < 1.0
                && w[1].battery_soc > w[0].battery_soc + 1e-4
                && !w[1].setting.is_sprinting()
        });
        assert!(recharged_in_the_dark, "no overnight grid recharge observed");
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_zero_days() {
        let cfg = CampaignConfig {
            days: 0,
            ..CampaignConfig::default()
        };
        run_campaign(&cfg);
    }

    #[test]
    fn campaign_snapshot_resume_is_byte_identical() {
        let cfg = CampaignConfig {
            engine: EngineConfig {
                strategy: Strategy::Hybrid,
                green: GreenConfig::re_batt(),
                measurement: MeasurementMode::Analytic,
                seed: 3,
                ..EngineConfig::default()
            },
            days: 1,
            spikes_per_day: 3,
            peak_intensity_cores: 12,
        };
        let want = serde_json::to_string(&try_run_campaign(&cfg).unwrap()).unwrap();

        let mut snaps = Vec::new();
        let direct =
            try_run_campaign_with_snapshots(&cfg, 500, &mut |s| snaps.push(s.clone())).unwrap();
        assert_eq!(serde_json::to_string(&direct).unwrap(), want);
        assert!(snaps.iter().any(|s| s.phase == RunPhase::Strategy));
        assert!(snaps.iter().any(|s| s.phase == RunPhase::Baseline));

        // Resume once from each phase, through the on-disk JSON form.
        let picks = [
            snaps
                .iter()
                .find(|s| s.phase == RunPhase::Strategy)
                .unwrap(),
            snaps
                .iter()
                .rfind(|s| s.phase == RunPhase::Baseline)
                .unwrap(),
        ];
        for snap in picks {
            let snap = EngineSnapshot::from_json(&snap.to_json()).unwrap();
            match crate::engine::resume_snapshot(snap, 0, &mut |_| {}).unwrap() {
                crate::engine::ResumedRun::Campaign(out) => {
                    assert_eq!(serde_json::to_string(&out).unwrap(), want);
                }
                other => panic!("expected a campaign, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_run_campaign_reports_instead_of_panicking() {
        let cfg = CampaignConfig {
            days: 0,
            ..CampaignConfig::default()
        };
        assert_eq!(try_run_campaign(&cfg).unwrap_err(), EngineError::ZeroDays);

        let mut cfg = CampaignConfig::default();
        cfg.engine.warm_policy_json = Some("not json".to_string());
        assert!(matches!(
            try_run_campaign(&cfg).unwrap_err(),
            EngineError::InvalidWarmPolicy(_)
        ));
    }

    #[test]
    fn campaigns_reject_degenerate_engine_configs_too() {
        let mut cfg = CampaignConfig::default();
        cfg.engine.green.green_servers = 0;
        assert_eq!(cfg.validate().unwrap_err(), EngineError::ZeroServers);

        let mut cfg = CampaignConfig::default();
        cfg.engine.switch_hysteresis = f64::NAN;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            EngineError::InvalidThreshold(_)
        ));
    }
}
