//! Long-horizon campaigns: days of diurnal operation instead of one
//! controlled burst.
//!
//! The paper's TCO argument (§IV-F) prices green provisioning against the
//! *yearly hours of sprinting* a real workload generates — breaking even
//! near 14 h/year. A campaign runs the controller against the Google-style
//! diurnal load curve of Fig. 1 (daily plateau plus flash spikes) under
//! generated weather for multiple days, counts sprint hours, and
//! extrapolates them to a year so [`gs_tco`]-style models can be fed with
//! *measured* sprint activity instead of an assumption.

use crate::engine::{run_window, BurstOutcome, EngineConfig, EngineError, RunWindow};
use crate::pmk::Strategy;
use crate::profiler::ProfileTable;
use gs_cluster::{ServerSetting, NUM_FREQ_LEVELS};
use gs_power::solar::{SolarTrace, WeatherModel};
use gs_sim::{SimDuration, SimRng, SimTime};
use gs_workload::arrivals::DiurnalTrace;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-day campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignConfig {
    /// The burst-level engine configuration supplying app, provisioning,
    /// strategy, epoch, measurement, thermal model, and seed. Its burst
    /// fields (`availability`, `burst_duration`, `burst_intensity_cores`,
    /// `burst_start_hour`) are ignored — the campaign provides its own
    /// load and sky.
    pub engine: EngineConfig,
    /// Days of operation.
    pub days: u32,
    /// Daily flash spikes in the diurnal load (paper Fig. 1 shows several).
    pub spikes_per_day: u32,
    /// Peak offered load as a core-equivalent intensity (12 = the paper's
    /// saturating `Int=12`).
    pub peak_intensity_cores: u8,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            engine: EngineConfig::default(),
            days: 3,
            spikes_per_day: 4,
            peak_intensity_cores: 12,
        }
    }
}

/// What a campaign produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Days simulated.
    pub days: u32,
    /// Server-hours of sprinting (sum over green servers).
    pub sprint_server_hours: f64,
    /// Wall-clock hours during which at least one server sprinted.
    pub sprint_hours: f64,
    /// Extrapolation of `sprint_hours` to a 365-day year.
    pub sprint_hours_per_year: f64,
    /// Total goodput relative to a Normal-mode run of the same days.
    pub goodput_vs_normal: f64,
    /// The underlying strategy-run outcome (energy accounting etc.).
    pub run: BurstOutcome,
}

impl CampaignConfig {
    /// Validate this configuration without running it.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.days < 1 {
            return Err(EngineError::ZeroDays);
        }
        self.engine.validate_base()
    }
}

/// Run a campaign: the configured strategy plus a Normal baseline over
/// identical load and weather. Panics on an invalid configuration; see
/// [`try_run_campaign`] for the reporting variant.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    try_run_campaign(cfg).unwrap_or_else(|e| panic!("invalid campaign configuration: {e}"))
}

/// As [`run_campaign`], surfacing configuration errors instead of
/// panicking — for callers handling untrusted input (the CLI).
pub fn try_run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, EngineError> {
    cfg.validate()?;
    let profiles = ProfileTable::cached(cfg.engine.app);
    let app = cfg.engine.app.profile();

    let mut rng = SimRng::seed_from_u64(cfg.engine.seed ^ 0xCA3A_16E5);
    let load = DiurnalTrace::generate(cfg.days, cfg.spikes_per_day, &mut rng);
    let sky = SolarTrace::generate(cfg.days, &WeatherModel::default(), &mut rng);
    let peak_rps = app.slo_capacity(ServerSetting::new(
        cfg.peak_intensity_cores,
        (NUM_FREQ_LEVELS - 1) as u8,
    ));
    let offered = move |t: SimTime| load.offered_rps(t, peak_rps);

    let window = RunWindow {
        offered_rps: &offered,
        trace: &sky,
        start: SimTime::ZERO,
        duration: SimDuration::from_hours(cfg.days as u64 * 24),
    };
    let (run, _) = run_window(&cfg.engine, cfg.engine.strategy, profiles, &window);
    let (normal, _) = run_window(&cfg.engine, Strategy::Normal, profiles, &window);

    let epoch_hours = cfg.engine.epoch.as_hours_f64();
    let sprint_server_hours: f64 = run
        .epochs
        .iter()
        .map(|e| e.sprinting_servers as f64 * epoch_hours)
        .sum();
    let sprint_hours: f64 = run
        .epochs
        .iter()
        .filter(|e| e.sprinting_servers > 0)
        .count() as f64
        * epoch_hours;
    let goodput_vs_normal = if normal.mean_goodput_rps > 0.0 {
        run.mean_goodput_rps / normal.mean_goodput_rps
    } else {
        1.0
    };
    Ok(CampaignOutcome {
        days: cfg.days,
        sprint_server_hours,
        sprint_hours,
        sprint_hours_per_year: sprint_hours * 365.0 / cfg.days as f64,
        goodput_vs_normal,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GreenConfig;
    use crate::engine::MeasurementMode;

    fn campaign(strategy: Strategy) -> CampaignOutcome {
        let cfg = CampaignConfig {
            engine: EngineConfig {
                strategy,
                green: GreenConfig::re_batt(),
                measurement: MeasurementMode::Analytic,
                seed: 3,
                ..EngineConfig::default()
            },
            days: 1,
            spikes_per_day: 3,
            peak_intensity_cores: 12,
        };
        run_campaign(&cfg)
    }

    #[test]
    fn hybrid_campaign_sprints_and_outperforms_normal() {
        let out = campaign(Strategy::Hybrid);
        assert!(out.sprint_hours > 0.5, "sprint hours {}", out.sprint_hours);
        assert!(out.sprint_hours < 24.0);
        assert!(
            out.goodput_vs_normal > 1.3,
            "gain {}",
            out.goodput_vs_normal
        );
        assert!(out.sprint_server_hours >= out.sprint_hours);
        // Extrapolation is consistent.
        assert!((out.sprint_hours_per_year - out.sprint_hours * 365.0).abs() < 1e-6);
    }

    #[test]
    fn normal_campaign_never_sprints() {
        let out = campaign(Strategy::Normal);
        assert_eq!(out.sprint_hours, 0.0);
        assert!((out.goodput_vs_normal - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a_single_day_of_real_load_clears_the_tco_crossover() {
        // The paper's punchline: break-even is ~14 sprint-hours a year; a
        // bursty interactive service generates that in days.
        let out = campaign(Strategy::Hybrid);
        let tco = gs_tco::TcoParams::paper();
        assert!(
            out.sprint_hours_per_year > tco.crossover_hours(),
            "{} h/yr vs crossover {}",
            out.sprint_hours_per_year,
            tco.crossover_hours()
        );
    }

    #[test]
    fn batteries_grid_recharge_in_the_overnight_valley() {
        // After daytime sprinting drains the packs, the diurnal trough
        // (offered load below Normal capacity, zero sun) lets the paper's
        // case-3 grid recharge run — visible as SoC climbing through
        // epochs with no renewable supply.
        let out = campaign(Strategy::Hybrid);
        let recharged_in_the_dark = out.run.epochs.windows(2).any(|w| {
            w[1].re_supply_w < 1.0
                && w[1].battery_soc > w[0].battery_soc + 1e-4
                && !w[1].setting.is_sprinting()
        });
        assert!(recharged_in_the_dark, "no overnight grid recharge observed");
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_zero_days() {
        let cfg = CampaignConfig {
            days: 0,
            ..CampaignConfig::default()
        };
        run_campaign(&cfg);
    }

    #[test]
    fn try_run_campaign_reports_instead_of_panicking() {
        let cfg = CampaignConfig {
            days: 0,
            ..CampaignConfig::default()
        };
        assert_eq!(try_run_campaign(&cfg).unwrap_err(), EngineError::ZeroDays);

        let mut cfg = CampaignConfig::default();
        cfg.engine.warm_policy_json = Some("not json".to_string());
        assert!(matches!(
            try_run_campaign(&cfg).unwrap_err(),
            EngineError::InvalidWarmPolicy(_)
        ));
    }
}
