//! Crash-safe checkpointing: a write-ahead journal for sweep results and
//! serializable mid-run engine snapshots.
//!
//! Two durability mechanisms, for the two shapes of long work:
//!
//! * **Journal** — a JSON-lines write-ahead log of completed
//!   [`SweepResult`]s. The first line is a [`JournalHeader`] carrying the
//!   master seed, a digest of the point list, the full point list itself
//!   (so `greensprint resume FILE` needs no flags re-specified), and a
//!   code/config fingerprint. Every append is fsync'd before the executor
//!   moves on, so a SIGKILL loses at most the record being written — and
//!   reload tolerates exactly that: an unparseable *final* line is treated
//!   as a truncated tail and dropped; garbage anywhere earlier is
//!   corruption and a hard error.
//! * **Snapshot** — the full serializable controller state of a running
//!   engine window ([`LoopState`]: Monitor history, predictor EWMAs,
//!   Q-table, battery state, fault cursor, RNG stream position, meters),
//!   wrapped with enough context ([`EngineSnapshot`]) to resume the run
//!   and finish with output byte-identical to the uninterrupted run.
//!
//! Snapshots embed a [`fingerprint`] of the crate version, a schema tag,
//! and the originating configuration; resume refuses a snapshot whose
//! fingerprint no longer matches, instead of silently continuing a run
//! whose physics changed underneath it.

use crate::campaign::CampaignConfig;
use crate::engine::{BurstOutcome, EngineConfig, EpochRecord};
use crate::monitor::Monitor;
use crate::pmk::ActuationWatchdog;
use crate::predictor::{ClearSkyIndexedPredictor, Predictor};
use crate::qlearning::{QLearner, QState};
use crate::sweep::{SweepPoint, SweepResult};
use gs_cluster::ServerSetting;
use gs_power::battery::Battery;
use gs_power::meter::PowerMeter;
use gs_power::pss::SafeSupplyEstimator;
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Bump when the serialized shape of [`LoopState`] / [`JournalHeader`]
/// changes incompatibly; old checkpoints then fail the fingerprint check
/// instead of deserializing into nonsense.
pub const CHECKPOINT_SCHEMA: &str = "gs-ckpt-1";

/// As [`CHECKPOINT_SCHEMA`], for datacenter (broker + per-rack) snapshots
/// — bumped when [`crate::broker::BrokerState`] or [`LoopState`] changes
/// incompatibly.
pub const DC_CHECKPOINT_SCHEMA: &str = "gs-dc-ckpt-1";

/// FNV-1a over the given parts, rendered as a compact hex tag.
pub fn fingerprint(parts: &[&str]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separate the parts so ("ab","c") != ("a","bc").
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The compatibility fingerprint a checkpoint is stamped with: schema tag,
/// crate version, and the JSON of the configuration that produced it. A
/// resume across a code or config change fails fast.
pub fn config_fingerprint(cfg_json: &str) -> String {
    fingerprint(&[CHECKPOINT_SCHEMA, env!("CARGO_PKG_VERSION"), cfg_json])
}

/// Digest of a sweep's point list, stored in the journal header so resume
/// can verify it is continuing the same grid.
pub fn points_digest(points: &[SweepPoint]) -> String {
    let json = serde_json::to_string(&points).expect("sweep points serialize");
    fingerprint(&[&json])
}

// ---------------------------------------------------------------------------
// Engine snapshots
// ---------------------------------------------------------------------------

/// Every piece of mutable state the scheduling-epoch loop carries across
/// epochs. Capturing it at an epoch boundary and restoring it later
/// continues the run exactly — same RNG stream, same learner, same
/// batteries, same accumulated records — so the final outcome is
/// byte-identical to the uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopState {
    /// The next epoch index to execute.
    pub next_epoch: u64,
    /// RNG stream position.
    pub rng: SimRng,
    /// Battery packs (charge state and wear).
    pub batteries: Vec<Option<Battery>>,
    /// Per-battery grid-recharge latches.
    pub grid_recharging: Vec<bool>,
    /// Grid energy already spent on in-burst recharge (Wh).
    pub in_burst_grid_recharge_wh: f64,
    /// The paper's EWMA predictor state.
    pub predictor: Predictor,
    /// The clear-sky-indexed predictor state.
    pub cs_predictor: ClearSkyIndexedPredictor,
    /// Hybrid's Q-table, if the strategy carries one.
    pub learner: Option<QLearner>,
    /// Hybrid's pending (state, action) awaiting its Bellman update.
    pub pending_q: Option<(QState, ServerSetting)>,
    /// Last epoch's applied settings (hysteresis and actuation faults).
    pub prev_settings: Vec<ServerSetting>,
    /// Knob transitions so far.
    pub setting_transitions: usize,
    /// Which battery-fade fault events have already applied.
    pub fade_done: Vec<bool>,
    /// Commanded-vs-observed actuation watchdog state.
    pub watchdog: ActuationWatchdog,
    /// Safe-mode supply estimator state.
    pub safe_supply: SafeSupplyEstimator,
    /// The telemetry one-epoch delay line.
    pub last_raw_obs_w: Option<f64>,
    /// Epochs with an active fault so far.
    pub fault_epochs: usize,
    /// Epochs planned in safe mode so far.
    pub safe_mode_epochs: usize,
    /// Epochs with a watchdog clamp so far.
    pub watchdog_clamped_epochs: usize,
    /// Energy meters.
    pub meter: PowerMeter,
    /// Monitor observation streams.
    pub monitor: Monitor,
    /// Per-epoch records so far.
    pub epochs: Vec<EpochRecord>,
    /// Goodput accumulator.
    pub goodput_sum: f64,
    /// Offered-load accumulator.
    pub offered_sum: f64,
    /// Cumulative believed renewable supply (planner mean).
    pub re_sum_w: f64,
    /// Thermal package states.
    pub thermals: Vec<gs_thermal::ThermalPackage>,
    /// Epochs with a thermal throttle so far.
    pub thermal_throttle_epochs: usize,
    /// Hottest temperature seen so far (°C).
    pub peak_temp_c: f64,
    /// Invariant-auditor violations so far.
    pub audit_violations: Vec<String>,
    /// Grid energy already audited (Wh).
    pub audited_grid_wh: f64,
    /// Curtailed energy already audited (Wh).
    pub audited_curtailed_wh: f64,
    /// Guardrail ladder/probation state, when the guardrail is enabled.
    /// Absent in pre-guardrail snapshots.
    #[serde(default)]
    pub guardrail: Option<crate::guardrail::GuardrailState>,
    /// Per-server remaining crash-outage epochs (fleet faults).
    #[serde(default)]
    pub down_left: Vec<u32>,
    /// Per-server consecutive-healthy-epoch streaks (rejoin hysteresis).
    #[serde(default)]
    pub health_streak: Vec<u32>,
    /// Server-epochs spent dead so far.
    #[serde(default)]
    pub dead_server_epochs: usize,
    /// Server-epochs spent straggling so far.
    #[serde(default)]
    pub straggler_epochs: usize,
    /// Smallest live-fleet size seen so far (the engine clamps it to the
    /// fleet size on restore).
    #[serde(default)]
    pub min_live_servers: usize,
    /// Human-readable fleet crash/flap/rejoin log.
    #[serde(default)]
    pub fleet_events: Vec<String>,
}

/// Which of the two runs inside an experiment the snapshot was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunPhase {
    /// The strategy-under-test run.
    Strategy,
    /// The Normal-baseline run (the strategy run already finished).
    Baseline,
}

/// The finished strategy run, carried inside baseline-phase snapshots so
/// resume can still assemble the final normalized outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MainCarry {
    /// The strategy run's raw outcome (not yet normalized to Normal).
    pub outcome: BurstOutcome,
    /// The strategy run's Monitor streams (bursts carry them; campaigns
    /// drop them).
    pub monitor: Option<Monitor>,
    /// The strategy run's exported policy, if any.
    pub policy: Option<String>,
}

/// What kind of experiment the snapshot belongs to, with its full
/// configuration embedded — `greensprint resume FILE` needs nothing else.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SnapshotScope {
    /// A single controlled burst.
    Burst(EngineConfig),
    /// A multi-day campaign.
    Campaign(CampaignConfig),
}

/// A resumable mid-run checkpoint of a burst or campaign experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// [`config_fingerprint`] of the embedded configuration at capture
    /// time; resume recomputes and compares.
    pub fingerprint: String,
    /// The experiment this snapshot belongs to.
    pub scope: SnapshotScope,
    /// Which run inside the experiment was in flight.
    pub phase: RunPhase,
    /// The finished strategy run, when `phase` is [`RunPhase::Baseline`].
    pub main_carry: Option<MainCarry>,
    /// The captured loop state.
    pub state: LoopState,
}

impl EngineSnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parse a snapshot from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// The fingerprint the embedded configuration produces *now* — equal
    /// to `self.fingerprint` iff code and config still match.
    pub fn expected_fingerprint(&self) -> String {
        let cfg_json = match &self.scope {
            SnapshotScope::Burst(cfg) => serde_json::to_string(cfg),
            SnapshotScope::Campaign(cfg) => serde_json::to_string(cfg),
        }
        .expect("config serializes");
        config_fingerprint(&cfg_json)
    }
}

// ---------------------------------------------------------------------------
// The write-ahead sweep journal
// ---------------------------------------------------------------------------

/// First line of a journal file: what sweep this is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalHeader {
    /// File-format tag.
    pub magic: String,
    /// Compatibility fingerprint ([`config_fingerprint`] of the serialized
    /// point list).
    pub fingerprint: String,
    /// `"sweep"` or `"chaos"` — which CLI mode wrote it.
    pub mode: String,
    /// The sweep's master seed (per-task seeds derive from it).
    pub master_seed: u64,
    /// [`points_digest`] of `points`.
    pub points_digest: String,
    /// The full point list, embedded so resume is self-contained.
    pub points: Vec<SweepPoint>,
}

/// The magic tag identifying a journal file.
pub const JOURNAL_MAGIC: &str = "greensprint-journal";

impl JournalHeader {
    /// Build a header for a sweep about to run.
    pub fn new(mode: &str, master_seed: u64, points: Vec<SweepPoint>) -> Self {
        let points_json = serde_json::to_string(&points).expect("sweep points serialize");
        JournalHeader {
            magic: JOURNAL_MAGIC.to_string(),
            fingerprint: config_fingerprint(&points_json),
            mode: mode.to_string(),
            master_seed,
            points_digest: points_digest(&points),
            points,
        }
    }
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// The file is not a journal (bad or missing header).
    NotAJournal(String),
    /// A record *before* the final line failed to parse — truncation can
    /// only eat the tail, so this is corruption, not a crash artifact.
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The journal belongs to a different sweep than the caller expected.
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal(m) => write!(f, "not a greensprint journal: {m}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            JournalError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A journal parsed back from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The header line.
    pub header: JournalHeader,
    /// Every intact result record, in file (completion) order.
    pub results: Vec<SweepResult>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// True when a truncated final line was dropped.
    pub dropped_tail: bool,
}

impl LoadedJournal {
    /// Indices of the points that already have a journaled result.
    pub fn completed_indices(&self) -> std::collections::HashSet<usize> {
        self.results.iter().map(|r| r.index).collect()
    }
}

/// An open, append-only journal. Every append is flushed and fsync'd
/// before returning: once `append` comes back, that record survives a
/// SIGKILL.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create a fresh journal at `path` (truncating anything there),
    /// writing and fsyncing the header line.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Journal, JournalError> {
        let mut file = File::create(path)?;
        let line = serde_json::to_string(header).expect("journal header serializes");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Parse the journal at `path` without modifying it.
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        let text = String::from_utf8_lossy(&raw);

        let mut results = Vec::new();
        let mut header: Option<JournalHeader> = None;
        let mut valid_len = 0u64;
        let mut dropped_tail = false;

        // Walk newline-terminated segments; a final segment without its
        // newline is by definition the interrupted tail.
        let mut offset = 0usize;
        let mut line_no = 0usize;
        let mut segments = text.split_inclusive('\n').peekable();
        while let Some(seg) = segments.next() {
            line_no += 1;
            let is_last = segments.peek().is_none();
            let complete = seg.ends_with('\n');
            let body = seg.trim_end_matches(['\n', '\r']);
            if body.is_empty() {
                offset += seg.len();
                if complete {
                    valid_len = offset as u64;
                }
                continue;
            }
            if line_no == 1 {
                let h: JournalHeader = serde_json::from_str(body)
                    .map_err(|e| JournalError::NotAJournal(e.to_string()))?;
                if h.magic != JOURNAL_MAGIC {
                    return Err(JournalError::NotAJournal(format!(
                        "unexpected magic {:?}",
                        h.magic
                    )));
                }
                if !complete {
                    return Err(JournalError::NotAJournal(
                        "header line is truncated".to_string(),
                    ));
                }
                header = Some(h);
                offset += seg.len();
                valid_len = offset as u64;
                continue;
            }
            match serde_json::from_str::<SweepResult>(body) {
                Ok(r) if complete => {
                    results.push(r);
                    offset += seg.len();
                    valid_len = offset as u64;
                }
                Ok(_) => {
                    // Parsed, but the newline never landed — the append
                    // was cut between its two writes. Appending after it
                    // would corrupt the line, so drop and re-run it.
                    dropped_tail = true;
                }
                Err(e) if is_last => {
                    // The crash artifact the journal is designed for.
                    dropped_tail = true;
                    let _ = e;
                }
                Err(e) => {
                    return Err(JournalError::Corrupt {
                        line: line_no,
                        message: e.to_string(),
                    });
                }
            }
        }

        let header = header
            .ok_or_else(|| JournalError::NotAJournal("empty file (no header)".to_string()))?;
        Ok(LoadedJournal {
            header,
            results,
            valid_len,
            dropped_tail,
        })
    }

    /// Reopen an existing journal for appending: parse it, truncate any
    /// damaged tail, and return the loaded state alongside the open
    /// handle.
    pub fn resume(path: &Path) -> Result<(Journal, LoadedJournal), JournalError> {
        let loaded = Self::load(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(loaded.valid_len)?;
        file.seek(std::io::SeekFrom::End(0))?;
        file.sync_data()?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            loaded,
        ))
    }

    /// Append one result record durably (write + fsync).
    pub fn append(&mut self, result: &SweepResult) -> Result<(), JournalError> {
        let line = serde_json::to_string(result).expect("sweep result serializes");
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::MeasurementMode;
    use crate::pmk::Strategy;
    use crate::sweep::{derive_seed, run_sweep};
    use gs_sim::SimDuration;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gs-journal-{}-{name}", std::process::id()))
    }

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                SweepPoint::burst(
                    format!("p{i}"),
                    EngineConfig {
                        strategy: Strategy::Greedy,
                        green: GreenConfig::re_batt(),
                        availability: AvailabilityLevel::Medium,
                        burst_duration: SimDuration::from_mins(5),
                        measurement: MeasurementMode::Analytic,
                        ..EngineConfig::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn fingerprint_separates_parts_and_is_stable() {
        assert_eq!(fingerprint(&["a", "b"]), fingerprint(&["a", "b"]));
        assert_ne!(fingerprint(&["ab"]), fingerprint(&["a", "b"]));
        assert_ne!(fingerprint(&["a", "bc"]), fingerprint(&["ab", "c"]));
    }

    #[test]
    fn journal_round_trips() {
        let path = tmp("roundtrip");
        let pts = points(3);
        let results = run_sweep(pts.clone(), 7, 2);
        let header = JournalHeader::new("sweep", 7, pts);
        let mut j = Journal::create(&path, &header).unwrap();
        for r in &results {
            j.append(r).unwrap();
        }
        drop(j);

        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.header.master_seed, 7);
        assert_eq!(loaded.header.mode, "sweep");
        assert_eq!(
            loaded.header.points_digest,
            points_digest(&loaded.header.points)
        );
        assert!(!loaded.dropped_tail);
        assert_eq!(
            serde_json::to_string(&loaded.results).unwrap(),
            serde_json::to_string(&results).unwrap()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_resume_truncates_the_file() {
        let path = tmp("tail");
        let pts = points(2);
        let results = run_sweep(pts.clone(), 7, 1);
        let mut j = Journal::create(&path, &JournalHeader::new("sweep", 7, pts)).unwrap();
        for r in &results {
            j.append(r).unwrap();
        }
        drop(j);

        // Simulate a SIGKILL mid-append: chop the last record in half.
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() - 37;
        std::fs::write(&path, &full[..cut]).unwrap();

        let loaded = Journal::load(&path).unwrap();
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.results.len(), 1);
        assert_eq!(loaded.completed_indices().len(), 1);

        // Resume truncates the damage; the journal is appendable again.
        let (mut j, loaded) = Journal::resume(&path).unwrap();
        assert_eq!(loaded.results.len(), 1);
        j.append(&results[1]).unwrap();
        drop(j);
        let reloaded = Journal::load(&path).unwrap();
        assert!(!reloaded.dropped_tail);
        assert_eq!(
            serde_json::to_string(&reloaded.results).unwrap(),
            serde_json::to_string(&results).unwrap()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let path = tmp("corrupt");
        let pts = points(2);
        let results = run_sweep(pts.clone(), 7, 1);
        let mut j = Journal::create(&path, &JournalHeader::new("sweep", 7, pts)).unwrap();
        for r in &results {
            j.append(r).unwrap();
        }
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{mangled";
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        match Journal::load(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_journal_files_are_rejected() {
        let path = tmp("notjournal");
        std::fs::write(&path, "just some text\n").unwrap();
        assert!(matches!(
            Journal::load(&path),
            Err(JournalError::NotAJournal(_))
        ));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            Journal::load(&path),
            Err(JournalError::NotAJournal(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn derive_seed_matches_journal_expectations() {
        // The journal stores the master seed; re-derivation must give the
        // same per-task seeds the original run used.
        let pts = points(3);
        let results = run_sweep(pts, 99, 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seed, derive_seed(99, i as u64));
        }
    }
}
