//! The Predictor (paper Fig. 3 / Eq. 1).
//!
//! Two EWMA filters with the paper's α = 0.3: one over the observed
//! renewable power production, one over the observed workload intensity.
//! "Most solar prediction algorithms are accurate when weather conditions
//! are stable" — the EWMA leans toward the most recent observation.

use gs_power::solar::WeatherModel;
use gs_sim::{Ewma, SimTime};
use serde::{Deserialize, Serialize};

/// Per stale epoch, [`Predictor::re_supply_conservative`] widens its
/// pessimism by this factor — matching the PSS safe-mode decay so both
/// layers degrade in step.
pub const STALENESS_DECAY: f64 = 0.8;

/// EWMA predictor for renewable supply and workload intensity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Predictor {
    re_supply: Ewma,
    workload: Ewma,
    /// Consecutive epochs the supply signal has been stale (no verified
    /// observation fed). Absent in pre-fault serialized predictors.
    #[serde(default)]
    stale_epochs: u32,
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor {
    /// A predictor with the paper's α = 0.3 on both signals.
    pub fn new() -> Self {
        Predictor {
            re_supply: Ewma::paper_default(),
            workload: Ewma::paper_default(),
            stale_epochs: 0,
        }
    }

    /// A predictor with a custom α (ablation experiments).
    pub fn with_alpha(alpha: f64) -> Self {
        Predictor {
            re_supply: Ewma::new(alpha),
            workload: Ewma::new(alpha),
            stale_epochs: 0,
        }
    }

    /// Feed the epoch's observed renewable production (W); returns the
    /// prediction for the next epoch. A verified observation ends any
    /// staleness streak.
    pub fn observe_re_supply(&mut self, watts: f64) -> f64 {
        self.stale_epochs = 0;
        self.re_supply.observe(watts)
    }

    /// Note an epoch with no verified supply observation: the EWMA holds
    /// its last-good state, and conservative predictions widen.
    pub fn mark_re_stale(&mut self) {
        self.stale_epochs = self.stale_epochs.saturating_add(1);
    }

    /// Consecutive epochs the supply signal has been stale.
    pub fn re_stale_epochs(&self) -> u32 {
        self.stale_epochs
    }

    /// Feed the epoch's observed workload intensity (req/s); returns the
    /// prediction for the next epoch.
    pub fn observe_workload(&mut self, rps: f64) -> f64 {
        self.workload.observe(rps)
    }

    /// Predicted renewable supply for the next epoch (`fallback` before
    /// any observation).
    pub fn re_supply_w(&self, fallback: f64) -> f64 {
        self.re_supply.prediction_or(fallback)
    }

    /// The staleness-widened supply prediction: the last-good EWMA value
    /// discounted by [`STALENESS_DECAY`] per epoch without a verified
    /// observation. Equals [`Predictor::re_supply_w`] when fresh.
    pub fn re_supply_conservative(&self, fallback: f64) -> f64 {
        self.re_supply_w(fallback) * STALENESS_DECAY.powi(self.stale_epochs as i32)
    }

    /// Predicted workload intensity for the next epoch.
    pub fn workload_rps(&self, fallback: f64) -> f64 {
        self.workload.prediction_or(fallback)
    }
}

/// A clear-sky-indexed solar predictor — the standard upgrade over a raw
/// EWMA in solar forecasting, and an extension beyond the paper.
///
/// Raw EWMA lags the deterministic part of the signal: at dawn and dusk
/// the sun ramps predictably, yet the filter only sees "yesterday's
/// value". Indexing fixes that: smooth the *clear-sky index*
/// `observed / clear_sky(t)` (the stochastic cloud attenuation) and
/// multiply the smoothed index back onto the known clear-sky curve at the
/// prediction time. Under stable weather the index is nearly constant, so
/// the ramp is predicted almost exactly — the regime the paper notes
/// "most solar prediction algorithms are accurate" in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClearSkyIndexedPredictor {
    index: Ewma,
    sky: WeatherModel,
    /// Peak AC watts the clear-sky curve scales to.
    peak_w: f64,
}

impl ClearSkyIndexedPredictor {
    /// A predictor for an array with the given peak AC output, using the
    /// paper's α = 0.3 on the cloud index.
    pub fn new(peak_w: f64) -> Self {
        ClearSkyIndexedPredictor {
            index: Ewma::paper_default(),
            sky: WeatherModel::default(),
            peak_w,
        }
    }

    fn clear_sky_w(&self, t: SimTime) -> f64 {
        self.peak_w * self.sky.clear_sky(t.hour_of_day())
    }

    /// Feed the production observed over the epoch that *ended* at `t`.
    pub fn observe(&mut self, t: SimTime, watts: f64) {
        let cs = self.clear_sky_w(t);
        if cs > 1.0 {
            self.index.observe((watts / cs).clamp(0.0, 1.2));
        }
        // At night there is no index information; keep the last estimate.
    }

    /// Predicted production (W) for the epoch starting at `t`.
    pub fn predict_w(&self, t: SimTime) -> f64 {
        self.clear_sky_w(t) * self.index.prediction_or(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_constant_signals_exactly() {
        let mut p = Predictor::new();
        for _ in 0..20 {
            p.observe_re_supply(400.0);
            p.observe_workload(50.0);
        }
        assert!((p.re_supply_w(0.0) - 400.0).abs() < 1e-6);
        assert!((p.workload_rps(0.0) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn fallbacks_before_observations() {
        let p = Predictor::new();
        assert_eq!(p.re_supply_w(123.0), 123.0);
        assert_eq!(p.workload_rps(7.0), 7.0);
    }

    #[test]
    fn reacts_quickly_with_paper_alpha() {
        // α = 0.3 weights the new observation at 0.7: a supply collapse is
        // mostly reflected after a single epoch.
        let mut p = Predictor::new();
        p.observe_re_supply(600.0);
        let after = p.observe_re_supply(0.0);
        assert!(after < 600.0 * 0.35, "after={after}");
    }

    #[test]
    fn custom_alpha_smooths_more() {
        let mut fast = Predictor::new();
        let mut slow = Predictor::with_alpha(0.9);
        fast.observe_re_supply(600.0);
        slow.observe_re_supply(600.0);
        fast.observe_re_supply(0.0);
        slow.observe_re_supply(0.0);
        assert!(slow.re_supply_w(0.0) > fast.re_supply_w(0.0));
    }

    #[test]
    fn clear_sky_indexing_beats_raw_ewma_on_the_ramp() {
        use gs_power::solar::{PvArray, SolarTrace};
        // A clear day: the raw EWMA lags the morning ramp, the indexed
        // predictor rides it.
        let trace = SolarTrace::clear_days(1, &WeatherModel::default());
        let pv = PvArray::paper_spec(3);
        let mut raw = Predictor::new();
        let mut indexed = ClearSkyIndexedPredictor::new(pv.peak_ac_watts());
        let (mut err_raw, mut err_idx) = (0.0, 0.0);
        for minute in 6 * 60..12 * 60 {
            let t = SimTime::from_mins(minute);
            let actual = pv.output_at(&trace, t);
            err_raw += (raw.re_supply_w(actual) - actual).abs();
            err_idx += (indexed.predict_w(t) - actual).abs();
            raw.observe_re_supply(actual);
            indexed.observe(t, actual);
        }
        assert!(
            err_idx < err_raw * 0.25,
            "indexed {err_idx:.0} vs raw {err_raw:.0}"
        );
    }

    #[test]
    fn indexed_predictor_tracks_attenuation_not_level() {
        let mut p = ClearSkyIndexedPredictor::new(635.25);
        // Observe 50 % attenuation mid-morning.
        for minute in 0..60 {
            let t = SimTime::from_mins(9 * 60 + minute);
            let cs = 635.25 * WeatherModel::default().clear_sky(t.hour_of_day());
            p.observe(t, 0.5 * cs);
        }
        // The noon prediction applies the learned 50 % to the noon curve.
        let noon = SimTime::from_hours(12);
        assert!((p.predict_w(noon) - 0.5 * 635.25).abs() < 635.25 * 0.02);
        // And predicts darkness at night.
        assert!(p.predict_w(SimTime::from_hours(2)) < 1.0);
    }

    #[test]
    fn signals_are_independent() {
        let mut p = Predictor::new();
        p.observe_re_supply(100.0);
        assert_eq!(p.workload_rps(0.0), 0.0);
    }

    #[test]
    fn staleness_widens_conservatism_and_holds_last_good() {
        let mut p = Predictor::new();
        for _ in 0..20 {
            p.observe_re_supply(400.0);
        }
        p.mark_re_stale();
        p.mark_re_stale();
        assert_eq!(p.re_stale_epochs(), 2);
        // The raw EWMA holds its last-good value...
        assert!((p.re_supply_w(0.0) - 400.0).abs() < 1e-6);
        // ...while the conservative view decays per stale epoch.
        let want = 400.0 * STALENESS_DECAY * STALENESS_DECAY;
        assert!((p.re_supply_conservative(0.0) - want).abs() < 1e-6);
        // A verified observation clears the streak.
        p.observe_re_supply(400.0);
        assert_eq!(p.re_stale_epochs(), 0);
        assert!((p.re_supply_conservative(0.0) - 400.0).abs() < 1e-6);
    }
}
