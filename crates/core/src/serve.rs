//! `greensprint serve`: the epoch loop as a crash-tolerant rack
//! controller daemon.
//!
//! The batch engine answers "what would the controller have done"; serve
//! answers "do it, now, and survive the real world doing it". The same
//! [`crate::engine`] loop runs tick-by-tick against a clock, with:
//!
//! * **Live telemetry** — trace replay at a configurable real-time rate,
//!   plus an optional line-delimited supply feed (file or stdin) whose
//!   readings override the trace. A feed that goes quiet routes into the
//!   existing PSS safe mode via a staleness timeout instead of blocking.
//! * **Deadline budgets** — each tick has an explicit overrun policy:
//!   `skip` logs the overrun in the metrics stream and carries on;
//!   `degrade` additionally demotes one rung down the PR-4 failover
//!   ladder (the controller trades policy sophistication for headroom).
//! * **Hardened actuation** — per-server settings are applied through
//!   the [`gs_cluster::control`] retry layer: transient I/O errors back
//!   off deterministically and bounded; a server that keeps failing is
//!   clamped to Normal by a serve-level watchdog. Nothing panics the
//!   control loop.
//! * **Backpressured metrics** — one JSON line per epoch through a
//!   bounded drop-oldest buffer with a drop counter; a stalled sink
//!   never blocks the control path.
//! * **Liveness + restart** — a heartbeat file for external supervisors,
//!   a graceful SIGTERM drain that writes a final snapshot, and
//!   crash-restart (`--resume`) from the last [`ServeSnapshot`] with
//!   zero warmup.
//!
//! `--sim-time` runs the *identical* code path at full speed with no
//! wall-clock input anywhere in the stream: overruns, staleness, sink
//! stalls, and actuation failures come only from a seeded
//! [`DisturbancePlan`], so an interrupted-then-resumed serve emits a
//! metrics stream byte-identical to an uninterrupted run. The metrics
//! buffer is flushed before every snapshot write, which is the whole
//! restart guarantee: every epoch the snapshot believes executed is
//! already durable in the metrics file, so resume emission can start
//! exactly one line after the last durable one.

use std::collections::VecDeque;
use std::fs;
use std::io::{BufRead, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gs_cluster::control::{
    apply_with_retry, FlakyControl, RetryPolicy, ServerControl, SimControl, SysfsControl,
};
use gs_cluster::ServerSetting;
use gs_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::audit::{InvariantAuditor, SiteFlows};
use crate::broker::{conserved_factors, RackBelief, REROUTE_EPS};
use crate::checkpoint::{config_fingerprint, LoopState};
use crate::engine::{
    judge, run_once, run_once_resumable, BurstOutcome, EngineConfig, EpochHooks, EpochRecord,
    MeasurementMode, TickDirective,
};
use crate::fleet::EngineScratch;
use crate::net::{
    parse_frame, NetConfig, NetPlane, NetShared, NetSummary, RackStat, DEFAULT_MAX_LINE_LEN,
};
use crate::pmk::Strategy;
use crate::profiler::ProfileTable;
use crate::supervisor::{panic_message, RackHealth, RackSupervisor};

/// Schema tag of a single-rack [`ServeSnapshot`] file.
pub const SERVE_SCHEMA: &str = "gs-serve-1";

/// Schema tag of a multi-rack [`ServeSnapshot`]: the whole-daemon
/// checkpoint embedding every rack's [`LoopState`] plus the
/// orchestrator's [`ServeDcSideState`], so SIGKILL + `--resume` is
/// byte-identical even mid-rack-outage.
pub const SERVE_SCHEMA_V2: &str = "gs-serve-2";

/// Serve-level watchdog: consecutive actuation failures on one server
/// before serve stops commanding sprint settings to it.
const CLAMP_AFTER_FAILURES: u32 = 3;

/// Tick watchdog: a tick that exceeds this multiple of its deadline
/// budget is a *stall* (a wedged feed reader or actuation backend), not
/// a mere overrun — counted separately and demoted one ladder rung.
const WATCHDOG_FACTOR: u32 = 4;

/// What to do when a tick overruns its deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverrunPolicy {
    /// Log the overrun in the metrics stream and carry on.
    Skip,
    /// Log it *and* demote one rung down the failover ladder — requires
    /// the guardrail.
    Degrade,
}

/// A seeded, serializable schedule of real-world misbehavior, replayed
/// deterministically so `--sim-time` runs exercise every robustness path
/// without a wall clock. All epoch lists are sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct DisturbancePlan {
    /// Generator seed (`0` for hand-written plans; provenance only).
    pub seed: u64,
    /// Epochs whose telemetry feed is declared stale.
    pub stale: Vec<u64>,
    /// Epochs whose tick overruns its deadline budget.
    pub overruns: Vec<u64>,
    /// Epochs where the metrics sink stalls (lines stay buffered).
    pub stalls: Vec<u64>,
    /// `(epoch, failures)`: injected transient actuation failures per
    /// server on that epoch.
    pub actuation: Vec<(u64, u32)>,
    /// `(epoch, rack)`: panic that rack's worker thread at the top of
    /// that epoch (multi-rack serve only; ignored single-rack).
    pub rack_panics: Vec<(u64, u32)>,
    /// `(epoch, rack)`: wedge that rack's worker thread at the top of
    /// that epoch. Serve cannot un-wedge a thread, so a stall is
    /// surfaced the same way as a panic (the worker dies) but counted
    /// separately.
    pub rack_stalls: Vec<(u64, u32)>,
    /// Epochs whose site tick is wedged past the watchdog threshold
    /// (deterministic stand-in for a real-time tick exceeding
    /// `WATCHDOG_FACTOR`× its deadline budget).
    pub wedges: Vec<u64>,
}

impl DisturbancePlan {
    /// Generate a plan over `n_epochs` epochs. Pure function of the
    /// arguments: the same seed always yields the same plan.
    pub fn generate(seed: u64, n_epochs: u64) -> Self {
        if n_epochs == 0 {
            return DisturbancePlan {
                seed,
                ..DisturbancePlan::default()
            };
        }
        let mut rng = SimRng::seed_from_u64(seed ^ 0x7365_7276_6521); // "serve!"
        let pick = |rng: &mut SimRng, count: usize| -> Vec<u64> {
            let mut v: Vec<u64> = (0..count)
                .map(|_| rng.index(n_epochs as usize) as u64)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let budget = (n_epochs as usize / 8).max(1);
        let n_stale = 1 + rng.index(budget);
        let stale = pick(&mut rng, n_stale);
        let n_over = 1 + rng.index(budget);
        let overruns = pick(&mut rng, n_over);
        let n_stall = 1 + rng.index(budget);
        let stalls = pick(&mut rng, n_stall);
        let n_act = 1 + rng.index(budget);
        let actuation = pick(&mut rng, n_act)
            .into_iter()
            .map(|k| {
                let fails = 1 + rng.index(2) as u32;
                (k, fails)
            })
            .collect();
        // Rack-fault fields stay empty here: generating them would spend
        // extra RNG draws and silently shift every existing golden
        // stream keyed to a seed. Multi-rack fault tests write them
        // explicitly.
        DisturbancePlan {
            seed,
            stale,
            overruns,
            stalls,
            actuation,
            ..DisturbancePlan::default()
        }
    }

    fn is_stale(&self, k: u64) -> bool {
        self.stale.binary_search(&k).is_ok()
    }
    fn is_overrun(&self, k: u64) -> bool {
        self.overruns.binary_search(&k).is_ok()
    }
    fn is_stalled(&self, k: u64) -> bool {
        self.stalls.binary_search(&k).is_ok()
    }
    fn actuation_failures(&self, k: u64) -> u32 {
        self.actuation
            .iter()
            .find(|&&(e, _)| e == k)
            .map_or(0, |&(_, f)| f)
    }
    // The rack-fault lists may be hand-written (and so unsorted): scan,
    // don't binary-search.
    fn rack_panic_at(&self, k: u64, rack: u32) -> bool {
        self.rack_panics.iter().any(|&(e, r)| e == k && r == rack)
    }
    fn rack_stall_at(&self, k: u64, rack: u32) -> bool {
        self.rack_stalls.iter().any(|&(e, r)| e == k && r == rack)
    }
    fn is_wedged(&self, k: u64) -> bool {
        self.wedges.contains(&k)
    }
}

/// The deterministic, snapshot-persisted half of serve's configuration:
/// everything that shapes the *content* of the metrics stream. Runtime
/// pacing (rate, throttle, tick budget) and file paths live in
/// [`ServeArgs`] instead — they may differ between an interrupted run
/// and its resume without breaking byte-identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ServeOptions {
    /// Deadline-overrun policy.
    pub overrun: OverrunPolicy,
    /// Feed-silence epochs before telemetry is declared stale.
    pub stale_after_epochs: u32,
    /// Seeded misbehavior schedule (None = clean run).
    pub disturbances: Option<DisturbancePlan>,
    /// Metrics buffer capacity in lines (drop-oldest beyond it).
    pub metrics_buffer: usize,
    /// Snapshot every N epochs (0 = only the drain snapshot).
    pub snapshot_every: u64,
    /// Bounded retries per actuation failure.
    pub control_retries: u32,
    /// Max accepted telemetry line length in bytes; longer feed frames
    /// count as malformed (the network plane enforces its own copy of
    /// this cap at the socket layer).
    pub max_line_len: usize,
    /// Racks served by this daemon. `1` is the classic single-rack path;
    /// `>= 2` runs each rack's epoch loop on a supervised worker thread
    /// with the conserved-routing broker math between them.
    pub racks: u32,
    /// Restarts allowed per rack worker before it is quarantined and its
    /// load rerouted to the survivors.
    pub rack_restarts: u32,
    /// Per-rack [`LoopState`] capture cadence in epochs (0 = use
    /// `snapshot_every`). Rack captures and whole-daemon v2 snapshots
    /// share this cadence so every checkpoint is mutually consistent.
    pub rack_snapshot_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            overrun: OverrunPolicy::Skip,
            stale_after_epochs: 3,
            disturbances: None,
            metrics_buffer: 1024,
            snapshot_every: 10,
            control_retries: 2,
            max_line_len: DEFAULT_MAX_LINE_LEN,
            racks: 1,
            rack_restarts: 2,
            rack_snapshot_every: 0,
        }
    }
}

/// Serve's own mutable state alongside the engine's [`LoopState`] —
/// snapshotted with it so counters and the feed cursor survive a crash.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ServeSideState {
    /// Ticks driven (== epochs entered, across resumes).
    pub ticks: u64,
    /// Ticks that overran their deadline budget.
    pub overrun_ticks: u64,
    /// Epochs the driver declared telemetry-stale.
    pub stale_epochs: u64,
    /// Metrics lines dropped to backpressure.
    pub dropped_metrics_lines: u64,
    /// Actuation retries consumed (across all servers).
    pub actuation_retries: u64,
    /// Actuation attempts that exhausted their retries.
    pub actuation_failures: u64,
    /// Epoch-server pairs clamped to Normal by the serve watchdog.
    pub control_clamped: u64,
    /// Next unread feed line (sim-time file feeds).
    pub feed_cursor: u64,
    /// Malformed feed lines skipped.
    pub feed_malformed: u64,
    /// Consecutive epochs without a fresh feed sample.
    pub feed_stale_streak: u32,
    /// Last good feed reading, held while the streak is short.
    pub last_feed_w: Option<f64>,
    /// Per-server consecutive actuation-failure streaks.
    pub fail_streaks: Vec<u32>,
    /// Ticks the watchdog judged wedged (>= `WATCHDOG_FACTOR`× the
    /// deadline budget, or plan-scheduled in sim time).
    pub watchdog_stalls: u64,
}

/// One epoch's orchestrator directive, logged so a restarted (or
/// resumed) rack worker can deterministically replay the epochs it
/// missed: the same supply override, staleness verdict, demotion, and
/// routed load factors the live run applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectiveRow {
    /// Live supply override handed to every rack (None = trace).
    pub supply_w: Option<f64>,
    /// Telemetry declared stale this epoch.
    pub stale: bool,
    /// Forced ladder demotion, if any.
    pub demote: Option<String>,
    /// Per-rack conserved load factors.
    pub factors: Vec<f64>,
}

/// The multi-rack orchestrator's snapshot-persisted state: everything
/// beyond the per-rack [`LoopState`]s that shapes the deterministic
/// stream or the restart ladder.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ServeDcSideState {
    /// Next epoch the orchestrator will execute. Explicit rather than
    /// derived from a rack state: every rack could be quarantined.
    pub next_epoch: u64,
    /// Last settled telemetry per rack (drives the routing factors).
    pub beliefs: Vec<RackBelief>,
    /// False until the first epoch settles (epoch 0 routes evenly).
    pub has_telemetry: bool,
    /// Per-rack health ladder position.
    pub health: Vec<RackHealth>,
    /// Per-rack restarts consumed.
    pub restarts_used: Vec<u32>,
    /// Per-rack probation epochs remaining.
    pub probation_left: Vec<u32>,
    /// Full directive history from epoch 0 (indexed by epoch), kept for
    /// restart replay and the end-of-run baseline comparison.
    pub rows: Vec<DirectiveRow>,
    /// Worker restarts performed.
    pub rack_restarts: u64,
    /// Worker deaths classified as panics.
    pub rack_panics_seen: u64,
    /// Worker deaths classified as stalls.
    pub rack_stalls_seen: u64,
    /// Racks pushed to quarantine (restart budget exhausted).
    pub racks_quarantined: u64,
    /// Epochs in which load was actively rerouted around a dead rack.
    pub rerouted_epochs: u64,
    /// Site-level conservation audit violations (must stay empty).
    pub site_audit_violations: Vec<String>,
    /// Human-readable supervision event log.
    pub events: Vec<String>,
}

/// A serve checkpoint: engine state plus serve state plus enough
/// configuration to restart with no flags beyond `--resume`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// [`SERVE_SCHEMA`] (single-rack) or [`SERVE_SCHEMA_V2`] (multi-rack).
    pub schema: String,
    /// Build/config fingerprint of `cfg` (recomputed and checked on load).
    pub fingerprint: String,
    /// The engine configuration the daemon is serving.
    pub cfg: EngineConfig,
    /// The deterministic serve options.
    pub options: ServeOptions,
    /// The engine's captured loop state (single-rack schema; `None` in
    /// v2 snapshots, which carry `racks` instead).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub state: Option<LoopState>,
    /// Per-rack captured loop states (v2; `None` for a rack quarantined
    /// before its first capture).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub racks: Vec<Option<LoopState>>,
    /// Orchestrator state (v2 only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dc: Option<ServeDcSideState>,
    /// Serve's own captured state.
    pub serve: ServeSideState,
}

impl ServeSnapshot {
    /// Parse and verify a snapshot: schema must match and the embedded
    /// fingerprint must equal the one recomputed from the embedded
    /// config under *this* build.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let snap: ServeSnapshot = serde_json::from_str(text)
            .map_err(|e| ServeError::Snapshot(format!("unparseable serve snapshot: {e}")))?;
        match snap.schema.as_str() {
            s if s == SERVE_SCHEMA => {
                if snap.state.is_none() {
                    return Err(ServeError::Snapshot(
                        "single-rack snapshot is missing its engine state".to_string(),
                    ));
                }
            }
            s if s == SERVE_SCHEMA_V2 => {
                if snap.racks.is_empty() || snap.dc.is_none() {
                    return Err(ServeError::Snapshot(
                        "multi-rack snapshot is missing its rack states or orchestrator state"
                            .to_string(),
                    ));
                }
            }
            other => {
                return Err(ServeError::Snapshot(format!(
                    "snapshot schema {other:?} is neither {SERVE_SCHEMA:?} nor {SERVE_SCHEMA_V2:?}"
                )));
            }
        }
        let expect = serve_fingerprint(&snap.cfg);
        if snap.fingerprint != expect {
            return Err(ServeError::Snapshot(format!(
                "snapshot fingerprint {} does not match this build/config ({expect})",
                snap.fingerprint
            )));
        }
        Ok(snap)
    }
}

/// The fingerprint a [`ServeSnapshot`] carries for `cfg`.
pub fn serve_fingerprint(cfg: &EngineConfig) -> String {
    // A config that cannot serialize fingerprints as the empty string —
    // deterministic on both the write and verify sides, so it still
    // round-trips instead of panicking the daemon.
    let json = serde_json::to_string(cfg).unwrap_or_default();
    config_fingerprint(&json)
}

/// Which control plane the applied settings are mirrored onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlBackend {
    /// No mirroring (pure simulation).
    None,
    /// In-memory [`SimControl`] per server.
    Sim,
    /// Sysfs-format trees under `root/server<i>/` (created if missing).
    Sysfs(PathBuf),
}

/// Everything the CLI hands to [`serve`]. Paths and pacing are runtime
/// knobs; [`ServeArgs::options`] is the deterministic half.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// The engine configuration (measurement is forced to Analytic).
    pub cfg: EngineConfig,
    /// Deterministic serve options (ignored on resume — the snapshot's
    /// embedded options win).
    pub options: ServeOptions,
    /// Full-speed deterministic mode (no wall clock in the stream).
    pub sim_time: bool,
    /// Sim-seconds per wall-second in real-time mode.
    pub rate: f64,
    /// Extra sleep per tick in milliseconds (pacing only — lets tests
    /// SIGKILL a `--sim-time` run mid-flight; never enters the stream).
    pub throttle_ms: u64,
    /// Tick deadline budget in wall milliseconds (real-time mode only;
    /// in sim-time, overruns come only from the disturbance plan).
    pub tick_budget_ms: Option<u64>,
    /// JSON-lines metrics stream (appended; `None` = discard).
    pub metrics_path: Option<PathBuf>,
    /// Heartbeat file rewritten atomically each tick.
    pub heartbeat_path: Option<PathBuf>,
    /// Snapshot file rewritten atomically every `snapshot_every` epochs
    /// and on drain.
    pub snapshot_path: Option<PathBuf>,
    /// Line-delimited supply feed (`Some("-")` = stdin).
    pub feed_path: Option<PathBuf>,
    /// Control plane to mirror applied settings onto.
    pub control: ControlBackend,
    /// Resume from this [`ServeSnapshot`] file.
    pub resume_path: Option<PathBuf>,
    /// Stop gracefully after this many executed epochs (this run).
    pub drain_after_epochs: Option<u64>,
    /// TCP network plane (`None` = no listeners). Runtime-only: network
    /// activity never shapes the `--sim-time` metrics stream.
    pub net: Option<NetConfig>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            cfg: EngineConfig::default(),
            options: ServeOptions::default(),
            sim_time: true,
            rate: 1.0,
            throttle_ms: 0,
            tick_budget_ms: None,
            metrics_path: None,
            heartbeat_path: None,
            snapshot_path: None,
            feed_path: None,
            control: ControlBackend::None,
            resume_path: None,
            drain_after_epochs: None,
            net: None,
        }
    }
}

/// Why serve could not run (or finish).
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration or flag combination.
    Config(String),
    /// A snapshot that failed to load or verify.
    Snapshot(String),
    /// An I/O failure on a serve-owned file.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(s) => write!(f, "serve config error: {s}"),
            ServeError::Snapshot(s) => write!(f, "serve snapshot error: {s}"),
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The end-of-run report printed by the CLI (stdout, never the metrics
/// stream).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Epochs executed across the run's whole life (resumes included).
    pub epochs_executed: u64,
    /// Epoch the run resumed from (`None` for a fresh start).
    pub resumed_from_epoch: Option<u64>,
    /// True if the run stopped at a drain boundary instead of finishing.
    pub drained: bool,
    /// Ticks driven.
    pub ticks: u64,
    /// Deadline overruns.
    pub overrun_ticks: u64,
    /// Driver-declared stale-telemetry epochs.
    pub stale_epochs: u64,
    /// Engine safe-mode epochs (driver-declared staleness lands here).
    pub safe_mode_epochs: usize,
    /// Metrics lines dropped to backpressure.
    pub dropped_metrics_lines: u64,
    /// Actuation retries consumed.
    pub actuation_retries: u64,
    /// Actuation attempts that exhausted their retries.
    pub actuation_failures: u64,
    /// Serve-watchdog clamps to Normal.
    pub control_clamped: u64,
    /// Malformed feed lines skipped.
    pub feed_malformed: u64,
    /// Runtime invariant-audit violations (must be zero).
    pub audit_violations: usize,
    /// Peak failover-ladder level reached.
    pub ladder_level: usize,
    /// Guardrail event log.
    pub guardrail_events: Vec<String>,
    /// Normal-floor judgment over the full window (`None` when drained
    /// early — the truncated window has no comparable baseline).
    pub floor_held: Option<bool>,
    /// Mean goodput over executed epochs (rps per server).
    pub mean_goodput_rps: f64,
    /// Ticks the watchdog judged wedged.
    #[serde(default)]
    pub watchdog_stalls: u64,
    /// Racks this daemon served.
    #[serde(default)]
    pub racks: u32,
    /// Rack-worker restarts performed.
    #[serde(default)]
    pub rack_restarts: u64,
    /// Rack-worker deaths classified as panics.
    #[serde(default)]
    pub rack_panics: u64,
    /// Rack-worker deaths classified as stalls.
    #[serde(default)]
    pub rack_stalls: u64,
    /// Racks quarantined after restart exhaustion.
    #[serde(default)]
    pub racks_quarantined: u64,
    /// Epochs in which load was actively rerouted around a dead rack.
    #[serde(default)]
    pub rerouted_epochs: u64,
    /// Final per-rack health ladder positions.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub rack_health: Vec<RackHealth>,
    /// Supervision event log (restarts, quarantines, re-admissions).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub rack_events: Vec<String>,
    /// Network-plane counters (`None` when no listener was configured).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub net: Option<NetSummary>,
}

/// SIGTERM latch. Registering a handler that only stores an atomic is
/// async-signal-safe; the loop polls it at each epoch boundary.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Atomic file replace: write to a sibling tmp, fsync, rename. The tmp
/// name carries the pid so two daemons pointed at the same path can
/// never interleave halves of each other's writes; a reader (watchdog,
/// subscriber replay) sees either the old file or the new one, whole.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// One metrics line: the epoch record plus serve's per-epoch robustness
/// annotations. Every field derives from the epoch index, the engine
/// record, and the disturbance plan — never from a wall clock — so the
/// line bytes are identical across interrupted and uninterrupted runs.
#[derive(Serialize)]
struct MetricsLine {
    epoch: u64,
    overrun: bool,
    stale: bool,
    retries: u64,
    failures: u64,
    clamped: u64,
    record: EpochRecord,
}

/// Bounded drop-oldest metrics buffer over an append-only file.
struct MetricsSink {
    path: Option<PathBuf>,
    buf: VecDeque<String>,
    cap: usize,
}

impl MetricsSink {
    fn new(path: Option<PathBuf>, cap: usize) -> Self {
        MetricsSink {
            path,
            buf: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue a line; returns how many old lines were dropped to make
    /// room. Never blocks, never errors.
    fn push(&mut self, line: String) -> u64 {
        let mut dropped = 0;
        while self.buf.len() >= self.cap {
            self.buf.pop_front();
            dropped += 1;
        }
        self.buf.push_back(line);
        dropped
    }

    /// Append every buffered line to the file. A write error leaves the
    /// unwritten tail buffered for the next attempt — the control path
    /// never sees it.
    fn drain(&mut self) -> bool {
        let Some(path) = &self.path else {
            self.buf.clear();
            return true;
        };
        if self.buf.is_empty() {
            return true;
        }
        let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) else {
            return false;
        };
        while let Some(line) = self.buf.front() {
            if writeln!(f, "{line}").is_err() {
                return false;
            }
            self.buf.pop_front();
        }
        f.sync_all().is_ok()
    }
}

/// The telemetry feed: pre-read lines in sim-time (deterministic cursor),
/// a reader thread in real time.
enum FeedSource {
    /// All lines up front; `ServeSideState::feed_cursor` indexes it.
    Preloaded(Vec<String>),
    /// Live channel drained non-blockingly each tick.
    Live(mpsc::Receiver<String>),
}

fn open_feed(path: &Path, sim_time: bool) -> Result<FeedSource, ServeError> {
    let is_stdin = path.as_os_str() == "-";
    if sim_time {
        let text = if is_stdin {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)?;
            s
        } else {
            fs::read_to_string(path)?
        };
        Ok(FeedSource::Preloaded(
            text.lines().map(str::to_string).collect(),
        ))
    } else {
        let (tx, rx) = mpsc::channel();
        if is_stdin {
            std::thread::spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines().map_while(Result::ok) {
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            });
        } else {
            let file = fs::File::open(path)?;
            std::thread::spawn(move || {
                let reader = std::io::BufReader::new(file);
                for line in reader.lines().map_while(Result::ok) {
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            });
        }
        Ok(FeedSource::Live(rx))
    }
}

/// A control backend per server, wrapped for deterministic fault
/// injection.
enum AnyControl {
    Sim(SimControl),
    Sysfs(SysfsControl),
}

impl ServerControl for AnyControl {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), gs_cluster::ControlError> {
        match self {
            AnyControl::Sim(c) => c.apply(setting),
            AnyControl::Sysfs(c) => c.apply(setting),
        }
    }
    fn read(&self) -> Result<ServerSetting, gs_cluster::ControlError> {
        match self {
            AnyControl::Sim(c) => c.read(),
            AnyControl::Sysfs(c) => c.read(),
        }
    }
}

/// The serve driver's handle on a running network plane: the shared
/// state for publish/drain/counters, plus the bounded ingest channel.
struct NetHandle {
    shared: Arc<NetShared>,
    rx: mpsc::Receiver<f64>,
}

/// The serve driver: implements [`EpochHooks`] over the engine loop.
struct ServeDriver {
    opts: ServeOptions,
    cfg_fingerprint: String,
    cfg: EngineConfig,
    sim_time: bool,
    rate: f64,
    throttle: Duration,
    tick_budget: Option<Duration>,
    tick_started: Option<Instant>,
    feed: Option<FeedSource>,
    net: Option<NetHandle>,
    metrics: MetricsSink,
    heartbeat_path: Option<PathBuf>,
    snapshot_path: Option<PathBuf>,
    controls: Vec<FlakyControl<AnyControl>>,
    side: ServeSideState,
    /// Suppress metrics emission for epochs below this (already durable
    /// from the interrupted run).
    emit_from: u64,
    /// Stop after this many epochs executed *this process*.
    drain_after: Option<u64>,
    executed_this_run: u64,
    epochs_executed: u64,
    drained: bool,
    /// Stale/overrun annotation for the epoch in flight (before_epoch
    /// decides, after_epoch records).
    cur_stale: bool,
    cur_overrun: bool,
    /// One epoch of sim time in seconds (cached from the config).
    epoch_secs: f64,
}

impl ServeDriver {
    /// Drain the network ingest channel. In sim-time the frames were
    /// already validated and counted by the plane but may not shape the
    /// deterministic stream, so the freshest reading is discarded here;
    /// in real time it outranks the file feed (a socket sensor is the
    /// more live source).
    fn poll_net_sample(&mut self) -> Option<f64> {
        let net = self.net.as_ref()?;
        let mut fresh: Option<f64> = None;
        while let Ok(w) = net.rx.try_recv() {
            fresh = Some(w);
        }
        if self.sim_time {
            None
        } else {
            fresh
        }
    }

    /// Drain the `--feed` source: one line per tick from a preloaded
    /// file (deterministic cursor), everything pending from a live
    /// reader. Oversized and unparseable lines count as malformed.
    fn poll_feed_sample(&mut self) -> Option<f64> {
        let feed = self.feed.as_mut()?;
        let cap = self.opts.max_line_len;
        let mut fresh: Option<f64> = None;
        match feed {
            FeedSource::Preloaded(lines) => {
                if let Some(line) = lines.get(self.side.feed_cursor as usize) {
                    self.side.feed_cursor += 1;
                    match (line.len() <= cap).then(|| parse_frame(line)).flatten() {
                        Some(w) => fresh = Some(w),
                        None => self.side.feed_malformed += 1,
                    }
                }
            }
            FeedSource::Live(rx) => {
                // Drain everything pending; the newest reading wins.
                while let Ok(line) = rx.try_recv() {
                    self.side.feed_cursor += 1;
                    match (line.len() <= cap).then(|| parse_frame(&line)).flatten() {
                        Some(w) => fresh = Some(w),
                        None => self.side.feed_malformed += 1,
                    }
                }
            }
        }
        fresh
    }

    /// True when any telemetry source can go stale: a feed, or the
    /// network ingest in real time (sim-time network frames are counted
    /// but deliberately outside the stream).
    fn live_telemetry(&self) -> bool {
        self.feed.is_some() || (self.net.is_some() && !self.sim_time)
    }

    fn take_telemetry_sample(&mut self) -> Option<f64> {
        let net_fresh = self.poll_net_sample();
        let feed_fresh = self.poll_feed_sample();
        if !self.live_telemetry() {
            return None;
        }
        match net_fresh.or(feed_fresh) {
            Some(w) => {
                self.side.feed_stale_streak = 0;
                self.side.last_feed_w = Some(w);
                Some(w)
            }
            None => {
                self.side.feed_stale_streak = self.side.feed_stale_streak.saturating_add(1);
                // Short silences serve the held reading (a delayed
                // sensor, not a dead one); past the threshold the
                // directive declares staleness instead.
                if self.side.feed_stale_streak < self.opts.stale_after_epochs {
                    self.side.last_feed_w
                } else {
                    None
                }
            }
        }
    }

    fn telemetry_is_stale(&self) -> bool {
        self.live_telemetry() && self.side.feed_stale_streak >= self.opts.stale_after_epochs
    }

    fn write_heartbeat(&self, k: u64, t: SimTime) {
        let Some(path) = &self.heartbeat_path else {
            return;
        };
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        // The heartbeat carries the network counters so a watchdog sees
        // plane health without opening a socket of its own.
        let net_part = self
            .net
            .as_ref()
            .and_then(|n| serde_json::to_string(&n.shared.summary()).ok())
            .map_or(String::new(), |j| format!(",\"net\":{j}"));
        let line = format!(
            "{{\"epoch\":{k},\"sim_time_s\":{:.3},\"ticks\":{},\"wall_unix_ms\":{unix_ms}{net_part}}}\n",
            t.as_secs_f64(),
            self.side.ticks
        );
        // Liveness is advisory: a failed heartbeat write must not take
        // down the control loop it is supposed to vouch for.
        let _ = write_atomic(path, &line);
    }

    fn actuate(&mut self, k: u64, settings: &[ServerSetting]) {
        if self.controls.is_empty() {
            return;
        }
        let injected = self
            .opts
            .disturbances
            .as_ref()
            .map_or(0, |p| p.actuation_failures(k));
        let policy = RetryPolicy::with_retries(self.opts.control_retries);
        let real_time = !self.sim_time;
        for (i, control) in self.controls.iter_mut().enumerate() {
            if injected > 0 {
                control.fail_applies(injected, std::io::ErrorKind::Interrupted);
            }
            let clamped = self
                .side
                .fail_streaks
                .get(i)
                .is_some_and(|&s| s >= CLAMP_AFTER_FAILURES);
            let want = if clamped {
                ServerSetting::normal()
            } else {
                settings
                    .get(i)
                    .copied()
                    .unwrap_or_else(ServerSetting::normal)
            };
            if clamped {
                self.side.control_clamped += 1;
            }
            let mut sleeper = |ms: u64| {
                if real_time {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            };
            match apply_with_retry(control, want, policy, &mut sleeper) {
                Ok(retries) => {
                    self.side.actuation_retries += u64::from(retries);
                    if let Some(s) = self.side.fail_streaks.get_mut(i) {
                        *s = 0;
                    }
                }
                Err(_) => {
                    // Bounded failure: count it, advance the watchdog
                    // streak, and keep the loop alive. The engine's own
                    // actuation watchdog handles the modelled side.
                    self.side.actuation_retries += u64::from(policy.max_retries);
                    self.side.actuation_failures += 1;
                    if let Some(s) = self.side.fail_streaks.get_mut(i) {
                        *s = s.saturating_add(1);
                    }
                }
            }
        }
    }

    fn pace(&mut self, epoch: Duration) {
        if !self.throttle.is_zero() {
            std::thread::sleep(self.throttle);
        }
        if self.sim_time {
            return;
        }
        // Real-time replay: one epoch of sim time per (epoch / rate) of
        // wall time, measured from the previous tick's start.
        let target = epoch.div_f64(self.rate.max(1e-9));
        if let Some(started) = self.tick_started {
            let elapsed = started.elapsed();
            if elapsed < target {
                std::thread::sleep(target - elapsed);
            }
        }
        self.tick_started = Some(Instant::now());
    }
}

impl ServeDriver {
    /// One site tick: deadline/watchdog accounting, telemetry sampling,
    /// staleness, heartbeat. The single-rack path calls this through
    /// [`EpochHooks::before_epoch`]; the multi-rack orchestrator calls
    /// it directly, once per epoch for the whole site.
    fn tick_directive(&mut self, k: u64, t: SimTime) -> TickDirective {
        self.side.ticks += 1;
        // Deadline check for the *previous* tick in real time; plan-driven
        // in sim time so the stream stays deterministic.
        let mut overrun = self
            .opts
            .disturbances
            .as_ref()
            .is_some_and(|p| p.is_overrun(k));
        // Watchdog: a tick that blew far past its budget (or a
        // plan-scheduled wedge in sim time) is a stall, not a mere
        // overrun — counted separately and always worth a ladder rung.
        let mut wedged = self
            .opts
            .disturbances
            .as_ref()
            .is_some_and(|p| p.is_wedged(k));
        if let (false, Some(budget), Some(started)) =
            (self.sim_time, self.tick_budget, self.tick_started)
        {
            let elapsed = started.elapsed();
            if elapsed > budget {
                overrun = true;
            }
            if elapsed > budget.saturating_mul(WATCHDOG_FACTOR) {
                wedged = true;
            }
        }
        if wedged {
            overrun = true;
            self.side.watchdog_stalls += 1;
        }
        self.cur_overrun = overrun;
        if overrun {
            self.side.overrun_ticks += 1;
        }

        let supply_w = self.take_telemetry_sample();
        let plan_stale = self
            .opts
            .disturbances
            .as_ref()
            .is_some_and(|p| p.is_stale(k));
        let stale = plan_stale || self.telemetry_is_stale();
        self.cur_stale = stale;
        if stale {
            self.side.stale_epochs += 1;
        }

        self.write_heartbeat(k, t);

        // A wedge demotes even under `--overrun skip`: a tick that sat
        // at WATCHDOG_FACTOR× its budget is evidence the control path
        // itself is unhealthy, not just late. With the guardrail off the
        // engine ignores the demotion (the counter still records it).
        let demote = if wedged {
            Some(format!(
                "watchdog stall: tick exceeded {WATCHDOG_FACTOR}x its deadline budget"
            ))
        } else if overrun && self.opts.overrun == OverrunPolicy::Degrade {
            Some("tick deadline overrun".to_string())
        } else {
            None
        };
        TickDirective {
            supply_w: if stale { None } else { supply_w },
            telemetry_stale: stale,
            demote,
            load_factor: None,
        }
    }

    /// Serialize and emit one epoch's metrics line — TCP fan-out plus
    /// the durable sink — honoring the resume emission gate and
    /// plan-scheduled sink stalls. Shared by the single-rack hook path
    /// and the multi-rack orchestrator (which emits the aggregate).
    fn emit_record(
        &mut self,
        k: u64,
        rec: &EpochRecord,
        retries: u64,
        failures: u64,
        clamped: u64,
    ) {
        if k < self.emit_from {
            return;
        }
        let line = MetricsLine {
            epoch: k,
            overrun: self.cur_overrun,
            stale: self.cur_stale,
            retries,
            failures,
            clamped,
            record: *rec,
        };
        match serde_json::to_string(&line) {
            Ok(json) => {
                // Fan the identical bytes out to TCP subscribers;
                // publish never blocks (drop-oldest per subscriber).
                if let Some(net) = &self.net {
                    net.shared.publish(k, json.clone());
                }
                self.side.dropped_metrics_lines += self.metrics.push(json);
            }
            // A line that cannot serialize is a dropped line, not a
            // dead control loop.
            Err(_) => self.side.dropped_metrics_lines += 1,
        }
        let stalled = self
            .opts
            .disturbances
            .as_ref()
            .is_some_and(|p| p.is_stalled(k));
        if !stalled {
            self.metrics.drain();
        }
    }
}

impl EpochHooks for ServeDriver {
    fn before_epoch(&mut self, k: u64, t: SimTime) -> TickDirective {
        self.tick_directive(k, t)
    }

    fn after_epoch(&mut self, k: u64, rec: &EpochRecord, settings: &[ServerSetting]) -> bool {
        let retries_before = self.side.actuation_retries;
        let failures_before = self.side.actuation_failures;
        let clamped_before = self.side.control_clamped;
        self.actuate(k, settings);
        self.emit_record(
            k,
            rec,
            self.side.actuation_retries - retries_before,
            self.side.actuation_failures - failures_before,
            self.side.control_clamped - clamped_before,
        );

        self.executed_this_run += 1;
        self.epochs_executed += 1;
        let drain = TERM_REQUESTED.load(Ordering::SeqCst)
            || self
                .drain_after
                .is_some_and(|d| self.executed_this_run >= d)
            || self
                .net
                .as_ref()
                .is_some_and(|n| n.shared.drain_requested());
        if drain {
            self.drained = true;
            return false;
        }
        self.pace(Duration::from_secs_f64(self.epoch_secs));
        true
    }

    fn on_snapshot(&mut self, state: &LoopState) {
        // Flush-before-snapshot: every epoch the snapshot believes
        // executed must already be durable in the metrics file, or a
        // crash right after this write would leave a gap no resume can
        // fill. A stalled sink therefore skips the snapshot too.
        if !self.metrics.drain() {
            return;
        }
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let snap = ServeSnapshot {
            schema: SERVE_SCHEMA.to_string(),
            fingerprint: self.cfg_fingerprint.clone(),
            cfg: self.cfg.clone(),
            options: self.opts.clone(),
            state: Some(state.clone()),
            racks: Vec::new(),
            dc: None,
            serve: self.side.clone(),
        };
        let Ok(text) = serde_json::to_string(&snap) else {
            return;
        };
        let _ = write_atomic(path, &text);
    }
}

/// Trim a metrics file to its last complete line (a SIGKILL can land
/// mid-write) and return the last durable epoch index, if any.
fn prepare_metrics_for_resume(path: &Path) -> Result<Option<u64>, ServeError> {
    let Ok(text) = fs::read_to_string(path) else {
        return Ok(None); // no file yet — nothing durable
    };
    let complete = match text.rfind('\n') {
        Some(pos) => &text[..=pos],
        None => "",
    };
    if complete.len() != text.len() {
        fs::write(path, complete)?;
    }
    let last_epoch = complete
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .and_then(|l| serde_json::from_str::<serde_json::Value>(l).ok())
        .and_then(|v| {
            v.get("epoch")
                .and_then(|e| e.as_number())
                .and_then(|n| n.as_u64())
        });
    Ok(last_epoch)
}

// ---------------------------------------------------------------------------
// Multi-rack serving: one supervised worker thread per rack, the
// conserved-routing broker math between them, deterministic
// restart-from-snapshot, and a whole-daemon v2 checkpoint.
// ---------------------------------------------------------------------------

/// One epoch's command from the orchestrator to a rack worker.
struct ServeRackDirective {
    load_factor: f64,
    supply_w: Option<f64>,
    telemetry_stale: bool,
    demote: Option<String>,
    /// Drain at this epoch: capture a final state and exit cleanly.
    last: bool,
    /// Fault injection: panic the worker with this payload *before*
    /// executing the epoch (the deterministic stand-in for a worker
    /// crash — the epoch itself is never half-executed).
    panic_with: Option<String>,
}

/// What a rack worker sends back on its message channel.
enum RackWireMsg {
    /// A boundary (or drain) [`LoopState`] capture.
    Snapshot(Box<LoopState>),
    /// The epoch settled: its record plus the applied settings.
    Report(Box<EpochRecord>, Vec<ServerSetting>),
    /// The worker is dying with this panic payload.
    Died(String),
}

/// The worker-side hooks: every epoch blocks on a directive, applies
/// it, and reports the settled record back. Snapshots ride the same
/// channel so the orchestrator sees them in stream order.
struct ServeRackHooks {
    dir_rx: mpsc::Receiver<ServeRackDirective>,
    msg_tx: mpsc::Sender<RackWireMsg>,
    last: bool,
}

impl EpochHooks for ServeRackHooks {
    fn before_epoch(&mut self, _k: u64, _t: SimTime) -> TickDirective {
        // A vanished orchestrator is unrecoverable for a worker; the
        // panic routes into the supervisor's catch_unwind like any other
        // death.
        let Ok(d) = self.dir_rx.recv() else {
            panic!("orchestrator disconnected");
        };
        if let Some(msg) = d.panic_with {
            panic!("{msg}");
        }
        self.last = d.last;
        TickDirective {
            supply_w: d.supply_w,
            telemetry_stale: d.telemetry_stale,
            demote: d.demote,
            load_factor: Some(d.load_factor),
        }
    }

    fn after_epoch(&mut self, _k: u64, rec: &EpochRecord, settings: &[ServerSetting]) -> bool {
        let _ = self
            .msg_tx
            .send(RackWireMsg::Report(Box::new(*rec), settings.to_vec()));
        !self.last
    }

    fn on_snapshot(&mut self, state: &LoopState) {
        let _ = self
            .msg_tx
            .send(RackWireMsg::Snapshot(Box::new(state.clone())));
    }
}

/// The orchestrator's handle on one rack worker thread.
struct RackWorker {
    dir_tx: mpsc::Sender<ServeRackDirective>,
    msg_rx: mpsc::Receiver<RackWireMsg>,
    handle: std::thread::JoinHandle<Option<BurstOutcome>>,
}

/// Spawn rack worker: the rack's engine loop on its own thread behind
/// `catch_unwind`, resuming from `resume` when given. A panic anywhere
/// inside becomes a [`RackWireMsg::Died`] on the message channel — the
/// orchestrator's recv loop is the only place deaths surface.
fn spawn_rack_worker(
    cfg: &EngineConfig,
    resume: Option<LoopState>,
    snapshot_every: u64,
) -> RackWorker {
    let (dir_tx, dir_rx) = mpsc::channel();
    let (msg_tx, msg_rx) = mpsc::channel();
    let cfg = cfg.clone();
    let death_tx = msg_tx.clone();
    let handle = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(move || {
            let profiles = ProfileTable::cached(cfg.app);
            let mut scratch = EngineScratch::new();
            let mut hooks = ServeRackHooks {
                dir_rx,
                msg_tx,
                last: false,
            };
            let (outcome, _monitor, _policy) = run_once_resumable(
                &cfg,
                cfg.strategy,
                profiles,
                resume,
                snapshot_every,
                &mut |_| {},
                &mut scratch,
                &mut hooks,
            );
            outcome
        }));
        match result {
            Ok(outcome) => Some(outcome),
            Err(p) => {
                let _ = death_tx.send(RackWireMsg::Died(panic_message(p.as_ref())));
                None
            }
        }
    });
    RackWorker {
        dir_tx,
        msg_rx,
        handle,
    }
}

/// Build rack `r`'s directive from a logged row.
fn directive_from_row(
    row: &DirectiveRow,
    rack: usize,
    last: bool,
    panic_with: Option<String>,
) -> ServeRackDirective {
    ServeRackDirective {
        load_factor: row.factors.get(rack).copied().unwrap_or(1.0),
        supply_w: row.supply_w,
        telemetry_stale: row.stale,
        demote: row.demote.clone(),
        last,
        panic_with,
    }
}

/// Baseline-replay hooks: feed a finished run's directive history back
/// through a `Strategy::Normal` run of one rack, so the floor judgment
/// compares like-for-like — same routed load factors, supply overrides,
/// and staleness verdicts (ladder demotions don't apply at the floor).
struct RowReplayHooks<'a> {
    rows: &'a [DirectiveRow],
    rack: usize,
}

impl EpochHooks for RowReplayHooks<'_> {
    fn before_epoch(&mut self, k: u64, _t: SimTime) -> TickDirective {
        match self.rows.get(k as usize) {
            Some(row) => TickDirective {
                supply_w: row.supply_w,
                telemetry_stale: row.stale,
                demote: None,
                load_factor: Some(row.factors.get(self.rack).copied().unwrap_or(1.0)),
            },
            None => TickDirective::default(),
        }
    }
}

/// Render one per-rack metrics line for the TCP fan-out (the `?rack=N`
/// topic), never written to the durable aggregate file. The `rack` key
/// leads so every line starts `{"rack":N,` — the subscriber-side topic
/// filter is a prefix match on these bytes.
fn rack_metrics_line(rack: usize, epoch: u64, rec: &EpochRecord) -> Option<String> {
    let record = serde_json::to_string(rec).ok()?;
    Some(format!(
        "{{\"rack\":{rack},\"epoch\":{epoch},\"record\":{record}}}"
    ))
}

/// Where in the epoch protocol a rack worker died — decides how the
/// restarted worker is re-synchronized with the fleet.
#[derive(Clone, Copy)]
enum DeathPhase {
    /// Before sending its epoch-`k` boundary capture: the replay re-hits
    /// the boundary and the replacement's capture stands in.
    Boundary,
    /// Before the epoch-`k` directive was sent (admin re-admission
    /// catch-up): the replacement just waits for the directive.
    PreTick,
    /// Holding or executing the epoch-`k` directive: the directive is
    /// re-sent (without injection) and the epoch re-executes.
    Tick {
        /// Whether the re-sent directive is the drain epoch.
        last: bool,
    },
    /// During the drain capture after epoch `k` settled: the epoch
    /// re-executes (its report is discarded — the aggregate already
    /// includes it) and the drain capture is re-taken.
    DrainCapture,
}

/// The orchestrator's mutable multi-rack state, bundled so the restart
/// protocol can be a method instead of a 9-argument function.
struct DcRun {
    rack_cfgs: Vec<EngineConfig>,
    every: u64,
    workers: Vec<Option<RackWorker>>,
    rack_states: Vec<Option<LoopState>>,
    sup: RackSupervisor,
    dc: ServeDcSideState,
}

impl DcRun {
    /// Mirror the supervisor's ladder into the snapshot-persisted state.
    fn sync_supervisor(&mut self) {
        self.dc.health = self.sup.health.clone();
        self.dc.restarts_used = self.sup.restarts_used.clone();
        self.dc.probation_left = self.sup.probation_left.clone();
    }

    /// Spawn a fresh worker for rack `r` from its last captured state
    /// and deterministically replay the logged directives up to (not
    /// including) epoch `k`. Replayed reports are discarded — those
    /// epochs already settled into the aggregate stream. Returns the
    /// caught-up worker, or the death message if it died again.
    fn catch_up(&mut self, r: usize, k: u64) -> Result<RackWorker, String> {
        let w = spawn_rack_worker(&self.rack_cfgs[r], self.rack_states[r].clone(), self.every);
        let from = self.rack_states[r].as_ref().map_or(0, |s| s.next_epoch);
        for j in from..k {
            let d = directive_from_row(&self.dc.rows[j as usize], r, false, None);
            if w.dir_tx.send(d).is_err() {
                return Err(format!(
                    "rack {r} worker exited during its epoch {j} replay"
                ));
            }
            loop {
                match w.msg_rx.recv() {
                    Ok(RackWireMsg::Snapshot(s)) => self.rack_states[r] = Some(*s),
                    Ok(RackWireMsg::Report(..)) => break,
                    Ok(RackWireMsg::Died(m)) => return Err(m),
                    Err(_) => {
                        return Err(format!(
                            "rack {r} worker exited during its epoch {j} replay"
                        ))
                    }
                }
            }
        }
        Ok(w)
    }

    /// Re-synchronize a caught-up replacement worker with the fleet and
    /// install it. On `Err` the replacement died too.
    fn finish_restart(
        &mut self,
        w: RackWorker,
        r: usize,
        k: u64,
        phase: DeathPhase,
    ) -> Result<(), String> {
        match phase {
            DeathPhase::Boundary => match w.msg_rx.recv() {
                Ok(RackWireMsg::Snapshot(s)) => self.rack_states[r] = Some(*s),
                Ok(RackWireMsg::Report(..)) => {
                    return Err(format!(
                        "protocol error: rack {r} sent telemetry in place of its epoch {k} \
                         boundary capture"
                    ));
                }
                Ok(RackWireMsg::Died(m)) => return Err(m),
                Err(_) => {
                    return Err(format!(
                        "rack {r} worker exited at the epoch {k} snapshot boundary"
                    ));
                }
            },
            DeathPhase::PreTick => {}
            DeathPhase::Tick { last } => {
                let d = directive_from_row(&self.dc.rows[k as usize], r, last, None);
                w.dir_tx.send(d).map_err(|_| {
                    format!("rack {r} worker exited before its re-sent epoch {k} directive")
                })?;
            }
            DeathPhase::DrainCapture => {
                let d = directive_from_row(&self.dc.rows[k as usize], r, true, None);
                w.dir_tx.send(d).map_err(|_| {
                    format!("rack {r} worker exited before its re-sent drain directive")
                })?;
                // The re-executed epoch's report is already aggregated.
                loop {
                    match w.msg_rx.recv() {
                        Ok(RackWireMsg::Snapshot(s)) => self.rack_states[r] = Some(*s),
                        Ok(RackWireMsg::Report(..)) => break,
                        Ok(RackWireMsg::Died(m)) => return Err(m),
                        Err(_) => {
                            return Err(format!(
                                "rack {r} worker exited re-executing its drain epoch {k}"
                            ));
                        }
                    }
                }
                match w.msg_rx.recv() {
                    Ok(RackWireMsg::Snapshot(s)) => self.rack_states[r] = Some(*s),
                    Ok(RackWireMsg::Report(..)) => {
                        return Err(format!(
                            "protocol error: rack {r} sent telemetry in place of its drain \
                             capture"
                        ));
                    }
                    Ok(RackWireMsg::Died(m)) => return Err(m),
                    Err(_) => {
                        return Err(format!("rack {r} worker exited before its drain capture"));
                    }
                }
            }
        }
        self.workers[r] = Some(w);
        Ok(())
    }

    /// A worker for rack `r` died at epoch `k`: classify the death,
    /// restart from the rack's last captured [`LoopState`] within the
    /// budget (deterministically replaying every epoch it missed), or
    /// quarantine it and zero its belief so the next factor computation
    /// reroutes its share to the survivors. Returns true if the rack is
    /// alive again.
    fn handle_death(&mut self, r: usize, k: u64, mut msg: String, phase: DeathPhase) -> bool {
        loop {
            if msg.contains("injected rack stall") {
                self.dc.rack_stalls_seen += 1;
            } else {
                self.dc.rack_panics_seen += 1;
            }
            // Reap the dead thread before spawning its replacement.
            if let Some(w) = self.workers[r].take() {
                drop(w.dir_tx);
                let _ = w.handle.join();
            }
            if !self.sup.record_death(r, msg.clone()) {
                self.dc.racks_quarantined += 1;
                self.dc.events.push(format!(
                    "epoch {k}: rack {r} quarantined after exhausting {} restarts: {msg}",
                    self.sup.max_restarts
                ));
                self.dc.beliefs[r] = RackBelief {
                    re_supply_w: 0.0,
                    battery_soc: 0.0,
                    live_servers: 0,
                    demand_w: 0.0,
                    goodput_rps: 0.0,
                    stale: false,
                };
                if self.sup.live_count() == 0 {
                    self.dc.events.push(format!(
                        "epoch {k}: all racks quarantined; aggregate stream suspended"
                    ));
                }
                return false;
            }
            self.dc.rack_restarts += 1;
            let from = self.rack_states[r].as_ref().map_or(0, |s| s.next_epoch);
            self.dc.events.push(format!(
                "epoch {k}: rack {r} worker died ({msg}); restart {}/{} from snapshot epoch {from}",
                self.sup.restarts_used[r], self.sup.max_restarts
            ));
            match self.catch_up(r, k) {
                Ok(w) => match self.finish_restart(w, r, k, phase) {
                    Ok(()) => return true,
                    Err(m) => msg = m,
                },
                Err(m) => msg = m,
            }
        }
    }

    /// Wait for rack `r`'s drain capture (restarting on death).
    fn await_drain_capture(&mut self, r: usize, k: u64) {
        let msg = {
            let Some(w) = self.workers[r].as_ref() else {
                return;
            };
            match w.msg_rx.recv() {
                Ok(RackWireMsg::Snapshot(s)) => {
                    self.rack_states[r] = Some(*s);
                    return;
                }
                Ok(RackWireMsg::Report(..)) => {
                    format!("protocol error: rack {r} sent telemetry in place of its drain capture")
                }
                Ok(RackWireMsg::Died(m)) => m,
                Err(_) => format!("rack {r} worker exited before its drain capture"),
            }
        };
        // On success the restart protocol re-takes the capture itself.
        let _ = self.handle_death(r, k, msg, DeathPhase::DrainCapture);
    }

    /// Collect rack `r`'s epoch-`k` report, restarting through deaths.
    /// `None` means the rack exhausted its budget and was quarantined.
    fn collect_report(
        &mut self,
        r: usize,
        k: u64,
        last: bool,
    ) -> Option<(EpochRecord, Vec<ServerSetting>)> {
        loop {
            let msg = {
                let w = self.workers[r].as_ref()?;
                match w.msg_rx.recv() {
                    Ok(RackWireMsg::Snapshot(s)) => {
                        self.rack_states[r] = Some(*s);
                        continue;
                    }
                    Ok(RackWireMsg::Report(rec, settings)) => return Some((*rec, settings)),
                    Ok(RackWireMsg::Died(m)) => m,
                    Err(_) => format!("rack {r} worker exited during epoch {k}"),
                }
            };
            if !self.handle_death(r, k, msg, DeathPhase::Tick { last }) {
                return None;
            }
        }
    }
}

/// Write the whole-daemon v2 snapshot. Shares the single-rack
/// flush-before-snapshot invariant: every epoch the snapshot believes
/// executed is already durable in the metrics file, so a stalled sink
/// skips the snapshot too.
fn write_dc_snapshot(driver: &mut ServeDriver, run: &DcRun) {
    if !driver.metrics.drain() {
        return;
    }
    let Some(path) = &driver.snapshot_path else {
        return;
    };
    let snap = ServeSnapshot {
        schema: SERVE_SCHEMA_V2.to_string(),
        fingerprint: driver.cfg_fingerprint.clone(),
        cfg: driver.cfg.clone(),
        options: driver.opts.clone(),
        state: None,
        racks: run.rack_states.clone(),
        dc: Some(run.dc.clone()),
        serve: driver.side.clone(),
    };
    let Ok(text) = serde_json::to_string(&snap) else {
        return;
    };
    let _ = write_atomic(path, &text);
}

/// Sum the per-rack records into the site aggregate line (SoC is
/// averaged). Every field derives from the rack records alone, so the
/// aggregate is byte-identical whenever the per-rack records are.
/// `None` when no rack reported (all quarantined).
fn aggregate_reports(reports: &[Option<(EpochRecord, Vec<ServerSetting>)>]) -> Option<EpochRecord> {
    let mut it = reports.iter().flatten();
    let (first, _) = it.next()?;
    let mut agg = *first;
    let mut n = 1u32;
    for (rec, _) in it {
        agg.re_supply_w += rec.re_supply_w;
        agg.re_used_w += rec.re_used_w;
        agg.battery_w += rec.battery_w;
        agg.demand_w += rec.demand_w;
        agg.battery_soc += rec.battery_soc;
        agg.offered_rps += rec.offered_rps;
        agg.goodput_rps += rec.goodput_rps;
        agg.sprinting_servers = agg.sprinting_servers.saturating_add(rec.sprinting_servers);
        agg.live_servers = agg.live_servers.saturating_add(rec.live_servers);
        agg.safe_mode |= rec.safe_mode;
        agg.ladder_level = agg.ladder_level.max(rec.ladder_level);
        n += 1;
    }
    agg.battery_soc /= f64::from(n);
    Some(agg)
}

/// The multi-rack serve loop: drives the site tick once per epoch, the
/// conserved routing factors between the rack workers, the supervision
/// ladder over their deaths, and the aggregate + per-rack metrics
/// fan-out. See DESIGN.md §8b for the thread/ownership picture.
fn run_multi_rack(
    mut driver: ServeDriver,
    resume_dc: Option<ServeDcSideState>,
    resume_racks: Vec<Option<LoopState>>,
    resumed_from: Option<u64>,
    n_epochs: u64,
    net_plane: Option<NetPlane>,
) -> Result<ServeSummary, ServeError> {
    let n_racks = driver.opts.racks as usize;
    let n_servers = driver.cfg.green.green_servers;
    let rack_servers = vec![n_servers; n_racks];
    let every = if driver.opts.rack_snapshot_every > 0 {
        driver.opts.rack_snapshot_every
    } else {
        driver.opts.snapshot_every
    };
    // A homogeneous fleet of the served config with the broker's
    // decorrelated-but-reproducible per-rack seed derivation.
    let rack_cfgs: Vec<EngineConfig> = (0..n_racks)
        .map(|i| EngineConfig {
            seed: driver.cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9),
            ..driver.cfg.clone()
        })
        .collect();

    let (mut dc, rack_states) = match resume_dc {
        Some(dc) => {
            if resume_racks.len() != n_racks
                || dc.health.len() != n_racks
                || dc.beliefs.len() != n_racks
            {
                return Err(ServeError::Snapshot(
                    "snapshot rack states do not match the embedded rack count".to_string(),
                ));
            }
            if dc.rows.len() as u64 != dc.next_epoch {
                return Err(ServeError::Snapshot(
                    "snapshot directive log is not aligned with its resume epoch".to_string(),
                ));
            }
            for (r, s) in resume_racks.iter().enumerate() {
                if dc.health[r] != RackHealth::Quarantined
                    && s.as_ref().map(|st| st.next_epoch) != Some(dc.next_epoch)
                {
                    return Err(ServeError::Snapshot(format!(
                        "rack {r} state is not aligned with the snapshot epoch"
                    )));
                }
            }
            (dc, resume_racks)
        }
        None => (
            ServeDcSideState {
                beliefs: (0..n_racks)
                    .map(|_| RackBelief::initial(n_servers))
                    .collect(),
                health: vec![RackHealth::Live; n_racks],
                restarts_used: vec![0; n_racks],
                probation_left: vec![0; n_racks],
                ..ServeDcSideState::default()
            },
            (0..n_racks).map(|_| None).collect(),
        ),
    };
    let start_k = dc.next_epoch;
    let sup = RackSupervisor::restore(
        driver.opts.rack_restarts,
        std::mem::take(&mut dc.health),
        std::mem::take(&mut dc.restarts_used),
        std::mem::take(&mut dc.probation_left),
    );
    let workers: Vec<Option<RackWorker>> = (0..n_racks)
        .map(|r| {
            (!sup.quarantined(r))
                .then(|| spawn_rack_worker(&rack_cfgs[r], rack_states[r].clone(), every))
        })
        .collect();
    let mut run = DcRun {
        rack_cfgs,
        every,
        workers,
        rack_states,
        sup,
        dc,
    };

    let start_t = SimTime::from_secs_f64(driver.cfg.burst_start_hour * 3_600.0);
    let epoch_d = driver.cfg.epoch;

    for k in start_k..n_epochs {
        // Boundary: collect every live rack's capture, then write the
        // whole-daemon v2 snapshot — same cadence, mutually consistent.
        if run.every > 0 && k > start_k && k % run.every == 0 {
            for r in 0..n_racks {
                if run.sup.quarantined(r) {
                    continue;
                }
                let msg = {
                    let Some(w) = run.workers[r].as_ref() else {
                        continue;
                    };
                    match w.msg_rx.recv() {
                        Ok(RackWireMsg::Snapshot(s)) => {
                            run.rack_states[r] = Some(*s);
                            continue;
                        }
                        Ok(RackWireMsg::Report(..)) => format!(
                            "protocol error: rack {r} sent telemetry in place of its epoch {k} \
                             boundary capture"
                        ),
                        Ok(RackWireMsg::Died(m)) => m,
                        Err(_) => {
                            format!("rack {r} worker exited at the epoch {k} snapshot boundary")
                        }
                    }
                };
                // Restarted (capture re-taken by the replay) or
                // quarantined — either way this rack is settled.
                let _ = run.handle_death(r, k, msg, DeathPhase::Boundary);
            }
            run.dc.next_epoch = k;
            run.sync_supervisor();
            write_dc_snapshot(&mut driver, &run);
        }

        // One site tick for the whole fleet: deadline/watchdog, feed
        // sampling, staleness, heartbeat.
        let t = start_t + SimDuration::from_micros(epoch_d.as_micros() * k);
        let tick = driver.tick_directive(k, t);

        // Admin plane: re-admissions first (a lifted rack catches up and
        // takes this epoch's directive), then kill marks.
        let (kills, readmits) = driver
            .net
            .as_ref()
            .map_or((Vec::new(), Vec::new()), |n| n.shared.take_rack_requests());
        for r in readmits {
            let r = r as usize;
            if r < n_racks && run.sup.quarantined(r) {
                run.sup.lift_quarantine(r);
                run.dc.events.push(format!(
                    "epoch {k}: admin re-admitted rack {r}; replaying from its last snapshot"
                ));
                match run.catch_up(r, k) {
                    Ok(w) => run.workers[r] = Some(w),
                    Err(m) => {
                        let _ = run.handle_death(r, k, m, DeathPhase::PreTick);
                    }
                }
            }
        }
        let mut admin_kill = vec![false; n_racks];
        for r in kills {
            let r = r as usize;
            if r < n_racks && !run.sup.quarantined(r) {
                admin_kill[r] = true;
                run.dc
                    .events
                    .push(format!("epoch {k}: admin kill for rack {r}"));
            }
        }

        // Drain decision at the top of the tick so the directives can
        // carry it (a directive already dispatched cannot be recalled).
        let last = TERM_REQUESTED.load(Ordering::SeqCst)
            || driver
                .net
                .as_ref()
                .is_some_and(|n| n.shared.drain_requested())
            || driver
                .drain_after
                .is_some_and(|d| driver.executed_this_run + 1 >= d);

        // Conserved routing factors from the last settled beliefs, and
        // the directive row every restart replay will reproduce.
        let factors = conserved_factors(&run.dc.beliefs, &rack_servers, run.dc.has_telemetry);
        if factors.iter().any(|&f| f <= REROUTE_EPS)
            && factors.iter().any(|&f| f > 1.0 + REROUTE_EPS)
        {
            run.dc.rerouted_epochs += 1;
        }
        run.dc.rows.push(DirectiveRow {
            supply_w: tick.supply_w,
            stale: tick.telemetry_stale,
            demote: tick.demote.clone(),
            factors,
        });
        debug_assert_eq!(run.dc.rows.len() as u64, k + 1);

        // Dispatch, then collect in rack order. Injected faults ride the
        // directive so the worker dies *before* executing the epoch —
        // the restart replays it identically and the stream never forks.
        for (r, &kill) in admin_kill.iter().enumerate() {
            if run.sup.quarantined(r) {
                continue;
            }
            let inject = driver
                .opts
                .disturbances
                .as_ref()
                .and_then(|p| {
                    if p.rack_stall_at(k, r as u32) {
                        Some(format!("injected rack stall at epoch {k}"))
                    } else if p.rack_panic_at(k, r as u32) {
                        Some(format!("injected rack panic at epoch {k}"))
                    } else {
                        None
                    }
                })
                .or_else(|| kill.then(|| format!("admin kill at epoch {k}")));
            let d = directive_from_row(&run.dc.rows[k as usize], r, last, inject);
            if let Some(w) = run.workers[r].as_ref() {
                // A send to a just-died worker surfaces at collection.
                let _ = w.dir_tx.send(d);
            }
        }
        let mut reports: Vec<Option<(EpochRecord, Vec<ServerSetting>)>> =
            (0..n_racks).map(|_| None).collect();
        for (r, slot) in reports.iter_mut().enumerate() {
            if !run.sup.quarantined(r) {
                *slot = run.collect_report(r, k, last);
            }
        }

        // Settle beliefs (quarantined racks stay dark) and walk the
        // probation ladder on clean epochs.
        for (r, rep) in reports.iter().enumerate() {
            if let Some((rec, _)) = rep {
                run.dc.beliefs[r] = RackBelief {
                    re_supply_w: rec.re_supply_w,
                    battery_soc: rec.battery_soc,
                    live_servers: usize::from(rec.live_servers),
                    demand_w: rec.demand_w,
                    goodput_rps: rec.goodput_rps,
                    stale: false,
                };
                if run.sup.record_clean_epoch(r) {
                    run.dc
                        .events
                        .push(format!("epoch {k}: rack {r} finished probation; live"));
                }
            }
        }
        run.dc.has_telemetry = true;

        // Actuate the site's concatenated settings, emit the aggregate
        // line, then the per-rack topic lines (hub/ring only).
        let mut all_settings: Vec<ServerSetting> = Vec::with_capacity(n_racks * n_servers);
        for rep in &reports {
            match rep {
                Some((_, settings)) => {
                    all_settings.extend(settings.iter().copied());
                    let missing = n_servers.saturating_sub(settings.len());
                    all_settings.extend(std::iter::repeat_n(ServerSetting::normal(), missing));
                }
                None => {
                    all_settings.extend(std::iter::repeat_n(ServerSetting::normal(), n_servers))
                }
            }
        }
        let retries_before = driver.side.actuation_retries;
        let failures_before = driver.side.actuation_failures;
        let clamped_before = driver.side.control_clamped;
        driver.actuate(k, &all_settings);
        if let Some(agg) = aggregate_reports(&reports) {
            driver.emit_record(
                k,
                &agg,
                driver.side.actuation_retries - retries_before,
                driver.side.actuation_failures - failures_before,
                driver.side.control_clamped - clamped_before,
            );
            if k >= driver.emit_from {
                if let Some(net) = &driver.net {
                    for (r, rep) in reports.iter().enumerate() {
                        if let Some((rec, _)) = rep {
                            if let Some(json) = rack_metrics_line(r, k, rec) {
                                net.shared.publish(k, json);
                            }
                        }
                    }
                }
            }
        }
        driver.executed_this_run += 1;
        driver.epochs_executed += 1;

        // Site conservation audit: the factor row must route exactly the
        // fleet's load, and a dark rack must draw nothing.
        let mut aud =
            InvariantAuditor::with_violations(std::mem::take(&mut run.dc.site_audit_violations));
        aud.check_site_epoch(&SiteFlows {
            epoch_index: k as usize,
            factors: run.dc.rows[k as usize].factors.clone(),
            dark: run.dc.beliefs.iter().map(|b| b.live_servers == 0).collect(),
            rack_demand_w: run.dc.beliefs.iter().map(|b| b.demand_w).collect(),
        });
        run.dc.site_audit_violations = aud.into_violations();

        // Live rack-health mirror for the admin STATUS verb (runtime
        // observability only — never enters the deterministic stream).
        if let Some(net) = &driver.net {
            net.shared.set_rack_status(
                (0..n_racks)
                    .map(|r| RackStat {
                        rack: r as u32,
                        health: run.sup.health[r].to_string(),
                        restarts: run.sup.restarts_used[r],
                        factor: run.dc.rows[k as usize]
                            .factors
                            .get(r)
                            .copied()
                            .unwrap_or(0.0),
                    })
                    .collect(),
            );
        }

        run.dc.next_epoch = k + 1;
        if last {
            for r in 0..n_racks {
                if !run.sup.quarantined(r) {
                    run.await_drain_capture(r, k);
                }
            }
            driver.drained = true;
            run.sync_supervisor();
            write_dc_snapshot(&mut driver, &run);
            break;
        }
        driver.pace(Duration::from_secs_f64(driver.epoch_secs));
    }

    // Join the fleet for its outcomes (quarantined racks have none).
    let mut rack_outs: Vec<Option<BurstOutcome>> = (0..n_racks).map(|_| None).collect();
    for (r, out) in rack_outs.iter_mut().enumerate() {
        if let Some(w) = run.workers[r].take() {
            drop(w.dir_tx);
            if let Ok(Some(o)) = w.handle.join() {
                *out = Some(o);
            }
        }
    }

    driver.metrics.drain();
    let net_summary = net_plane.map(NetPlane::stop);
    let drained = driver.drained;

    // Floor judgment: replay each surviving rack's directive history
    // under Strategy::Normal for a like-for-like baseline. A drained
    // run's truncated window has none, exactly as single-rack — and a
    // resumed run's outcomes cover only the tail window, so they have
    // no comparable full-window baseline either.
    let mut per_rack: Vec<(usize, BurstOutcome)> = Vec::new();
    let mut floor_all = true;
    let mut floor_any = false;
    let mut scratch = EngineScratch::new();
    for (r, out) in rack_outs.into_iter().enumerate() {
        let Some(main) = out else { continue };
        if drained || start_k > 0 {
            per_rack.push((r, main));
            continue;
        }
        let profiles = ProfileTable::cached(run.rack_cfgs[r].app);
        let mut hooks = RowReplayHooks {
            rows: &run.dc.rows,
            rack: r,
        };
        let (baseline, _monitor, _policy) = run_once_resumable(
            &run.rack_cfgs[r],
            Strategy::Normal,
            profiles,
            None,
            0,
            &mut |_| {},
            &mut scratch,
            &mut hooks,
        );
        let judged = judge(&run.rack_cfgs[r], main, Some(baseline));
        floor_all &= judged.floor_held;
        floor_any = true;
        per_rack.push((r, judged));
    }
    let floor_held = (!drained && floor_any).then_some(floor_all);

    let audit_violations = run.dc.site_audit_violations.len()
        + per_rack
            .iter()
            .map(|(_, o)| o.audit_violations.len())
            .sum::<usize>();
    let mut guardrail_events = Vec::new();
    for (r, o) in &per_rack {
        guardrail_events.extend(o.guardrail_events.iter().map(|e| format!("rack {r}: {e}")));
    }
    let mean_goodput_rps = if per_rack.is_empty() {
        0.0
    } else {
        per_rack
            .iter()
            .map(|(_, o)| o.mean_goodput_rps)
            .sum::<f64>()
            / per_rack.len() as f64
    };

    Ok(ServeSummary {
        epochs_executed: driver.epochs_executed,
        resumed_from_epoch: resumed_from,
        drained,
        ticks: driver.side.ticks,
        overrun_ticks: driver.side.overrun_ticks,
        stale_epochs: driver.side.stale_epochs,
        safe_mode_epochs: per_rack
            .iter()
            .map(|(_, o)| o.safe_mode_epochs)
            .max()
            .unwrap_or(0),
        dropped_metrics_lines: driver.side.dropped_metrics_lines,
        actuation_retries: driver.side.actuation_retries,
        actuation_failures: driver.side.actuation_failures,
        control_clamped: driver.side.control_clamped,
        feed_malformed: driver.side.feed_malformed,
        audit_violations,
        ladder_level: per_rack
            .iter()
            .map(|(_, o)| o.ladder_level)
            .max()
            .unwrap_or(0),
        guardrail_events,
        floor_held,
        mean_goodput_rps,
        watchdog_stalls: driver.side.watchdog_stalls,
        racks: driver.opts.racks,
        rack_restarts: run.dc.rack_restarts,
        rack_panics: run.dc.rack_panics_seen,
        rack_stalls: run.dc.rack_stalls_seen,
        racks_quarantined: run.dc.racks_quarantined,
        rerouted_epochs: run.dc.rerouted_epochs,
        rack_health: run.sup.health.clone(),
        rack_events: run.dc.events.clone(),
        net: net_summary,
    })
}

/// Run the serve daemon to completion (or drain). See the module docs
/// for the architecture; the CLI wraps this with flag parsing and exit
/// codes.
pub fn serve(mut args: ServeArgs) -> Result<ServeSummary, ServeError> {
    // The snapshot layer requires analytic measurement; serve inherits
    // the constraint (and documents it) rather than offering a mode that
    // cannot restart.
    args.cfg.measurement = MeasurementMode::Analytic;
    args.cfg
        .validate()
        .map_err(|e| ServeError::Config(e.to_string()))?;

    // Resume: the snapshot's embedded config and options win wholesale.
    // A v1 snapshot carries one engine state; a v2 snapshot carries the
    // per-rack states plus the datacenter-side orchestrator state.
    let mut resume_state: Option<LoopState> = None;
    let mut resume_racks: Vec<Option<LoopState>> = Vec::new();
    let mut resume_dc: Option<ServeDcSideState> = None;
    let mut side = ServeSideState::default();
    let mut resumed_from = None;
    if let Some(path) = &args.resume_path {
        let text = fs::read_to_string(path)
            .map_err(|e| ServeError::Snapshot(format!("cannot read {}: {e}", path.display())))?;
        let snap = ServeSnapshot::from_json(&text)?;
        let mut cfg = snap.cfg;
        cfg.measurement = MeasurementMode::Analytic;
        args.cfg = cfg;
        args.options = snap.options;
        match snap.dc {
            Some(dc) => {
                resumed_from = Some(dc.next_epoch);
                resume_racks = snap.racks;
                resume_dc = Some(dc);
            }
            None => {
                let state = snap.state.ok_or_else(|| {
                    ServeError::Snapshot(
                        "single-rack snapshot is missing its engine state".to_string(),
                    )
                })?;
                resumed_from = Some(state.next_epoch);
                resume_state = Some(state);
            }
        }
        side = snap.serve;
    }
    if args.options.overrun == OverrunPolicy::Degrade && !args.cfg.guardrail.enabled {
        return Err(ServeError::Config(
            "--overrun degrade needs the failover ladder: pass --guardrail on".to_string(),
        ));
    }
    if args.options.racks == 0 {
        return Err(ServeError::Config("--racks must be at least 1".to_string()));
    }
    let n_racks = args.options.racks as usize;
    if resumed_from.is_some() && (n_racks >= 2) != resume_dc.is_some() {
        return Err(ServeError::Snapshot(
            "snapshot schema does not match the rack count it was taken with".to_string(),
        ));
    }
    if n_racks >= 2 && matches!(args.control, ControlBackend::Sysfs(_)) {
        return Err(ServeError::Config(
            "--control sysfs drives one physical rack; it cannot serve --racks >= 2".to_string(),
        ));
    }

    // Multi-rack runs actuate the site's concatenated settings.
    let n = args.cfg.green.green_servers * n_racks;
    let n_epochs = args
        .cfg
        .burst_duration
        .div_duration(args.cfg.epoch)
        .ok_or_else(|| ServeError::Config("burst duration must be whole epochs".to_string()))?;

    // Durable-metrics reconciliation: emission restarts one line after
    // the last complete line already on disk. The flush-before-snapshot
    // invariant guarantees last_epoch >= next_epoch - 1; anything less
    // means the file was tampered with — warn, then emit the gap's
    // epochs fresh (they are recomputed identically anyway).
    let mut emit_from = 0u64;
    if resumed_from.is_none() {
        // A fresh start owns its metrics file: stale lines from an
        // earlier run would corrupt the byte-identity contract.
        if let Some(path) = &args.metrics_path {
            if path.exists() {
                fs::write(path, "")?;
            }
        }
    } else {
        if let Some(path) = &args.metrics_path {
            if let Some(last) = prepare_metrics_for_resume(path)? {
                emit_from = last + 1;
            }
        }
        let next = resumed_from.unwrap_or(0);
        if emit_from < next {
            eprintln!(
                "serve: warning: metrics file ends at epoch {} but snapshot resumes at {} — \
                 re-emitting the missing lines",
                emit_from as i64 - 1,
                next
            );
        }
    }

    let feed = match &args.feed_path {
        Some(p) => Some(open_feed(p, args.sim_time)?),
        None => None,
    };

    // The network plane starts after the fresh-start metrics truncation
    // above, so `?from_epoch=` replay can never serve a stale run's
    // lines. Telemetry frames flow through a bounded channel; overflow
    // is counted by the plane, never blocking a sender or the loop.
    let mut net_plane: Option<NetPlane> = None;
    let mut net_handle: Option<NetHandle> = None;
    if let Some(netcfg) = &args.net {
        netcfg.validate().map_err(ServeError::Config)?;
        let (tx, rx) = mpsc::sync_channel(1024);
        let plane = NetPlane::start(netcfg, tx, args.metrics_path.clone())?;
        if let Some(a) = plane.addrs.listen {
            eprintln!("serve: listening on {a}");
        }
        if let Some(a) = plane.addrs.metrics {
            eprintln!("serve: metrics listener on {a}");
        }
        net_handle = Some(NetHandle {
            shared: plane.shared(),
            rx,
        });
        net_plane = Some(plane);
    }

    let controls: Vec<FlakyControl<AnyControl>> = match &args.control {
        ControlBackend::None => Vec::new(),
        ControlBackend::Sim => (0..n)
            .map(|_| FlakyControl::new(AnyControl::Sim(SimControl::new())))
            .collect(),
        ControlBackend::Sysfs(root) => (0..n)
            .map(|i| {
                let dir = root.join(format!("server{i}"));
                let c = if dir.join("cpu0").exists() {
                    SysfsControl::new(&dir)
                } else {
                    SysfsControl::create_fake_tree(&dir)?
                };
                Ok(FlakyControl::new(AnyControl::Sysfs(c)))
            })
            .collect::<Result<_, std::io::Error>>()?,
    };
    if side.fail_streaks.len() != n {
        side.fail_streaks = vec![0; n];
    }

    install_sigterm_handler();
    TERM_REQUESTED.store(false, Ordering::SeqCst);

    let epoch_secs = args.cfg.epoch.as_secs_f64();
    let mut driver = ServeDriver {
        cfg_fingerprint: serve_fingerprint(&args.cfg),
        cfg: args.cfg.clone(),
        sim_time: args.sim_time,
        rate: args.rate,
        throttle: Duration::from_millis(args.throttle_ms),
        tick_budget: args.tick_budget_ms.map(Duration::from_millis),
        tick_started: None,
        feed,
        net: net_handle,
        metrics: MetricsSink::new(args.metrics_path.clone(), args.options.metrics_buffer),
        heartbeat_path: args.heartbeat_path.clone(),
        snapshot_path: args.snapshot_path.clone(),
        controls,
        emit_from,
        drain_after: args.drain_after_epochs,
        executed_this_run: 0,
        epochs_executed: resumed_from.unwrap_or(0),
        drained: false,
        cur_stale: false,
        cur_overrun: false,
        epoch_secs,
        opts: args.options.clone(),
        side,
    };

    if n_racks >= 2 {
        return run_multi_rack(
            driver,
            resume_dc,
            resume_racks,
            resumed_from,
            n_epochs,
            net_plane,
        );
    }

    let profiles = ProfileTable::cached(args.cfg.app);
    let mut scratch = EngineScratch::new();
    let (outcome, _monitor, _policy) = run_once_resumable(
        &args.cfg,
        args.cfg.strategy,
        profiles,
        resume_state,
        args.options.snapshot_every,
        &mut |_| {},
        &mut scratch,
        &mut driver,
    );

    // Whatever the loop left buffered goes out now; a run that ends
    // cleanly (or drains) leaves no line hostage to the buffer.
    driver.metrics.drain();

    // Stop the plane after the final drain: subscribers get every
    // emitted line flushed before the FIN, reader connections are
    // slammed, every thread joins (bounded by the connection timeouts).
    let net_summary = net_plane.map(NetPlane::stop);

    let drained = driver.drained || outcome.epochs.len() < n_epochs as usize;
    // Floor judgment needs a like-for-like Normal baseline; a drained
    // run's truncated window has none, so the field stays None there.
    let judged = if drained {
        None
    } else {
        let baseline = run_once(&args.cfg, Strategy::Normal, profiles, &mut scratch).0;
        Some(judge(&args.cfg, outcome.clone(), Some(baseline)))
    };
    let floor_held = judged.as_ref().map(|j| j.floor_held);
    let report = judged.unwrap_or(outcome);

    Ok(ServeSummary {
        epochs_executed: driver.epochs_executed,
        resumed_from_epoch: resumed_from,
        drained,
        ticks: driver.side.ticks,
        overrun_ticks: driver.side.overrun_ticks,
        stale_epochs: driver.side.stale_epochs,
        safe_mode_epochs: report.safe_mode_epochs,
        dropped_metrics_lines: driver.side.dropped_metrics_lines,
        actuation_retries: driver.side.actuation_retries,
        actuation_failures: driver.side.actuation_failures,
        control_clamped: driver.side.control_clamped,
        feed_malformed: driver.side.feed_malformed,
        audit_violations: report.audit_violations.len(),
        ladder_level: report.ladder_level,
        guardrail_events: report.guardrail_events.clone(),
        floor_held,
        mean_goodput_rps: report.mean_goodput_rps,
        watchdog_stalls: driver.side.watchdog_stalls,
        racks: 1,
        rack_restarts: 0,
        rack_panics: 0,
        rack_stalls: 0,
        racks_quarantined: 0,
        rerouted_epochs: 0,
        rack_health: Vec::new(),
        rack_events: Vec::new(),
        net: net_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disturbance_plan_is_a_pure_function_of_seed() {
        let a = DisturbancePlan::generate(42, 100);
        let b = DisturbancePlan::generate(42, 100);
        assert_eq!(a, b);
        let c = DisturbancePlan::generate(43, 100);
        assert_ne!(a, c, "different seeds should differ");
        // Lists come back sorted + deduplicated so binary_search lookups hold.
        for list in [&a.stale, &a.overruns, &a.stalls] {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "{list:?}");
            assert!(list.iter().all(|&k| k < 100));
        }
        // Every category is non-empty: a generated plan always exercises
        // each robustness path at least once.
        assert!(!a.stale.is_empty() && !a.overruns.is_empty());
        assert!(!a.stalls.is_empty() && !a.actuation.is_empty());
    }

    #[test]
    fn disturbance_plan_survives_a_json_roundtrip() {
        let plan = DisturbancePlan::generate(7, 30);
        let json = serde_json::to_string(&plan).unwrap();
        let back: DisturbancePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn metrics_sink_drops_oldest_and_counts() {
        let mut sink = MetricsSink::new(None, 3);
        assert_eq!(sink.push("a".into()), 0);
        assert_eq!(sink.push("b".into()), 0);
        assert_eq!(sink.push("c".into()), 0);
        assert_eq!(sink.push("d".into()), 1, "capacity 3: the oldest goes");
        assert_eq!(
            sink.buf.iter().cloned().collect::<Vec<_>>(),
            vec!["b", "c", "d"],
            "drop-oldest keeps the newest lines"
        );
    }

    #[test]
    fn metrics_sink_unwritable_path_keeps_lines_buffered() {
        let dir = std::env::temp_dir().join("gs_serve_sink_test_dir");
        let _ = fs::create_dir_all(&dir);
        // The path is a directory: open-for-append fails, drain reports
        // the stall, and nothing is lost from the buffer.
        let mut sink = MetricsSink::new(Some(dir.clone()), 8);
        sink.push("line".into());
        assert!(!sink.drain());
        assert_eq!(sink.buf.len(), 1, "failed drain must not discard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_never_expose_a_torn_file() {
        let dir = std::env::temp_dir().join("gs_serve_atomic_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("heartbeat.json");
        // Two payloads of very different lengths: a torn write would
        // show a prefix of the long one or a mix of both.
        let short = "{\"epoch\":1}\n".to_string();
        let long = format!("{{\"epoch\":2,\"pad\":\"{}\"}}\n", "x".repeat(4096));
        write_atomic(&path, &short).unwrap();
        let writer = {
            let (path, short, long) = (path.clone(), short.clone(), long.clone());
            std::thread::spawn(move || {
                for i in 0..200 {
                    let payload = if i % 2 == 0 { &long } else { &short };
                    write_atomic(&path, payload).unwrap();
                }
            })
        };
        let mut reads = 0u32;
        while !writer.is_finished() {
            let text = fs::read_to_string(&path).unwrap();
            assert!(
                text == short || text == long,
                "torn heartbeat observed ({} bytes)",
                text.len()
            );
            reads += 1;
        }
        writer.join().unwrap();
        assert!(reads > 0, "the reader must actually race the writer");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_trims_a_torn_metrics_tail() {
        let path = std::env::temp_dir().join("gs_serve_trim_test.jsonl");
        fs::write(
            &path,
            "{\"epoch\":0,\"x\":1}\n{\"epoch\":1,\"x\":2}\n{\"epoch\":2,\"x\"",
        )
        .unwrap();
        let last = prepare_metrics_for_resume(&path).unwrap();
        assert_eq!(last, Some(1), "the torn line does not count");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("{\"epoch\":1,\"x\":2}\n"), "{text:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_of_a_missing_metrics_file_is_a_fresh_stream() {
        let path = std::env::temp_dir().join("gs_serve_no_such_file.jsonl");
        let _ = fs::remove_file(&path);
        assert_eq!(prepare_metrics_for_resume(&path).unwrap(), None);
    }

    #[test]
    fn serve_snapshot_rejects_schema_and_fingerprint_drift() {
        let dir = std::env::temp_dir().join("gs_serve_snaptest");
        let _ = fs::create_dir_all(&dir);
        let snap_path = dir.join("snap.json");
        let args = ServeArgs {
            snapshot_path: Some(snap_path.clone()),
            drain_after_epochs: Some(1),
            ..ServeArgs::default()
        };
        let summary = serve(args).expect("drain serve runs");
        assert!(summary.drained);
        let json = fs::read_to_string(&snap_path).unwrap();
        let snap = ServeSnapshot::from_json(&json).expect("a real snapshot verifies");
        assert_eq!(snap.state.as_ref().expect("v1 state").next_epoch, 1);

        let bad_schema = json.replacen(SERVE_SCHEMA, "gs-serve-0", 1);
        assert!(matches!(
            ServeSnapshot::from_json(&bad_schema),
            Err(ServeError::Snapshot(_))
        ));

        let mut tampered: ServeSnapshot = serde_json::from_str(&json).unwrap();
        tampered.fingerprint = "0000000000000000".to_string();
        let tampered_json = serde_json::to_string(&tampered).unwrap();
        assert!(matches!(
            ServeSnapshot::from_json(&tampered_json),
            Err(ServeError::Snapshot(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degrade_without_guardrail_is_a_config_error() {
        let args = ServeArgs {
            options: ServeOptions {
                overrun: OverrunPolicy::Degrade,
                ..ServeOptions::default()
            },
            ..ServeArgs::default()
        };
        assert!(matches!(serve(args), Err(ServeError::Config(_))));
    }
}
