//! Supervised sweep execution: panic isolation, bounded retries, epoch
//! budgets, and journal-backed resume.
//!
//! The plain executor ([`crate::sweep::run_sweep`]) is the fast path for
//! trusted grids: a panicking task kills the whole run. Long campaigns
//! want the opposite trade — one poisoned cell must not cost a night of
//! finished work. The supervisor wraps each task in `catch_unwind`,
//! retries it a bounded number of times with a deterministic backoff, and
//! records tasks that still fail as [`SweepOutcome::Failed`] instead of
//! aborting their siblings.
//!
//! Task "timeouts" are deterministic epoch budgets, not wall clocks: the
//! total number of scheduling epochs a task will execute is a pure
//! function of its configuration ([`epoch_budget`]), so an over-budget
//! task is rejected up front — same verdict on every machine and every
//! run, which keeps supervised sweeps bit-identical across worker counts.
//!
//! Everything the supervisor learns goes into a [`SweepReport`] side
//! channel; [`SweepResult`] records stay byte-identical to unsupervised
//! runs, so journals and golden outputs do not fork.

use crate::checkpoint::Journal;
use crate::sweep::{derive_seed, SweepOutcome, SweepPoint, SweepResult, SweepTask};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// How the supervisor treats misbehaving tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Re-attempts after a panicking first try (0 = fail immediately).
    pub max_retries: u32,
    /// Epoch budget per task (strategy plus baseline run); a task whose
    /// configured epoch count exceeds this is failed without running.
    /// 0 disables the budget.
    pub task_timeout_epochs: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 2,
            task_timeout_epochs: 0,
        }
    }
}

/// One retried task, for the end-of-run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// Task index in the submitted point list.
    pub index: usize,
    /// The point's label.
    pub label: String,
    /// Attempts actually made (first try included).
    pub attempts: u32,
}

/// One permanently failed task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// Task index in the submitted point list.
    pub index: usize,
    /// The point's label.
    pub label: String,
    /// Why it failed (last panic message or the budget verdict).
    pub error: String,
}

/// What happened around the results: the supervisor's side channel, kept
/// out of [`SweepResult`] so supervised output stays byte-identical to
/// unsupervised output.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Tasks that completed (including after retries).
    pub completed: usize,
    /// Tasks that needed more than one attempt but eventually completed.
    pub retried: Vec<RetryRecord>,
    /// Tasks recorded as [`SweepOutcome::Failed`].
    pub failed: Vec<FailureRecord>,
    /// Indices skipped because the journal already held their result.
    pub skipped: Vec<usize>,
}

impl SweepReport {
    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "{} completed, {} retried, {} failed, {} skipped (already journaled)",
            self.completed,
            self.retried.len(),
            self.failed.len(),
            self.skipped.len()
        )
    }
}

/// The total scheduling epochs a task will execute: its window length in
/// epochs, doubled for the Normal-baseline pass every non-Normal task
/// runs. A pure function of the configuration — the deterministic stand-in
/// for a wall-clock timeout.
pub fn epoch_budget(task: &SweepTask) -> u64 {
    let (window_epochs, runs) = match task {
        SweepTask::Burst(cfg) => {
            let epochs = cfg
                .burst_duration
                .div_duration(cfg.epoch)
                .unwrap_or(u64::MAX);
            let runs = if cfg.strategy == crate::pmk::Strategy::Normal {
                1
            } else {
                2
            };
            (epochs, runs)
        }
        SweepTask::Campaign(cfg) => {
            let window = gs_sim::SimDuration::from_hours(u64::from(cfg.days) * 24);
            // Campaigns always run strategy + Normal baseline.
            (window.div_duration(cfg.engine.epoch).unwrap_or(u64::MAX), 2)
        }
    };
    window_epochs.saturating_mul(runs)
}

/// Deterministic backoff before retry `attempt` (1-based), in
/// milliseconds. Pure function of the attempt number — wall-clock only,
/// never part of any result.
pub fn backoff_ms(attempt: u32) -> u64 {
    25u64.saturating_mul(1 << attempt.min(6))
}

/// Run one task under supervision: budget check, catch_unwind isolation,
/// bounded retries. Returns the outcome plus the attempts consumed.
fn run_supervised_task(
    task: &SweepTask,
    seed: u64,
    policy: &SupervisorPolicy,
) -> (SweepOutcome, u32) {
    if policy.task_timeout_epochs > 0 {
        let budget = epoch_budget(task);
        if budget > policy.task_timeout_epochs {
            return (
                SweepOutcome::Failed(format!(
                    "epoch budget exceeded: task needs {budget} epochs, limit is {}",
                    policy.task_timeout_epochs
                )),
                0,
            );
        }
    }
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match catch_unwind(AssertUnwindSafe(|| {
            crate::sweep::run_task_seeded(task, seed)
        })) {
            Ok(outcome) => return (outcome, attempt),
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                if attempt > policy.max_retries {
                    return (
                        SweepOutcome::Failed(format!(
                            "task panicked on all {attempt} attempts: {msg}"
                        )),
                        attempt,
                    );
                }
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt)));
            }
        }
    }
}

/// Extract a human-readable message from a caught panic payload.
pub fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where a supervised rack worker sits on the health ladder.
///
/// `Live → Degraded → Quarantined`: a worker death demotes the rack to
/// [`RackHealth::Degraded`] while the supervisor restarts it from its
/// last snapshot; exhausting the restart budget demotes it to
/// [`RackHealth::Quarantined`], where the broker reroutes its load to
/// survivors. A rack climbs back from `Degraded` to `Live` after
/// [`crate::engine::REJOIN_EPOCHS`] clean epochs, mirroring the fleet's
/// server-rejoin hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RackHealth {
    /// Healthy and serving fresh allocations.
    Live,
    /// Recently restarted; on probation until it proves itself.
    Degraded,
    /// Restart budget exhausted; load rerouted to survivors.
    Quarantined,
}

/// Restart bookkeeping for a fleet of supervised rack workers: the
/// health ladder, per-rack restart budgets, and the last panic message
/// seen per rack. Thread and channel orchestration stays with the
/// caller ([`mod@crate::serve`]); this type only decides *whether* a dead
/// rack may restart and tracks where each rack sits on the ladder —
/// keeping the decision logic deterministic and separately testable.
#[derive(Debug, Clone, PartialEq)]
pub struct RackSupervisor {
    /// Restarts allowed per rack before quarantine.
    pub max_restarts: u32,
    /// Per-rack ladder position.
    pub health: Vec<RackHealth>,
    /// Per-rack restarts consumed so far.
    pub restarts_used: Vec<u32>,
    /// Per-rack clean epochs still required before a `Degraded` rack is
    /// re-promoted to `Live` (0 when not on probation).
    pub probation_left: Vec<u32>,
    /// The last panic message each rack died with, if any.
    pub last_panic: Vec<Option<String>>,
}

impl RackSupervisor {
    /// A fresh supervisor for `n` live racks.
    pub fn new(n: usize, max_restarts: u32) -> Self {
        RackSupervisor {
            max_restarts,
            health: vec![RackHealth::Live; n],
            restarts_used: vec![0; n],
            probation_left: vec![0; n],
            last_panic: vec![None; n],
        }
    }

    /// Rebuild mid-run from checkpointed ladder state (lengths must
    /// agree; the caller validates rack counts against its config).
    pub fn restore(
        max_restarts: u32,
        health: Vec<RackHealth>,
        restarts_used: Vec<u32>,
        probation_left: Vec<u32>,
    ) -> Self {
        let n = health.len();
        RackSupervisor {
            max_restarts,
            health,
            restarts_used,
            probation_left,
            last_panic: vec![None; n],
        }
    }

    /// Record a worker death. Returns `true` if the rack may restart
    /// (it drops to `Degraded` and enters probation), `false` if its
    /// budget is exhausted (it is quarantined).
    pub fn record_death(&mut self, rack: usize, message: String) -> bool {
        self.last_panic[rack] = Some(message);
        self.restarts_used[rack] += 1;
        if self.restarts_used[rack] > self.max_restarts {
            self.health[rack] = RackHealth::Quarantined;
            self.probation_left[rack] = 0;
            false
        } else {
            self.health[rack] = RackHealth::Degraded;
            self.probation_left[rack] = crate::engine::REJOIN_EPOCHS;
            true
        }
    }

    /// Record one clean epoch for `rack`; a `Degraded` rack whose
    /// probation runs out is re-promoted to `Live`. Returns `true` on
    /// the epoch the promotion happens.
    pub fn record_clean_epoch(&mut self, rack: usize) -> bool {
        if self.health[rack] != RackHealth::Degraded {
            return false;
        }
        self.probation_left[rack] = self.probation_left[rack].saturating_sub(1);
        if self.probation_left[rack] == 0 {
            self.health[rack] = RackHealth::Live;
            return true;
        }
        false
    }

    /// Manually lift a quarantine (admin `RESTART-RACK`): the budget
    /// resets and the rack re-enters as `Degraded`, on probation.
    pub fn lift_quarantine(&mut self, rack: usize) {
        self.health[rack] = RackHealth::Degraded;
        self.restarts_used[rack] = 0;
        self.probation_left[rack] = crate::engine::REJOIN_EPOCHS;
    }

    /// True if `rack` is quarantined.
    pub fn quarantined(&self, rack: usize) -> bool {
        self.health[rack] == RackHealth::Quarantined
    }

    /// Racks not currently quarantined.
    pub fn live_count(&self) -> usize {
        self.health
            .iter()
            .filter(|&&h| h != RackHealth::Quarantined)
            .count()
    }
}

impl std::fmt::Display for RackHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RackHealth::Live => "live",
            RackHealth::Degraded => "degraded",
            RackHealth::Quarantined => "quarantined",
        })
    }
}

/// Run a sweep under supervision, optionally journaling each completed
/// record and skipping indices the journal already holds.
///
/// Results come back in submission order, `skip`ped indices excluded —
/// completed results are byte-identical to an unsupervised
/// [`crate::sweep::run_sweep`] of the same points. `on_result` fires in
/// completion order (for streaming output), after the record is durably
/// journaled.
///
/// Panics only if `jobs == 0`; task panics become
/// [`SweepOutcome::Failed`] records.
pub fn run_supervised_sweep(
    points: Vec<SweepPoint>,
    master_seed: u64,
    jobs: usize,
    policy: &SupervisorPolicy,
    skip: &HashSet<usize>,
    journal: Option<&mut Journal>,
    mut on_result: impl FnMut(&SweepResult),
) -> (Vec<SweepResult>, SweepReport) {
    assert!(jobs >= 1, "sweep needs at least one worker");
    let n = points.len();
    let mut report = SweepReport {
        skipped: {
            let mut s: Vec<usize> = skip.iter().copied().filter(|&i| i < n).collect();
            s.sort_unstable();
            s
        },
        ..SweepReport::default()
    };
    if n == 0 {
        return (Vec::new(), report);
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(SweepResult, u32)>();
    let points = &points;
    let next = &next;
    // The journal is written from the collector only; the Mutex satisfies
    // the borrow checker across the scope, not real contention.
    let journal = Mutex::new(journal);

    let mut results: Vec<Option<SweepResult>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if skip.contains(&i) {
                    continue;
                }
                let point = &points[i];
                let seed = derive_seed(master_seed, i as u64);
                let (outcome, attempts) = run_supervised_task(&point.task, seed, policy);
                if tx
                    .send((
                        SweepResult {
                            index: i,
                            label: point.label.clone(),
                            seed,
                            outcome,
                        },
                        attempts,
                    ))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        for (result, attempts) in rx {
            match &result.outcome {
                SweepOutcome::Failed(error) => report.failed.push(FailureRecord {
                    index: result.index,
                    label: result.label.clone(),
                    error: error.clone(),
                }),
                _ => {
                    report.completed += 1;
                    if attempts > 1 {
                        report.retried.push(RetryRecord {
                            index: result.index,
                            label: result.label.clone(),
                            attempts,
                        });
                    }
                }
            }
            if let Some(j) = journal.lock().expect("journal lock").as_mut() {
                if let Err(e) = j.append(&result) {
                    // Durability is the journal's whole job: losing it is
                    // fatal, losing one record silently is worse.
                    panic!("cannot append to journal {}: {e}", j.path().display());
                }
            }
            on_result(&result);
            let slot = result.index;
            results[slot] = Some(result);
        }
    });
    report.failed.sort_by_key(|f| f.index);
    report.retried.sort_by_key(|r| r.index);
    let results = results.into_iter().flatten().collect();
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::{EngineConfig, MeasurementMode};
    use crate::pmk::Strategy;
    use crate::sweep::run_sweep;
    use gs_sim::SimDuration;

    fn quick_cfg(strategy: Strategy) -> EngineConfig {
        EngineConfig {
            strategy,
            green: GreenConfig::re_batt(),
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        }
    }

    fn healthy_grid() -> Vec<SweepPoint> {
        [Strategy::Greedy, Strategy::Pacing, Strategy::Hybrid]
            .into_iter()
            .map(|s| SweepPoint::burst(format!("{s}"), quick_cfg(s)))
            .collect()
    }

    /// A configuration that passes nothing through `Engine::new` — the
    /// warm-policy JSON is garbage, so the run panics deterministically.
    fn poisoned_point() -> SweepPoint {
        let mut cfg = quick_cfg(Strategy::Hybrid);
        cfg.warm_policy_json = Some("not json at all".to_string());
        SweepPoint::burst("poisoned", cfg)
    }

    #[test]
    fn supervised_matches_unsupervised_byte_for_byte() {
        let want = run_sweep(healthy_grid(), 7, 2);
        for jobs in [1, 4] {
            let (got, report) = run_supervised_sweep(
                healthy_grid(),
                7,
                jobs,
                &SupervisorPolicy::default(),
                &HashSet::new(),
                None,
                |_| {},
            );
            assert_eq!(
                serde_json::to_string(&got).unwrap(),
                serde_json::to_string(&want).unwrap()
            );
            assert_eq!(report.completed, 3);
            assert!(report.retried.is_empty());
            assert!(report.failed.is_empty());
        }
    }

    #[test]
    fn a_panicking_task_fails_without_killing_siblings() {
        let mut points = healthy_grid();
        points.insert(1, poisoned_point());
        let policy = SupervisorPolicy {
            max_retries: 1,
            task_timeout_epochs: 0,
        };
        let (results, report) =
            run_supervised_sweep(points, 7, 4, &policy, &HashSet::new(), None, |_| {});
        assert_eq!(results.len(), 4);
        assert!(results[1].outcome.is_failed());
        assert!(results[1].outcome.vs_normal().is_nan());
        for i in [0, 2, 3] {
            assert!(!results[i].outcome.is_failed(), "sibling {i} was lost");
        }
        assert_eq!(report.completed, 3);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].index, 1);
        assert!(
            report.failed[0].error.contains("all 2 attempts"),
            "{}",
            report.failed[0].error
        );
        assert!(
            report.failed[0].error.contains("warm_policy_json"),
            "{}",
            report.failed[0].error
        );
    }

    #[test]
    fn zero_retries_fail_on_the_first_panic() {
        let policy = SupervisorPolicy {
            max_retries: 0,
            task_timeout_epochs: 0,
        };
        let (results, report) = run_supervised_sweep(
            vec![poisoned_point()],
            7,
            1,
            &policy,
            &HashSet::new(),
            None,
            |_| {},
        );
        assert!(results[0].outcome.is_failed());
        assert_eq!(report.completed, 0);
        assert!(report.retried.is_empty(), "nothing retried with 0 retries");
        assert_eq!(report.failed.len(), 1);
        assert!(
            report.failed[0].error.contains("all 1 attempts"),
            "{}",
            report.failed[0].error
        );
    }

    #[test]
    fn exhausted_retries_produce_identical_reports_at_any_job_count() {
        // A task that panics on every attempt must exhaust its retry
        // budget deterministically: the same failure record — attempts,
        // message, and all sibling results — at any worker count.
        let grid = || {
            let mut points = healthy_grid();
            points.insert(0, poisoned_point());
            points.push(poisoned_point());
            points
        };
        let policy = SupervisorPolicy {
            max_retries: 2,
            task_timeout_epochs: 0,
        };
        let run =
            |jobs| run_supervised_sweep(grid(), 7, jobs, &policy, &HashSet::new(), None, |_| {});
        let (want_results, want_report) = run(1);
        assert_eq!(want_report.failed.len(), 2);
        for f in &want_report.failed {
            assert!(f.error.contains("all 3 attempts"), "{}", f.error);
        }
        for jobs in [2, 4] {
            let (results, report) = run(jobs);
            assert_eq!(
                serde_json::to_string(&results).unwrap(),
                serde_json::to_string(&want_results).unwrap(),
                "{jobs} workers changed the result bytes"
            );
            assert_eq!(report.failed, want_report.failed);
            assert_eq!(report.completed, want_report.completed);
        }
    }

    #[test]
    fn over_budget_tasks_are_rejected_up_front() {
        // A 5-minute burst at 60 s epochs runs 5 + 5 = 10 epochs; a 1-day
        // campaign runs 2880. Budgeting 100 passes the burst, fails the
        // campaign deterministically — and without executing it.
        let burst = SweepPoint::burst("ok", quick_cfg(Strategy::Greedy));
        let campaign = SweepPoint::campaign(
            "big",
            CampaignConfig {
                engine: quick_cfg(Strategy::Greedy),
                days: 1,
                spikes_per_day: 2,
                peak_intensity_cores: 12,
            },
        );
        assert_eq!(epoch_budget(&burst.task), 10);
        assert_eq!(epoch_budget(&campaign.task), 2880);
        let policy = SupervisorPolicy {
            max_retries: 0,
            task_timeout_epochs: 100,
        };
        let (results, report) = run_supervised_sweep(
            vec![burst, campaign],
            7,
            2,
            &policy,
            &HashSet::new(),
            None,
            |_| {},
        );
        assert!(!results[0].outcome.is_failed());
        assert!(results[1].outcome.is_failed());
        assert_eq!(report.failed.len(), 1);
        assert!(
            report.failed[0].error.contains("epoch budget exceeded"),
            "{}",
            report.failed[0].error
        );
    }

    #[test]
    fn skip_set_resumes_without_recomputing() {
        let all = run_sweep(healthy_grid(), 7, 1);
        let skip: HashSet<usize> = [0, 2].into_iter().collect();
        let (results, report) = run_supervised_sweep(
            healthy_grid(),
            7,
            2,
            &SupervisorPolicy::default(),
            &skip,
            None,
            |_| {},
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].index, 1);
        assert_eq!(
            serde_json::to_string(&results[0]).unwrap(),
            serde_json::to_string(&all[1]).unwrap()
        );
        assert_eq!(report.skipped, vec![0, 2]);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn normal_strategy_budget_is_single_run() {
        let normal = SweepPoint::burst("n", quick_cfg(Strategy::Normal));
        assert_eq!(epoch_budget(&normal.task), 5);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff_ms(1), 50);
        assert_eq!(backoff_ms(2), 100);
        assert_eq!(backoff_ms(100), backoff_ms(6));
    }

    #[test]
    fn backoff_full_schedule_is_pinned() {
        // The complete retry-timing table: doubling from 50 ms, capped at
        // 1600 ms. Pinned exactly so a schedule change is a deliberate,
        // reviewed act — these sleeps gate how fast a flapping task can
        // burn its retry budget under serve-style epoch deadlines.
        let want = [50, 100, 200, 400, 800, 1600, 1600, 1600];
        for (i, &ms) in want.iter().enumerate() {
            assert_eq!(backoff_ms(i as u32 + 1), ms, "attempt {}", i + 1);
        }
        // Saturation: no overflow panic at absurd attempt counts.
        assert_eq!(backoff_ms(u32::MAX), 1600);
    }

    #[test]
    fn backoff_matches_control_plane_retry_schedule() {
        // The supervisor (task retries) and the control plane (actuation
        // retries) deliberately share one backoff curve, so a serve
        // deployment has a single retry-timing story to reason about.
        let policy = gs_cluster::control::RetryPolicy::default();
        for attempt in 0..10 {
            assert_eq!(
                backoff_ms(attempt),
                policy.backoff_ms(attempt),
                "schedules diverge at attempt {attempt}"
            );
        }
    }

    #[test]
    fn over_budget_tasks_consume_no_retries() {
        // Serve-style budgets reject up front: a task whose epoch budget
        // exceeds the deadline is failed before its first attempt, so the
        // retry ledger stays empty — no backoff sleeps, no wasted work.
        let policy = SupervisorPolicy {
            max_retries: 2,
            task_timeout_epochs: 4, // a 5-min Greedy burst needs 10
        };
        let (results, report) = run_supervised_sweep(
            vec![SweepPoint::burst("big", quick_cfg(Strategy::Greedy))],
            7,
            1,
            &policy,
            &HashSet::new(),
            None,
            |_| {},
        );
        assert!(results[0].outcome.is_failed());
        assert!(report.retried.is_empty(), "no attempts were made");
        assert_eq!(report.failed.len(), 1);
        assert!(
            report.failed[0].error.contains("epoch budget exceeded"),
            "{}",
            report.failed[0].error
        );
    }

    #[test]
    fn rack_ladder_walks_live_degraded_quarantined() {
        let mut sup = RackSupervisor::new(2, 1);
        assert_eq!(sup.live_count(), 2);
        assert!(sup.record_death(0, "boom".into()), "first death restarts");
        assert_eq!(sup.health[0], RackHealth::Degraded);
        assert!(
            !sup.record_death(0, "boom again".into()),
            "budget of 1 exhausted"
        );
        assert!(sup.quarantined(0));
        assert_eq!(sup.live_count(), 1);
        assert_eq!(sup.last_panic[0].as_deref(), Some("boom again"));
        sup.lift_quarantine(0);
        assert_eq!(sup.health[0], RackHealth::Degraded);
        assert_eq!(sup.restarts_used[0], 0);
    }

    #[test]
    fn zero_restart_budget_quarantines_on_first_death() {
        let mut sup = RackSupervisor::new(1, 0);
        assert!(!sup.record_death(0, "only chance".into()));
        assert!(sup.quarantined(0));
    }

    #[test]
    fn probation_repromotes_after_clean_epochs() {
        let mut sup = RackSupervisor::new(1, 3);
        assert!(sup.record_death(0, "x".into()));
        let mut promoted_at = None;
        for i in 0..crate::engine::REJOIN_EPOCHS {
            if sup.record_clean_epoch(0) {
                promoted_at = Some(i);
            }
        }
        assert_eq!(promoted_at, Some(crate::engine::REJOIN_EPOCHS - 1));
        assert_eq!(sup.health[0], RackHealth::Live);
        assert!(!sup.record_clean_epoch(0), "already live");
    }

    #[test]
    fn retry_exhaustion_is_jobs_invariant_under_epoch_budgets() {
        // Budgeted *and* poisoned: the budget admits the task, every
        // attempt panics, and the exhaustion record must not depend on
        // worker count even with the timeout check in the path.
        let policy = SupervisorPolicy {
            max_retries: 1,
            task_timeout_epochs: 100,
        };
        let grid = || {
            vec![
                poisoned_point(),
                SweepPoint::burst("ok", quick_cfg(Strategy::Greedy)),
            ]
        };
        let run =
            |jobs| run_supervised_sweep(grid(), 7, jobs, &policy, &HashSet::new(), None, |_| {});
        let (want_results, want_report) = run(1);
        assert!(want_report.failed[0].error.contains("all 2 attempts"));
        for jobs in [2, 4] {
            let (results, report) = run(jobs);
            assert_eq!(
                serde_json::to_string(&results).unwrap(),
                serde_json::to_string(&want_results).unwrap(),
                "{jobs} workers changed the result bytes"
            );
            assert_eq!(report.failed, want_report.failed);
        }
    }
}
