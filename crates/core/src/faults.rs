//! Deterministic fault injection: seeded, serializable schedules of
//! telemetry, supply, and actuation faults over simulated time.
//!
//! GreenSprint's controller exists for the unhappy path — intermittent
//! supply, bounded batteries, breaker limits — yet a naive reproduction
//! assumes perfect telemetry and perfect actuation. A [`FaultPlan`] breaks
//! those assumptions on a schedule the engine replays deterministically:
//! the same `(seed, plan)` pair produces bit-identical outcomes at any
//! sweep worker count, so chaos grids compose with the parallel executor.
//!
//! Three fault families are modelled:
//!
//! * **Telemetry** — what the controller *believes* diverges from what is
//!   physically there: RE-sensor dropout ([`FaultKind::ReSensorDropout`]),
//!   readings that arrive one epoch late ([`FaultKind::TelemetryDelay`]),
//!   power-meter bias ([`FaultKind::MeterBias`]), and SoC misreporting
//!   ([`FaultKind::SocMisreport`]).
//! * **Supply** — the green bus physically delivers less: inverter
//!   derating/outage ([`FaultKind::InverterDerate`]), breaker nuisance
//!   trips ([`FaultKind::BreakerTrip`]), permanent battery capacity fade
//!   ([`FaultKind::BatteryFade`]).
//! * **Actuation** — PMK commands fail to land: DVFS commands lost
//!   ([`FaultKind::CommandLoss`]), a server stuck at its previous setting
//!   ([`FaultKind::StuckServer`]), core activations above a cap failing
//!   ([`FaultKind::CoreActivationFail`]).
//! * **Fleet** — the rack itself shrinks: a server crashes and stays down
//!   for a bounded number of epochs ([`FaultKind::ServerCrash`]), flaps up
//!   and down on alternating epochs ([`FaultKind::ServerFlap`]), or
//!   straggles at a fraction of its goodput while drawing full power
//!   ([`FaultKind::ServerStraggler`]). The engine re-plans around the
//!   surviving capacity and rejoins recovered servers hysteretically.
//! * **Site** — whole racks and the broker↔rack control links fail: a rack
//!   goes dark ([`FaultKind::RackBlackout`]), its inverter derates
//!   ([`FaultKind::RackInverterDerate`]), the broker link partitions
//!   ([`FaultKind::BrokerPartition`]), or directives are lost/delayed
//!   ([`FaultKind::LinkLoss`], [`FaultKind::LinkDelay`]). Site kinds are
//!   consumed by the datacenter broker (`greensprint::broker`), never by a
//!   single rack's engine; [`FaultPlan::generate_site`] seeds them and
//!   [`FaultPlan::validate_for_racks`] shape-checks multi-rack plans.
//!
//! Graceful degradation means two invariants hold under *every* plan:
//! goodput never falls below the Normal-mode floor, and the sprint never
//! overdraws the grid (`grid_overload_wh == 0`). Both hold by construction
//! — every effective setting dominates Normal in both knobs, and the PSS
//! is never created with grid fallback — and are asserted over arbitrary
//! seeded plans in `tests/chaos_properties.rs`.

use gs_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// What goes wrong.
///
/// Multiplicative `factor`s compose when events overlap; `1.0` is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The RE-supply sensor stops reporting: the Monitor holds its
    /// last-good value and the PSS enters safe mode (plan against the
    /// worst recent verified observation, decayed further per stale epoch).
    ReSensorDropout,
    /// Supply readings arrive one epoch late (staleness without loss);
    /// before the first reading exists this degrades to a dropout.
    TelemetryDelay,
    /// The power meter reads `factor ×` the true RE supply (`> 1`
    /// over-reports, `< 1` under-reports).
    MeterBias {
        /// Observed / actual ratio.
        factor: f64,
    },
    /// The BMS reports `factor ×` the true battery budgets to the
    /// controller; physical discharge is unaffected.
    SocMisreport {
        /// Reported / actual ratio.
        factor: f64,
    },
    /// The inverter physically delivers only `factor ×` its input
    /// (`0.0` is a full outage).
    InverterDerate {
        /// Delivered / nominal ratio in `[0, 1]`.
        factor: f64,
    },
    /// A nuisance trip on the green bus: no renewable power reaches the
    /// rack while the event is active.
    BreakerTrip,
    /// Permanent battery capacity fade: every unit's rated capacity is
    /// multiplied by `factor` once, when the event first becomes active.
    BatteryFade {
        /// Remaining / previous capacity ratio in `(0, 1]`.
        factor: f64,
    },
    /// The DVFS command to `server` (or to every server when `None`) is
    /// lost; the server keeps its previous epoch's setting.
    CommandLoss {
        /// Target green server index, `None` for all.
        server: Option<u8>,
    },
    /// `server` is stuck: it holds whatever setting it last applied for
    /// the whole event, ignoring commands.
    StuckServer {
        /// Target green server index.
        server: u8,
    },
    /// Core activations above `max_cores` fail. Deactivation always works
    /// and Normal mode's cores are already active, so the effective cap
    /// never drops below [`gs_cluster::NORMAL_CORES`].
    CoreActivationFail {
        /// Highest core count that can be activated.
        max_cores: u8,
    },
    /// The active Hybrid Q-table is corrupted in place (a crashed learner
    /// thread, bad restore, or adversarial write): cells are overwritten
    /// with NaN and `magnitude`, exercising the guardrail's corruption
    /// detector and failover ladder. Applied exactly once per event, to
    /// whichever policy is active when the event first overlaps an epoch;
    /// a no-op while a learner-free fallback strategy is steering.
    QTablePoison {
        /// Value planted in the non-NaN cells (the "value explosion").
        magnitude: f64,
    },
    /// `server` crashes when the event first overlaps an epoch and stays
    /// down for `down_epochs` epochs: zero power draw, zero goodput, no
    /// commands land. Applied exactly once per event; after the countdown
    /// the server must look healthy for the engine's rejoin hysteresis
    /// window before it regains load.
    ServerCrash {
        /// Target green server index.
        server: u8,
        /// Epochs the server stays dead once the crash lands.
        down_epochs: u32,
    },
    /// `server` flaps while the event is active: down on the event's
    /// even-numbered epochs, up on the odd ones. The up epochs never last
    /// long enough to clear rejoin hysteresis, so a flapping server stays
    /// out of the plan instead of oscillating it.
    ServerFlap {
        /// Target green server index.
        server: u8,
    },
    /// `server` straggles while the event is active: it draws full power
    /// for its setting but delivers only `goodput_factor ×` the goodput —
    /// a thermal runaway, a failing DIMM, a noisy neighbour.
    ServerStraggler {
        /// Target green server index.
        server: u8,
        /// Delivered / nominal goodput ratio in `(0, 1]`.
        goodput_factor: f64,
    },
    /// **Site fault**: every server of `rack` loses power when the event
    /// first overlaps an epoch and stays dark for `epochs` epochs — a PDU
    /// failure or a rack-level breaker opening. The broker translates this
    /// into per-server [`FaultKind::ServerCrash`] events on the target
    /// rack, so the engine's dead-server accounting (0 W, load shed to
    /// survivors, hysteretic rejoin) applies wholesale.
    RackBlackout {
        /// Target rack index in the datacenter's rack list.
        rack: u8,
        /// Epochs the whole rack stays dark.
        epochs: u32,
    },
    /// **Site fault**: `rack`'s inverter delivers only `factor ×` its
    /// nominal output while the event is active. Translated into an
    /// engine-level [`FaultKind::InverterDerate`] on the target rack only.
    RackInverterDerate {
        /// Target rack index in the datacenter's rack list.
        rack: u8,
        /// Delivered / nominal ratio in `[0, 1]`.
        factor: f64,
    },
    /// **Site fault**: the broker↔rack control link is partitioned in both
    /// directions for `epochs` epochs starting at the epoch containing the
    /// event's start. The rack degrades to local autonomy (holds its
    /// last-good routed-load allocation) and rejoins routing only after
    /// probationary hysteresis once the link heals.
    BrokerPartition {
        /// Target rack index in the datacenter's rack list.
        rack: u8,
        /// Epochs the link stays down.
        epochs: u32,
    },
    /// **Site fault**: each broker→rack directive to `rack` is lost with
    /// probability `p` while the event is active; the broker retries with
    /// deterministic backoff, and an epoch whose retries are exhausted
    /// degrades the rack to its last-good allocation.
    LinkLoss {
        /// Target rack index in the datacenter's rack list.
        rack: u8,
        /// Per-attempt loss probability in `[0, 1]`.
        p: f64,
    },
    /// **Site fault**: directives to `rack` arrive `epochs` epochs late
    /// while the event is active; the rack applies a stale (but conserved
    /// at computation time) allocation.
    LinkDelay {
        /// Target rack index in the datacenter's rack list.
        rack: u8,
        /// Delivery lag in epochs.
        epochs: u32,
    },
}

impl FaultKind {
    /// True for the site-level kinds only a datacenter broker can apply
    /// (rack blackout, rack inverter derate, partitions, link loss/delay).
    /// A single-rack engine plan containing one is malformed.
    pub fn is_site(&self) -> bool {
        matches!(
            self,
            FaultKind::RackBlackout { .. }
                | FaultKind::RackInverterDerate { .. }
                | FaultKind::BrokerPartition { .. }
                | FaultKind::LinkLoss { .. }
                | FaultKind::LinkDelay { .. }
        )
    }

    /// The rack a site-level kind targets; `None` for rack-local kinds.
    pub fn site_rack(&self) -> Option<u8> {
        match *self {
            FaultKind::RackBlackout { rack, .. }
            | FaultKind::RackInverterDerate { rack, .. }
            | FaultKind::BrokerPartition { rack, .. }
            | FaultKind::LinkLoss { rack, .. }
            | FaultKind::LinkDelay { rack, .. } => Some(rack),
            _ => None,
        }
    }
}

/// One scheduled fault: `kind` is active during `[at, at + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// True if this event overlaps the half-open window `[from, to)`.
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.at < to && from < self.at + self.duration
    }
}

/// A deterministic schedule of fault events over simulated time.
///
/// Serializable (JSON via [`FaultPlan::to_json`]) so chaos scenarios can
/// be stored, replayed, and attached to an
/// [`crate::engine::EngineConfig`]; generatable from a seed
/// ([`FaultPlan::generate`]) so chaos grids stay reproducible.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// The generator seed this plan came from (`0` for hand-written plans;
    /// provenance only — replaying a plan never re-rolls it).
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from explicit events (hand-written scenarios and tests).
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { seed: 0, events }
    }

    /// Generate a random plan of 3–8 events inside `[start, start +
    /// window)`, targeting a rack of `n_servers` green servers. Pure
    /// function of the arguments: the same seed always yields the same
    /// plan.
    ///
    /// A rack of zero servers or a window shorter than one default epoch
    /// (60 s) has nothing meaningful to target: the plan comes back empty
    /// rather than sampling degenerate servers or zero-width events.
    pub fn generate(seed: u64, start: SimTime, window: SimDuration, n_servers: u8) -> Self {
        if n_servers == 0 || window < SimDuration::from_secs(60) {
            return FaultPlan {
                seed,
                events: Vec::new(),
            };
        }
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6661_756c_7421); // "fault!"
        let n_events = 3 + rng.index(6); // 3..=8
        let span_s = window.as_secs_f64();
        let server = |rng: &mut SimRng| rng.index(n_servers.max(1) as usize) as u8;
        let events = (0..n_events)
            .map(|_| {
                let at = start + SimDuration::from_secs_f64(span_s * rng.uniform());
                let duration =
                    SimDuration::from_secs_f64((span_s * rng.uniform_range(0.05, 0.5)).max(1.0));
                let kind = match rng.index(10) {
                    0 => FaultKind::ReSensorDropout,
                    1 => FaultKind::TelemetryDelay,
                    2 => FaultKind::MeterBias {
                        factor: rng.uniform_range(0.5, 1.5),
                    },
                    3 => FaultKind::SocMisreport {
                        factor: rng.uniform_range(0.5, 1.5),
                    },
                    4 => FaultKind::InverterDerate {
                        factor: rng.uniform_range(0.0, 0.9),
                    },
                    5 => FaultKind::BreakerTrip,
                    6 => FaultKind::BatteryFade {
                        factor: rng.uniform_range(0.7, 0.98),
                    },
                    7 => {
                        let all = rng.chance(0.5);
                        FaultKind::CommandLoss {
                            server: if all { None } else { Some(server(&mut rng)) },
                        }
                    }
                    8 => FaultKind::StuckServer {
                        server: server(&mut rng),
                    },
                    _ => FaultKind::CoreActivationFail {
                        max_cores: gs_cluster::NORMAL_CORES + rng.index(7) as u8, // 6..=12
                    },
                };
                FaultEvent { at, duration, kind }
            })
            .collect();
        FaultPlan { seed, events }
    }

    /// Generate a Q-table-poisoning plan: 1–3 [`FaultKind::QTablePoison`]
    /// events landing in the first half of `[start, start + window)`, so
    /// a guardrail run has room to fail over *and* complete probation
    /// before the burst ends. Kept separate from [`FaultPlan::generate`]
    /// on purpose — adding a kind to that selector would reshuffle every
    /// existing seeded plan stream. Pure function of the arguments.
    pub fn generate_poison(seed: u64, start: SimTime, window: SimDuration) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x706f_6973_6f6e_2121); // "poison!!"
        let n_events = 1 + rng.index(3); // 1..=3
        let span_s = window.as_secs_f64();
        let events = (0..n_events)
            .map(|_| {
                let at = start + SimDuration::from_secs_f64(span_s * rng.uniform_range(0.0, 0.5));
                let duration = SimDuration::from_secs_f64(rng.uniform_range(30.0, 180.0));
                FaultEvent {
                    at,
                    duration,
                    kind: FaultKind::QTablePoison {
                        magnitude: rng.uniform_range(1e7, 1e9),
                    },
                }
            })
            .collect();
        FaultPlan { seed, events }
    }

    /// Generate a fleet-degradation plan: `mix.crashes` server crashes,
    /// `mix.flaps` flapping servers, and `mix.stragglers` stragglers, all
    /// landing in the first half of `[start, start + window)` so rejoin
    /// hysteresis has room to restore full-fleet planning before the
    /// burst ends. Kept separate from [`FaultPlan::generate`] on purpose —
    /// adding kinds to that selector would reshuffle every existing seeded
    /// plan stream. Pure function of the arguments; empty when `n_servers
    /// == 0` or the window is shorter than one default epoch.
    pub fn generate_fleet(
        seed: u64,
        start: SimTime,
        window: SimDuration,
        n_servers: u8,
        mix: FleetMix,
    ) -> Self {
        if n_servers == 0 || window < SimDuration::from_secs(60) {
            return FaultPlan {
                seed,
                events: Vec::new(),
            };
        }
        let mut rng = SimRng::seed_from_u64(seed ^ 0x666c_6565_7421); // "fleet!"
        let span_s = window.as_secs_f64();
        let mut events = Vec::new();
        for _ in 0..mix.crashes {
            let at = start + SimDuration::from_secs_f64(span_s * rng.uniform_range(0.0, 0.5));
            let down_epochs = 1 + rng.index(3) as u32; // 1..=3
            events.push(FaultEvent {
                at,
                // A crash applies once when it first overlaps an epoch;
                // the duration only has to reach one.
                duration: SimDuration::from_secs(60),
                kind: FaultKind::ServerCrash {
                    server: rng.index(n_servers as usize) as u8,
                    down_epochs,
                },
            });
        }
        for _ in 0..mix.flaps {
            let at = start + SimDuration::from_secs_f64(span_s * rng.uniform_range(0.0, 0.4));
            let duration =
                SimDuration::from_secs_f64((span_s * rng.uniform_range(0.1, 0.4)).max(120.0));
            events.push(FaultEvent {
                at,
                duration,
                kind: FaultKind::ServerFlap {
                    server: rng.index(n_servers as usize) as u8,
                },
            });
        }
        for _ in 0..mix.stragglers {
            let at = start + SimDuration::from_secs_f64(span_s * rng.uniform_range(0.0, 0.5));
            let duration =
                SimDuration::from_secs_f64((span_s * rng.uniform_range(0.1, 0.5)).max(60.0));
            events.push(FaultEvent {
                at,
                duration,
                kind: FaultKind::ServerStraggler {
                    server: rng.index(n_servers as usize) as u8,
                    goodput_factor: rng.uniform_range(0.3, 0.9),
                },
            });
        }
        FaultPlan { seed, events }
    }

    /// Generate a site-fault plan for an `n_racks` datacenter: 2–5 events
    /// drawn from the site-level kinds (rack blackout, rack inverter
    /// derate, broker partition, link loss, link delay), landing in the
    /// first half of `[start, start + window)` so re-routing, link
    /// healing, and probationary rejoin all fit inside the run. Kept
    /// separate from [`FaultPlan::generate`] on purpose — adding kinds to
    /// that selector would reshuffle every existing seeded plan stream.
    /// Pure function of the arguments; empty when `n_racks == 0` or the
    /// window is shorter than one default epoch.
    pub fn generate_site(seed: u64, start: SimTime, window: SimDuration, n_racks: u8) -> Self {
        if n_racks == 0 || window < SimDuration::from_secs(60) {
            return FaultPlan {
                seed,
                events: Vec::new(),
            };
        }
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0073_6974_6521); // "site!"
        let n_events = 2 + rng.index(4); // 2..=5
        let span_s = window.as_secs_f64();
        let events = (0..n_events)
            .map(|_| {
                let at = start + SimDuration::from_secs_f64(span_s * rng.uniform_range(0.0, 0.5));
                let rack = rng.index(n_racks as usize) as u8;
                let kind = match rng.index(5) {
                    0 => FaultKind::RackBlackout {
                        rack,
                        epochs: 1 + rng.index(3) as u32, // 1..=3
                    },
                    1 => FaultKind::RackInverterDerate {
                        rack,
                        factor: rng.uniform_range(0.0, 0.9),
                    },
                    2 => FaultKind::BrokerPartition {
                        rack,
                        epochs: 2 + rng.index(3) as u32, // 2..=4
                    },
                    3 => FaultKind::LinkLoss {
                        rack,
                        p: rng.uniform_range(0.1, 0.9),
                    },
                    _ => FaultKind::LinkDelay {
                        rack,
                        epochs: 1 + rng.index(2) as u32, // 1..=2
                    },
                };
                // Epoch-counted kinds apply from the epoch containing `at`;
                // the duration spans the counted epochs so `overlaps` and
                // the epoch arithmetic agree. Time-windowed kinds get a
                // bounded window of their own.
                let duration = match kind {
                    FaultKind::RackBlackout { epochs, .. }
                    | FaultKind::BrokerPartition { epochs, .. } => {
                        SimDuration::from_secs(60 * u64::from(epochs))
                    }
                    _ => {
                        SimDuration::from_secs_f64((span_s * rng.uniform_range(0.1, 0.4)).max(60.0))
                    }
                };
                FaultEvent { at, duration, kind }
            })
            .collect();
        FaultPlan { seed, events }
    }

    /// Check every event is physically meaningful: factors finite and in
    /// range, durations non-zero, crash countdowns non-degenerate.
    /// Returns a description of the first offending event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.duration == SimDuration::ZERO {
                return Err(format!("event {i}: zero-length window (duration 0)"));
            }
            let check = |name: &str, f: f64, lo: f64, hi: f64| -> Result<(), String> {
                if !f.is_finite() || f < lo || f > hi {
                    return Err(format!("event {i}: {name} factor {f} outside [{lo}, {hi}]"));
                }
                Ok(())
            };
            match e.kind {
                FaultKind::MeterBias { factor } => check("meter-bias", factor, 0.0, 10.0)?,
                FaultKind::SocMisreport { factor } => check("soc-misreport", factor, 0.0, 10.0)?,
                FaultKind::InverterDerate { factor } => check("inverter-derate", factor, 0.0, 1.0)?,
                FaultKind::BatteryFade { factor } => check("battery-fade", factor, 0.01, 1.0)?,
                FaultKind::QTablePoison { magnitude } => {
                    check("qtable-poison", magnitude, 0.0, 1e12)?
                }
                FaultKind::ServerCrash { down_epochs: 0, .. } => {
                    return Err(format!("event {i}: server-crash with down_epochs 0"));
                }
                FaultKind::ServerStraggler { goodput_factor, .. } => {
                    check("server-straggler", goodput_factor, 0.01, 1.0)?
                }
                FaultKind::RackBlackout { epochs: 0, .. } => {
                    return Err(format!("event {i}: rack-blackout with epochs 0"));
                }
                FaultKind::RackInverterDerate { factor, .. } => {
                    check("rack-inverter-derate", factor, 0.0, 1.0)?
                }
                FaultKind::BrokerPartition { epochs: 0, .. } => {
                    return Err(format!("event {i}: broker-partition with epochs 0"));
                }
                FaultKind::LinkLoss { p, .. } => check("link-loss", p, 0.0, 1.0)?,
                FaultKind::LinkDelay { epochs: 0, .. } => {
                    return Err(format!("event {i}: link-delay with epochs 0"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus rack-shape checks: every server-
    /// targeted event must name a server that exists on an `n_servers`
    /// rack. A plan written for a 10-server rack silently no-ops (or
    /// worse) on a 3-server one; reject it up front instead.
    pub fn validate_for(&self, n_servers: usize) -> Result<(), String> {
        self.validate()?;
        for (i, e) in self.events.iter().enumerate() {
            if e.kind.is_site() {
                return Err(format!(
                    "event {i}: site-level fault in a single-rack plan; \
                     site kinds only apply through a datacenter's site_fault_plan"
                ));
            }
            Self::check_server_target(i, &e.kind, n_servers)?;
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus datacenter-shape checks for a site
    /// plan: every site-level event must name a rack that exists, and —
    /// because rack-local events in a site plan apply to *every* rack —
    /// every server-targeted event must name a server that exists on each
    /// rack's own shape, not just one representative rack.
    pub fn validate_for_racks(&self, rack_sizes: &[usize]) -> Result<(), String> {
        self.validate()?;
        let n_racks = rack_sizes.len();
        for (i, e) in self.events.iter().enumerate() {
            if let Some(rack) = e.kind.site_rack() {
                if usize::from(rack) >= n_racks {
                    return Err(format!(
                        "event {i}: site fault targets rack {rack} in a {n_racks}-rack datacenter"
                    ));
                }
            } else {
                // A rack-local event replicates onto every rack, so it has
                // to fit the smallest one — check each shape by name.
                for (r, &n_servers) in rack_sizes.iter().enumerate() {
                    Self::check_server_target(i, &e.kind, n_servers)
                        .map_err(|err| format!("{err} (rack {r})"))?;
                }
            }
        }
        Ok(())
    }

    /// Shared rack-shape check: a server-targeted kind must name a server
    /// that exists on an `n_servers` rack.
    fn check_server_target(i: usize, kind: &FaultKind, n_servers: usize) -> Result<(), String> {
        let target = match *kind {
            FaultKind::CommandLoss { server: Some(s) } => Some(("command-loss", s)),
            FaultKind::StuckServer { server } => Some(("stuck-server", server)),
            FaultKind::ServerCrash { server, .. } => Some(("server-crash", server)),
            FaultKind::ServerFlap { server } => Some(("server-flap", server)),
            FaultKind::ServerStraggler { server, .. } => Some(("server-straggler", server)),
            _ => None,
        };
        if let Some((name, s)) = target {
            if usize::from(s) >= n_servers {
                return Err(format!(
                    "event {i}: {name} targets server {s} on a {n_servers}-server rack"
                ));
            }
        }
        Ok(())
    }

    /// Aggregate every event overlapping the epoch `[from, to)` into the
    /// per-epoch view the engine consumes.
    pub fn active_during(&self, from: SimTime, to: SimTime) -> ActiveFaults {
        let mut active = ActiveFaults::default();
        for (i, e) in self.events.iter().enumerate() {
            if !e.overlaps(from, to) {
                continue;
            }
            match e.kind {
                FaultKind::ReSensorDropout => active.sensor_dropout = true,
                FaultKind::TelemetryDelay => active.telemetry_delay = true,
                FaultKind::MeterBias { factor } => active.meter_factor *= factor,
                FaultKind::SocMisreport { factor } => active.soc_report_factor *= factor,
                FaultKind::InverterDerate { factor } => {
                    active.supply_factor *= factor.clamp(0.0, 1.0)
                }
                FaultKind::BreakerTrip => active.supply_factor = 0.0,
                FaultKind::BatteryFade { factor } => active.fades.push((i, factor)),
                FaultKind::CommandLoss { server: None } => active.command_loss_all = true,
                FaultKind::CommandLoss { server: Some(s) } => active.command_loss.push(s),
                FaultKind::StuckServer { server } => active.stuck.push(server),
                FaultKind::CoreActivationFail { max_cores } => {
                    active.core_cap = Some(match active.core_cap {
                        Some(cap) => cap.min(max_cores),
                        None => max_cores,
                    })
                }
                FaultKind::QTablePoison { magnitude } => active.poisons.push((i, magnitude)),
                FaultKind::ServerCrash {
                    server,
                    down_epochs,
                } => active.crashes.push((i, server, down_epochs)),
                FaultKind::ServerFlap { server } => active.flaps.push((server, e.at)),
                FaultKind::ServerStraggler {
                    server,
                    goodput_factor,
                } => active.stragglers.push((server, goodput_factor)),
                // Site-level kinds are consumed by the datacenter broker
                // (translated into engine kinds or simulated at the link),
                // never by a single rack's epoch loop; `validate_for`
                // rejects them from engine plans up front.
                FaultKind::RackBlackout { .. }
                | FaultKind::RackInverterDerate { .. }
                | FaultKind::BrokerPartition { .. }
                | FaultKind::LinkLoss { .. }
                | FaultKind::LinkDelay { .. } => {}
            }
        }
        active
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plans serialize")
    }

    /// Parse a plan from JSON and validate it.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let plan: FaultPlan = serde_json::from_str(text).map_err(|e| e.to_string())?;
        plan.validate()?;
        Ok(plan)
    }
}

/// Every fault in force during one scheduling epoch, aggregated across
/// overlapping events. [`Default`] is "nothing wrong".
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveFaults {
    /// The RE sensor reports nothing this epoch.
    pub sensor_dropout: bool,
    /// Supply readings are one epoch old.
    pub telemetry_delay: bool,
    /// Observed RE supply = actual × this (product over active biases).
    pub meter_factor: f64,
    /// Reported battery budgets = actual × this.
    pub soc_report_factor: f64,
    /// Physical RE delivery = nominal × this (0 when a breaker tripped).
    pub supply_factor: f64,
    /// `(event index, factor)` of battery-fade events overlapping this
    /// epoch; the engine applies each event exactly once.
    pub fades: Vec<(usize, f64)>,
    /// Every server's DVFS command is lost this epoch.
    pub command_loss_all: bool,
    /// Specific servers whose commands are lost.
    pub command_loss: Vec<u8>,
    /// Servers frozen at their previous setting.
    pub stuck: Vec<u8>,
    /// Core-activation cap (min over active events), if any.
    pub core_cap: Option<u8>,
    /// `(event index, magnitude)` of Q-table-poisoning events overlapping
    /// this epoch; like fades, the engine applies each exactly once.
    pub poisons: Vec<(usize, f64)>,
    /// `(event index, server, down_epochs)` of server-crash events
    /// overlapping this epoch; the engine applies each exactly once and
    /// then counts the server's dead epochs down itself.
    pub crashes: Vec<(usize, u8, u32)>,
    /// `(server, event start)` of flap events overlapping this epoch; the
    /// start time anchors the alternating up/down phase (see
    /// [`ActiveFaults::flap_down`]).
    pub flaps: Vec<(u8, SimTime)>,
    /// `(server, goodput factor)` of straggler events overlapping this
    /// epoch; factors compose when events overlap on one server.
    pub stragglers: Vec<(u8, f64)>,
}

impl Default for ActiveFaults {
    fn default() -> Self {
        ActiveFaults {
            sensor_dropout: false,
            telemetry_delay: false,
            meter_factor: 1.0,
            soc_report_factor: 1.0,
            supply_factor: 1.0,
            fades: Vec::new(),
            command_loss_all: false,
            command_loss: Vec::new(),
            stuck: Vec::new(),
            core_cap: None,
            poisons: Vec::new(),
            crashes: Vec::new(),
            flaps: Vec::new(),
            stragglers: Vec::new(),
        }
    }
}

impl ActiveFaults {
    /// True if anything at all is wrong this epoch.
    pub fn any(&self) -> bool {
        *self != ActiveFaults::default()
    }

    /// True if server `i`'s DVFS command is lost this epoch.
    pub fn command_lost(&self, i: usize) -> bool {
        self.command_loss_all || self.command_loss.contains(&(i as u8))
    }

    /// True if server `i` is stuck at its previous setting this epoch.
    pub fn is_stuck(&self, i: usize) -> bool {
        self.stuck.contains(&(i as u8))
    }

    /// True if a flap event holds server `i` down during the epoch that
    /// starts at `t`. The phase is a pure function of the event's start
    /// time — epoch 0 of the event (and every even epoch after) is down —
    /// so a resumed run computes the same answer as an uninterrupted one.
    pub fn flap_down(&self, i: usize, t: SimTime, epoch: SimDuration) -> bool {
        self.flaps.iter().any(|&(s, at)| {
            usize::from(s) == i && {
                let phase = if t >= at {
                    (t - at).div_duration(epoch).unwrap_or(0)
                } else {
                    0
                };
                phase % 2 == 0
            }
        })
    }

    /// Composite goodput factor for server `i` this epoch (product over
    /// active straggler events; `1.0` when none target it).
    pub fn straggler_factor(&self, i: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|&&(s, _)| usize::from(s) == i)
            .map(|&(_, f)| f)
            .product()
    }
}

/// How many of each fleet fault [`FaultPlan::generate_fleet`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetMix {
    /// Bounded-outage crashes ([`FaultKind::ServerCrash`]).
    pub crashes: u8,
    /// Flapping servers ([`FaultKind::ServerFlap`]).
    pub flaps: u8,
    /// Slow-but-alive servers ([`FaultKind::ServerStraggler`]).
    pub stragglers: u8,
}

impl Default for FleetMix {
    fn default() -> Self {
        FleetMix {
            crashes: 2,
            flaps: 1,
            stragglers: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn events_overlap_half_open_windows() {
        let e = FaultEvent {
            at: SimTime::from_mins(10),
            duration: mins(5),
            kind: FaultKind::BreakerTrip,
        };
        assert!(!e.overlaps(SimTime::from_mins(5), SimTime::from_mins(10)));
        assert!(e.overlaps(SimTime::from_mins(9), SimTime::from_mins(11)));
        assert!(e.overlaps(SimTime::from_mins(14), SimTime::from_mins(16)));
        assert!(!e.overlaps(SimTime::from_mins(15), SimTime::from_mins(16)));
    }

    #[test]
    fn generate_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::generate(42, SimTime::from_hours(11), mins(30), 3);
        let b = FaultPlan::generate(42, SimTime::from_hours(11), mins(30), 3);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, SimTime::from_hours(11), mins(30), 3);
        assert_ne!(a, c);
        assert!((3..=8).contains(&a.events.len()));
        assert!(a.validate().is_ok());
    }

    #[test]
    fn generated_events_land_inside_the_window() {
        let start = SimTime::from_hours(11);
        let plan = FaultPlan::generate(7, start, mins(30), 3);
        for e in &plan.events {
            assert!(e.at >= start);
            assert!(e.at < start + mins(30));
            assert!(e.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_plan() {
        let plan = FaultPlan::generate(9, SimTime::from_hours(11), mins(15), 3);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn from_json_rejects_garbage_and_bad_factors() {
        assert!(FaultPlan::from_json("{nope").is_err());
        let bad = FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            duration: mins(1),
            kind: FaultKind::MeterBias { factor: f64::NAN },
        }]);
        assert!(bad.validate().is_err());
        assert!(FaultPlan::from_json(&bad.to_json()).is_err());
        let negative_fade = FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            duration: mins(1),
            kind: FaultKind::BatteryFade { factor: 0.0 },
        }]);
        assert!(negative_fade.validate().is_err());
    }

    #[test]
    fn active_faults_aggregate_overlapping_events() {
        let t = SimTime::from_mins(10);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::MeterBias { factor: 0.5 },
            },
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::MeterBias { factor: 0.5 },
            },
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::InverterDerate { factor: 0.8 },
            },
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::BreakerTrip,
            },
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::CoreActivationFail { max_cores: 10 },
            },
            FaultEvent {
                at: t,
                duration: mins(5),
                kind: FaultKind::CoreActivationFail { max_cores: 8 },
            },
            FaultEvent {
                at: t + mins(20),
                duration: mins(5),
                kind: FaultKind::ReSensorDropout,
            },
        ]);
        let active = plan.active_during(t, t + SimDuration::from_secs(60));
        assert!((active.meter_factor - 0.25).abs() < 1e-12);
        assert_eq!(active.supply_factor, 0.0); // breaker wins over derate
        assert_eq!(active.core_cap, Some(8)); // tightest cap
        assert!(!active.sensor_dropout); // that event is later
        assert!(active.any());

        let quiet = plan.active_during(t + mins(6), t + mins(7));
        assert!(!quiet.any());
    }

    #[test]
    fn poison_plans_are_pure_seeded_and_validate() {
        let start = SimTime::from_hours(11);
        let a = FaultPlan::generate_poison(42, start, mins(10));
        let b = FaultPlan::generate_poison(42, start, mins(10));
        assert_eq!(a, b);
        let c = FaultPlan::generate_poison(43, start, mins(10));
        assert_ne!(a, c);
        assert!((1..=3).contains(&a.events.len()));
        assert!(a.validate().is_ok());
        for e in &a.events {
            // Early enough that failover and probation fit in the burst.
            assert!(e.at >= start && e.at < start + mins(5));
            assert!(matches!(e.kind, FaultKind::QTablePoison { magnitude }
                if (1e7..=1e9).contains(&magnitude)));
        }
        // Poison plans do not perturb the pre-existing generator stream.
        assert_eq!(
            FaultPlan::generate(42, start, mins(10), 3),
            FaultPlan::generate(42, start, mins(10), 3),
        );
    }

    #[test]
    fn poison_events_aggregate_and_validate() {
        let t = SimTime::from_mins(10);
        let plan = FaultPlan::new(vec![FaultEvent {
            at: t,
            duration: mins(2),
            kind: FaultKind::QTablePoison { magnitude: 1e8 },
        }]);
        assert!(plan.validate().is_ok());
        let active = plan.active_during(t, t + SimDuration::from_secs(60));
        assert_eq!(active.poisons, vec![(0, 1e8)]);
        assert!(active.any());
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);

        let bad = FaultPlan::new(vec![FaultEvent {
            at: t,
            duration: mins(2),
            kind: FaultKind::QTablePoison {
                magnitude: f64::INFINITY,
            },
        }]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn degenerate_generator_inputs_yield_empty_plans() {
        let start = SimTime::from_hours(11);
        // Zero servers: nothing to target.
        let plan = FaultPlan::generate(5, start, mins(30), 0);
        assert!(plan.events.is_empty());
        assert_eq!(plan.seed, 5);
        // Window shorter than one default epoch: no room for an event.
        let plan = FaultPlan::generate(5, start, SimDuration::from_secs(59), 3);
        assert!(plan.events.is_empty());
        let plan = FaultPlan::generate_fleet(5, start, mins(30), 0, FleetMix::default());
        assert!(plan.events.is_empty());
        let plan =
            FaultPlan::generate_fleet(5, start, SimDuration::from_secs(59), 3, FleetMix::default());
        assert!(plan.events.is_empty());
        assert!(plan.validate_for(3).is_ok());
    }

    #[test]
    fn fleet_plans_are_pure_seeded_and_validate() {
        let start = SimTime::from_hours(11);
        let mix = FleetMix::default();
        let a = FaultPlan::generate_fleet(42, start, mins(10), 4, mix);
        let b = FaultPlan::generate_fleet(42, start, mins(10), 4, mix);
        assert_eq!(a, b);
        let c = FaultPlan::generate_fleet(43, start, mins(10), 4, mix);
        assert_ne!(a, c);
        assert_eq!(
            a.events.len(),
            usize::from(mix.crashes + mix.flaps + mix.stragglers)
        );
        assert!(a.validate().is_ok());
        assert!(a.validate_for(4).is_ok());
        for e in &a.events {
            // First half of the window, so rejoin fits inside the burst.
            assert!(e.at >= start && e.at < start + mins(5));
            assert!(e.duration > SimDuration::ZERO);
            assert!(matches!(
                e.kind,
                FaultKind::ServerCrash { .. }
                    | FaultKind::ServerFlap { .. }
                    | FaultKind::ServerStraggler { .. }
            ));
        }
        // Fleet plans do not perturb the pre-existing generator streams.
        assert_eq!(
            FaultPlan::generate(42, start, mins(10), 3),
            FaultPlan::generate(42, start, mins(10), 3),
        );
        assert_eq!(
            FaultPlan::generate_poison(42, start, mins(10)),
            FaultPlan::generate_poison(42, start, mins(10)),
        );
    }

    #[test]
    fn validate_rejects_zero_length_windows_and_bad_fleet_params() {
        let zero = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_mins(1),
            duration: SimDuration::ZERO,
            kind: FaultKind::BreakerTrip,
        }]);
        assert!(zero.validate().unwrap_err().contains("zero-length"));
        assert!(FaultPlan::from_json(&zero.to_json()).is_err());

        let dead_crash = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_mins(1),
            duration: mins(1),
            kind: FaultKind::ServerCrash {
                server: 0,
                down_epochs: 0,
            },
        }]);
        assert!(dead_crash.validate().unwrap_err().contains("down_epochs"));

        let nan_straggler = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_mins(1),
            duration: mins(1),
            kind: FaultKind::ServerStraggler {
                server: 0,
                goodput_factor: f64::NAN,
            },
        }]);
        assert!(nan_straggler.validate().is_err());
    }

    #[test]
    fn validate_for_rejects_out_of_range_servers() {
        let mk = |kind| {
            FaultPlan::new(vec![FaultEvent {
                at: SimTime::from_mins(1),
                duration: mins(1),
                kind,
            }])
        };
        let cases = [
            mk(FaultKind::CommandLoss { server: Some(99) }),
            mk(FaultKind::StuckServer { server: 10 }),
            mk(FaultKind::ServerCrash {
                server: 10,
                down_epochs: 2,
            }),
            mk(FaultKind::ServerFlap { server: 10 }),
            mk(FaultKind::ServerStraggler {
                server: 10,
                goodput_factor: 0.5,
            }),
        ];
        for plan in &cases {
            // Plain validate has no rack shape, so it passes...
            assert!(plan.validate().is_ok());
            // ...but a 10-server rack has servers 0..=9 only.
            let err = plan.validate_for(10).unwrap_err();
            assert!(err.contains("10-server rack"), "{err}");
        }
        // In-range targets pass.
        let ok = mk(FaultKind::ServerCrash {
            server: 9,
            down_epochs: 2,
        });
        assert!(ok.validate_for(10).is_ok());
        assert!(ok.validate_for(9).is_err());
        // CommandLoss-to-all targets no specific server.
        assert!(mk(FaultKind::CommandLoss { server: None })
            .validate_for(1)
            .is_ok());
    }

    #[test]
    fn fleet_events_aggregate_into_active_faults() {
        let t = SimTime::from_mins(10);
        let epoch = SimDuration::from_secs(60);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: t,
                duration: mins(1),
                kind: FaultKind::ServerCrash {
                    server: 1,
                    down_epochs: 3,
                },
            },
            FaultEvent {
                at: t,
                duration: mins(4),
                kind: FaultKind::ServerFlap { server: 2 },
            },
            FaultEvent {
                at: t,
                duration: mins(4),
                kind: FaultKind::ServerStraggler {
                    server: 0,
                    goodput_factor: 0.5,
                },
            },
            FaultEvent {
                at: t,
                duration: mins(4),
                kind: FaultKind::ServerStraggler {
                    server: 0,
                    goodput_factor: 0.8,
                },
            },
        ]);
        assert!(plan.validate_for(3).is_ok());
        let active = plan.active_during(t, t + epoch);
        assert_eq!(active.crashes, vec![(0, 1, 3)]);
        assert_eq!(active.flaps, vec![(2, t)]);
        assert!((active.straggler_factor(0) - 0.4).abs() < 1e-12);
        assert_eq!(active.straggler_factor(1), 1.0);
        assert!(active.any());
        // Flap phase alternates per epoch from the event start: down on
        // even epochs, up on odd ones, down again — deterministically.
        assert!(active.flap_down(2, t, epoch));
        assert!(!active.flap_down(1, t, epoch));
        let a1 = plan.active_during(t + epoch, t + epoch + epoch);
        assert!(!a1.flap_down(2, t + epoch, epoch));
        let a2 = plan.active_during(t + epoch + epoch, t + mins(3));
        assert!(a2.flap_down(2, t + epoch + epoch, epoch));
        // Round trip keeps fleet kinds intact.
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn site_plans_are_pure_seeded_and_validate() {
        let start = SimTime::from_hours(11);
        let a = FaultPlan::generate_site(42, start, mins(10), 4);
        let b = FaultPlan::generate_site(42, start, mins(10), 4);
        assert_eq!(a, b);
        let c = FaultPlan::generate_site(43, start, mins(10), 4);
        assert_ne!(a, c);
        assert!((2..=5).contains(&a.events.len()));
        assert!(a.validate().is_ok());
        assert!(a.validate_for_racks(&[3, 3, 3, 3]).is_ok());
        for e in &a.events {
            // First half of the window, so recovery fits in the run.
            assert!(e.at >= start && e.at < start + mins(5));
            assert!(e.duration > SimDuration::ZERO);
            assert!(e.kind.is_site());
            assert!(e.kind.site_rack().unwrap() < 4);
        }
        // Site plans do not perturb the pre-existing generator streams.
        assert_eq!(
            FaultPlan::generate(42, start, mins(10), 3),
            FaultPlan::generate(42, start, mins(10), 3),
        );
        assert_eq!(
            FaultPlan::generate_poison(42, start, mins(10)),
            FaultPlan::generate_poison(42, start, mins(10)),
        );
        assert_eq!(
            FaultPlan::generate_fleet(42, start, mins(10), 4, FleetMix::default()),
            FaultPlan::generate_fleet(42, start, mins(10), 4, FleetMix::default()),
        );
        // Degenerate inputs yield empty plans.
        assert!(FaultPlan::generate_site(5, start, mins(10), 0)
            .events
            .is_empty());
        assert!(
            FaultPlan::generate_site(5, start, SimDuration::from_secs(59), 4)
                .events
                .is_empty()
        );
    }

    #[test]
    fn site_kinds_are_rejected_from_single_rack_plans() {
        let mk = |kind| {
            FaultPlan::new(vec![FaultEvent {
                at: SimTime::from_mins(1),
                duration: mins(1),
                kind,
            }])
        };
        let site = mk(FaultKind::RackBlackout { rack: 0, epochs: 2 });
        assert!(site.validate().is_ok());
        let err = site.validate_for(10).unwrap_err();
        assert!(err.contains("site-level"), "{err}");
        // JSON round trip keeps site kinds intact.
        let back = FaultPlan::from_json(&site.to_json()).unwrap();
        assert_eq!(site, back);
    }

    #[test]
    fn validate_rejects_degenerate_site_events() {
        let mk = |kind| {
            FaultPlan::new(vec![FaultEvent {
                at: SimTime::from_mins(1),
                duration: mins(1),
                kind,
            }])
        };
        assert!(mk(FaultKind::RackBlackout { rack: 0, epochs: 0 })
            .validate()
            .unwrap_err()
            .contains("epochs 0"));
        assert!(mk(FaultKind::BrokerPartition { rack: 0, epochs: 0 })
            .validate()
            .is_err());
        assert!(mk(FaultKind::LinkDelay { rack: 0, epochs: 0 })
            .validate()
            .is_err());
        assert!(mk(FaultKind::LinkLoss { rack: 0, p: 1.5 })
            .validate()
            .is_err());
        assert!(mk(FaultKind::RackInverterDerate {
            rack: 0,
            factor: f64::NAN
        })
        .validate()
        .is_err());
    }

    #[test]
    fn validate_for_racks_checks_rack_and_per_rack_server_shapes() {
        let mk = |kind| {
            FaultPlan::new(vec![FaultEvent {
                at: SimTime::from_mins(1),
                duration: mins(1),
                kind,
            }])
        };
        // Site events must target an existing rack.
        let bad_rack = mk(FaultKind::BrokerPartition { rack: 5, epochs: 2 });
        let err = bad_rack.validate_for_racks(&[3, 3]).unwrap_err();
        assert!(err.contains("rack 5"), "{err}");
        assert!(bad_rack.validate_for_racks(&[3; 6]).is_ok());
        // Rack-local events replicate onto every rack: the target must fit
        // each rack's own server count, not just the biggest one.
        let crash = mk(FaultKind::ServerCrash {
            server: 2,
            down_epochs: 1,
        });
        assert!(crash.validate_for_racks(&[3, 3]).is_ok());
        let err = crash.validate_for_racks(&[3, 2]).unwrap_err();
        assert!(
            err.contains("2-server rack") && err.contains("rack 1"),
            "{err}"
        );
        // Site kinds never hit the engine's per-epoch aggregation.
        let active = bad_rack.active_during(SimTime::from_mins(1), SimTime::from_mins(2));
        assert!(!active.any());
    }

    #[test]
    fn per_server_actuation_targeting() {
        let f = ActiveFaults {
            command_loss: vec![1],
            stuck: vec![2],
            ..ActiveFaults::default()
        };
        assert!(f.command_lost(1));
        assert!(!f.command_lost(0));
        assert!(f.is_stuck(2));
        assert!(!f.is_stuck(1));
        let all = ActiveFaults {
            command_loss_all: true,
            ..ActiveFaults::default()
        };
        assert!(all.command_lost(0) && all.command_lost(7));
    }
}
