//! Struct-of-arrays fleet state and the reusable engine scratch arena.
//!
//! The epoch loop in [`crate::engine`] touches a dozen per-server
//! quantities every epoch. Before this module existed each of them was a
//! fresh `Vec` per epoch (or per decision): at 1000 servers × thousands of
//! epochs the allocator dominated the profile. `FleetState` holds them
//! all as parallel arrays — settings, liveness, crash countdowns, health
//! streaks, battery budgets, power draws — sized once per run and
//! overwritten in place each epoch, plus the per-epoch memo tables the
//! hot loop uses to avoid recomputing pure functions.
//!
//! [`EngineScratch`] wraps the fleet arrays together with the run-scoped
//! analytic-measurement cache into the arena a caller can thread through
//! many runs (the sweep worker pool keeps one per worker; campaigns reuse
//! one across the strategy and baseline passes). Every run begins with
//! `EngineScratch::begin_run`, which clears all cross-run state, so
//! reuse is unobservable in the output: the determinism contract
//! (byte-identical outcomes, snapshot/resume, jobs-invariance) is pinned
//! by `tests/golden_outputs.rs`.
//!
//! None of this is serialized. Persistent loop state (batteries,
//! predictors, the learner, …) still lives in
//! [`crate::checkpoint::LoopState`]; the arrays here that *are* part of a
//! snapshot (`prev_settings`, `down_left`, `health_streak`) are copied
//! in/out of it at the capture/resume boundary.

use gs_cluster::ServerSetting;
use gs_workload::metrics::EpochPerf;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Key of one memoized per-server sprint decision within an epoch: the
/// bits of `(re_share, battery_instant, battery_sustained)` plus the
/// hysteresis incumbent. Everything else a learner-free decision depends
/// on (predicted load, the profile table, the hysteresis band) is
/// constant within an epoch, so equal keys provably yield equal settings.
pub(crate) type DecisionKey = (u64, u64, u64, ServerSetting);

/// Per-server state as parallel arrays, resized once per run and
/// overwritten in place every epoch.
#[derive(Debug, Default)]
pub(crate) struct FleetState {
    // --- persistent across epochs (snapshot-carried) -------------------
    /// Hysteresis incumbent per server (last epoch's applied setting).
    pub prev_settings: Vec<ServerSetting>,
    /// Crash countdown per server (epochs of outage left).
    pub down_left: Vec<u32>,
    /// Consecutive healthy epochs per server (rejoin probation).
    pub health_streak: Vec<u32>,
    // --- rewritten every epoch -----------------------------------------
    /// Responding at all this epoch (not crashed/flapped down).
    pub up: Vec<bool>,
    /// Carrying load this epoch (`up` and past rejoin probation).
    pub live: Vec<bool>,
    /// The setting each server actually runs this epoch.
    pub settings: Vec<ServerSetting>,
    /// What the control plane commanded (before actuation faults).
    pub commanded: Vec<ServerSetting>,
    /// Battery power sustainable for one epoch (controller's view).
    pub instant_w: Vec<f64>,
    /// Battery power sustainable over the planning horizon.
    pub sustained_horizon_w: Vec<f64>,
    /// Battery power sustainable over the remaining burst.
    pub sustained_remaining_w: Vec<f64>,
    /// Physical power draw this epoch.
    pub actual_power: Vec<f64>,
    /// Measured per-server performance this epoch.
    pub perfs: Vec<EpochPerf>,
    /// Indices of sprinting servers (settlement order).
    pub sprinting: Vec<usize>,
    /// Indices of batteries open to charging (length varies per epoch).
    pub open: Vec<usize>,
    /// `(soc, max_dod)` per battery, lent to the invariant auditor.
    pub socs: Vec<(f64, f64)>,
    // --- per-epoch memo tables ------------------------------------------
    /// Learner-free sprint decisions already made this epoch.
    pub decision_memo: InlineMemo<DecisionKey, ServerSetting>,
    /// Analytic measurements already taken this epoch, by setting (the
    /// served rate is constant within an epoch). A short linear-scan
    /// list: epochs see a handful of distinct settings.
    pub perf_memo: Vec<(ServerSetting, EpochPerf)>,
    /// Memoized `Battery::sustainable_power` results, one slot per
    /// planning duration (epoch / horizon / remaining-burst). Keyed by
    /// the bits of `(usable_rated_ah, capacity_ah)` — the only battery
    /// state the Peukert computation reads beyond per-run spec constants
    /// — so one entry serves every battery in the same state and the
    /// `3n` powf-heavy calls per epoch collapse to one per distinct
    /// battery state.
    pub budget_memo: [InlineMemo<(u64, u64), f64>; 3],
    /// Memoized Peukert drain rates for settlement discharges, keyed by
    /// the bits of `(discharge current, capacity_ah)` — the drain is
    /// pure in those given the per-run spec constants (SoC never enters
    /// it), so sprinters drawing the same power share one `powf`.
    pub drain_memo: InlineMemo<(u64, u64), f64>,
}

impl FleetState {
    /// Size every per-server array for an `n`-server run. Values are
    /// engine-initialized afterwards; per-epoch arrays are fully
    /// overwritten before first read each epoch.
    fn begin_run(&mut self, n: usize) {
        fn fit<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
            v.clear();
            v.resize(n, fill);
        }
        fit(&mut self.prev_settings, n, ServerSetting::normal());
        fit(&mut self.down_left, n, 0);
        fit(&mut self.health_streak, n, 0);
        fit(&mut self.up, n, true);
        fit(&mut self.live, n, true);
        fit(&mut self.settings, n, ServerSetting::normal());
        fit(&mut self.commanded, n, ServerSetting::normal());
        fit(&mut self.instant_w, n, 0.0);
        fit(&mut self.sustained_horizon_w, n, 0.0);
        fit(&mut self.sustained_remaining_w, n, 0.0);
        fit(&mut self.actual_power, n, 0.0);
        fit(&mut self.perfs, n, EpochPerf::default());
        self.sprinting.clear();
        self.open.clear();
        self.socs.clear();
        self.decision_memo.clear();
        self.perf_memo.clear();
        for memo in &mut self.budget_memo {
            memo.clear();
        }
        self.drain_memo.clear();
    }

    /// Clear the per-epoch memo tables (start of every epoch).
    pub fn begin_epoch(&mut self) {
        self.decision_memo.clear();
        self.perf_memo.clear();
        for memo in &mut self.budget_memo {
            memo.clear();
        }
        self.drain_memo.clear();
    }
}

/// Reusable allocation arena for engine runs.
///
/// One run uses one scratch exclusively; reusing the same scratch across
/// sequential runs (a sweep worker's tasks, a campaign's strategy and
/// baseline passes, the `bench` trajectory reps) skips the per-run
/// allocation and cache warm-up without affecting a single output byte.
/// Dropping it between runs is always safe — it carries no result state.
#[derive(Debug, Default)]
pub struct EngineScratch {
    pub(crate) fleet: FleetState,
    /// Run-scoped memo of analytic epoch measurements, keyed by
    /// `(setting, offered_rps.to_bits())`. Pure: cleared at run start
    /// because profiles and app differ between runs.
    pub(crate) analytic_cache: HashMap<(ServerSetting, u64), EpochPerf, FxBuildHasher>,
}

impl EngineScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for an `n`-server run: sizes the fleet arrays and clears
    /// every cross-run cache (capacity is retained).
    pub(crate) fn begin_run(&mut self, n: usize) {
        self.fleet.begin_run(n);
        self.analytic_cache.clear();
    }
}

/// A hash-map memo fronted by a one-entry inline cache. The per-server
/// loops mostly present *runs* of identical keys (fleets cluster into a
/// handful of states), and the run case hits the inline slot with a key
/// compare instead of a hash-and-probe. Purely a lookup structure for
/// per-epoch pure-function memos — iteration order is never observed.
#[derive(Debug, Default)]
pub(crate) struct InlineMemo<K: Copy + Eq + std::hash::Hash, V: Copy> {
    last: Option<(K, V)>,
    map: HashMap<K, V, FxBuildHasher>,
}

impl<K: Copy + Eq + std::hash::Hash, V: Copy> InlineMemo<K, V> {
    /// Drop every entry (start of an epoch — durations and epoch-scoped
    /// inputs change, so stale values must not survive).
    pub fn clear(&mut self) {
        self.last = None;
        self.map.clear();
    }

    /// Look up `key`, refreshing the inline slot on a map hit.
    pub fn get(&mut self, key: K) -> Option<V> {
        if let Some((k, v)) = self.last {
            if k == key {
                return Some(v);
            }
        }
        let v = self.map.get(&key).copied();
        if let Some(v) = v {
            self.last = Some((key, v));
        }
        v
    }

    /// Record `key → v` and make it the inline entry.
    pub fn insert(&mut self, key: K, v: V) {
        self.last = Some((key, v));
        self.map.insert(key, v);
    }

    /// The memoized value for `key`, computing and recording it on miss.
    pub fn get_or_insert_with(&mut self, key: K, f: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = f();
        self.insert(key, v);
        v
    }

    /// True when no entry has been recorded since the last clear.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// `BuildHasher` for the hot-path hash maps.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash word-at-a-time multiply-xor hash (the rustc hash): not
/// DoS-resistant, which is fine for keys the simulation itself produces,
/// and several times faster than SipHash on the small fixed-size keys the
/// epoch loop uses. Hand-rolled because the workspace vendors no hashing
/// crate.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_run_sizes_every_array() {
        let mut s = EngineScratch::new();
        s.begin_run(7);
        assert_eq!(s.fleet.prev_settings.len(), 7);
        assert_eq!(s.fleet.perfs.len(), 7);
        assert_eq!(s.fleet.instant_w.len(), 7);
        s.fleet.sprinting.push(3);
        s.fleet.decision_memo.insert(
            (0, 0, 0, ServerSetting::normal()),
            ServerSetting::max_sprint(),
        );
        s.analytic_cache
            .insert((ServerSetting::normal(), 0), EpochPerf::default());
        // A new run clears per-epoch lists and every cross-run cache.
        s.begin_run(3);
        assert_eq!(s.fleet.prev_settings.len(), 3);
        assert!(s.fleet.sprinting.is_empty());
        assert!(s.fleet.decision_memo.is_empty());
        assert!(s.analytic_cache.is_empty());
    }

    #[test]
    fn fx_hasher_distinguishes_and_repeats() {
        use std::hash::Hash;
        let h = |k: &DecisionKey| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        let a = (1u64, 2u64, 3u64, ServerSetting::normal());
        let b = (1u64, 2u64, 4u64, ServerSetting::normal());
        assert_eq!(h(&a), h(&a));
        assert_ne!(h(&a), h(&b));
    }
}
