//! The Monitor (paper Fig. 3): collects the power and performance signals
//! the Predictor, PSS, and PMK consume, and retains them as time series
//! for reporting (paper Fig. 5 is drawn straight from these streams).

use gs_sim::{SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// One epoch's observations for the green rack.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Renewable production available to the rack (W).
    pub re_supply_w: f64,
    /// Aggregate power demand of the green servers (W).
    pub demand_w: f64,
    /// Aggregate battery discharge (W).
    pub battery_w: f64,
    /// Mean battery state of charge across the rack (fraction).
    pub battery_soc: f64,
    /// Aggregate goodput of the green servers (req/s).
    pub goodput_rps: f64,
    /// Offered load per green server (req/s).
    pub offered_rps: f64,
}

/// Per-epoch trust annotations for an [`Observation`]. [`Default`] is
/// fully trusted; the engine downgrades flags when fault injection breaks
/// a sensor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ObservationQuality {
    /// The supply reading is a fresh, verified sensor value (not a
    /// held-over last-good).
    pub re_fresh: bool,
    /// The SoC reading comes from a trusted BMS (no misreport active).
    pub soc_trusted: bool,
}

impl Default for ObservationQuality {
    fn default() -> Self {
        ObservationQuality {
            re_fresh: true,
            soc_trusted: true,
        }
    }
}

fn re_quality_series() -> TimeSeries {
    TimeSeries::new("re_quality")
}

fn ladder_series() -> TimeSeries {
    TimeSeries::new("ladder_level")
}

fn fleet_series() -> TimeSeries {
    TimeSeries::new("fleet_live")
}

fn route_series() -> TimeSeries {
    TimeSeries::new("route_factor")
}

/// Time-series retention of every observation stream.
///
/// Deserializes with container-level defaults so serialized monitors from
/// before a stream existed load with that stream empty.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct Monitor {
    re_supply: TimeSeries,
    demand: TimeSeries,
    battery_power: TimeSeries,
    battery_soc: TimeSeries,
    goodput: TimeSeries,
    offered: TimeSeries,
    /// 1.0 where the supply reading was fresh, 0.0 where it was held over
    /// from the last good epoch. Absent in pre-fault serialized monitors.
    #[serde(default = "re_quality_series")]
    re_quality: TimeSeries,
    /// Timestamp and value of the last *fresh* supply reading.
    #[serde(default)]
    last_good_re: Option<(SimTime, f64)>,
    /// Timestamp and value of the last *trusted* SoC reading.
    #[serde(default)]
    last_good_soc: Option<(SimTime, f64)>,
    /// Epochs recorded without a fresh supply reading.
    #[serde(default)]
    stale_re_epochs: usize,
    /// Guardrail failover-ladder level per epoch (0 = active strategy).
    /// Only populated when the guardrail is enabled; absent in older
    /// serialized monitors.
    #[serde(default = "ladder_series")]
    ladder: TimeSeries,
    /// Live-server count per epoch (the fleet-size stream). Only
    /// populated when the engine tracks fleet faults; absent in older
    /// serialized monitors.
    #[serde(default = "fleet_series")]
    fleet_live: TimeSeries,
    /// Per-server liveness streams (1.0 live, 0.0 dead), one per green
    /// server, named `server<i>_live`. Empty until the first fleet
    /// recording.
    #[serde(default)]
    server_live: Vec<TimeSeries>,
    /// The broker-routed load factor applied per epoch (1.0 = the nominal
    /// stream). Only populated when a datacenter broker steers the rack;
    /// absent in older serialized monitors.
    #[serde(default = "route_series")]
    route_factor: TimeSeries,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Monitor {
            re_supply: TimeSeries::new("re_supply_w"),
            demand: TimeSeries::new("demand_w"),
            battery_power: TimeSeries::new("battery_w"),
            battery_soc: TimeSeries::new("battery_soc"),
            goodput: TimeSeries::new("goodput_rps"),
            offered: TimeSeries::new("offered_rps"),
            re_quality: re_quality_series(),
            last_good_re: None,
            last_good_soc: None,
            stale_re_epochs: 0,
            ladder: ladder_series(),
            fleet_live: fleet_series(),
            server_live: Vec::new(),
            route_factor: route_series(),
        }
    }

    /// Record one epoch of fully-trusted observations.
    pub fn record(&mut self, t: SimTime, obs: Observation) {
        self.record_q(t, obs, ObservationQuality::default());
    }

    /// Record one epoch with explicit quality flags. When the supply
    /// reading is not fresh, the stream holds the last-good value (or the
    /// provided reading if no good value exists yet) and the quality
    /// stream drops to 0.
    pub fn record_q(&mut self, t: SimTime, obs: Observation, q: ObservationQuality) {
        let re_w = if q.re_fresh {
            self.last_good_re = Some((t, obs.re_supply_w));
            obs.re_supply_w
        } else {
            self.stale_re_epochs += 1;
            self.last_good_re.map(|(_, w)| w).unwrap_or(obs.re_supply_w)
        };
        if q.soc_trusted {
            self.last_good_soc = Some((t, obs.battery_soc));
        }
        self.re_supply.push(t, re_w);
        self.re_quality.push(t, if q.re_fresh { 1.0 } else { 0.0 });
        self.demand.push(t, obs.demand_w);
        self.battery_power.push(t, obs.battery_w);
        self.battery_soc.push(t, obs.battery_soc);
        self.goodput.push(t, obs.goodput_rps);
        self.offered.push(t, obs.offered_rps);
    }

    /// Renewable-production stream.
    pub fn re_supply(&self) -> &TimeSeries {
        &self.re_supply
    }

    /// Green-rack demand stream (paper Fig. 5's "Power Demand").
    pub fn demand(&self) -> &TimeSeries {
        &self.demand
    }

    /// Battery discharge stream.
    pub fn battery_power(&self) -> &TimeSeries {
        &self.battery_power
    }

    /// Battery state-of-charge stream.
    pub fn battery_soc(&self) -> &TimeSeries {
        &self.battery_soc
    }

    /// Goodput stream.
    pub fn goodput(&self) -> &TimeSeries {
        &self.goodput
    }

    /// Offered-load stream.
    pub fn offered(&self) -> &TimeSeries {
        &self.offered
    }

    /// Supply-reading quality stream (1.0 fresh, 0.0 held-over).
    pub fn re_quality(&self) -> &TimeSeries {
        &self.re_quality
    }

    /// Timestamp and value of the last fresh supply reading, if any.
    pub fn last_good_re(&self) -> Option<(SimTime, f64)> {
        self.last_good_re
    }

    /// Timestamp and value of the last trusted SoC reading, if any.
    pub fn last_good_soc(&self) -> Option<(SimTime, f64)> {
        self.last_good_soc
    }

    /// How many recorded epochs lacked a fresh supply reading.
    pub fn stale_re_epochs(&self) -> usize {
        self.stale_re_epochs
    }

    /// Record the broker-routed load factor applied to one epoch.
    pub fn record_route(&mut self, t: SimTime, factor: f64) {
        self.route_factor.push(t, factor);
    }

    /// Routed-load-factor stream (empty outside datacenter runs).
    pub fn route_factor(&self) -> &TimeSeries {
        &self.route_factor
    }

    /// Record the guardrail's failover-ladder level for one epoch.
    pub fn record_ladder(&mut self, t: SimTime, level: usize) {
        self.ladder.push(t, level as f64);
    }

    /// Failover-ladder level stream (empty when the guardrail is off).
    pub fn ladder(&self) -> &TimeSeries {
        &self.ladder
    }

    /// Record one epoch of per-server liveness: `up[i]` says whether green
    /// server `i` answered this epoch. Feeds the fleet-size stream and one
    /// liveness stream per server.
    pub fn record_fleet(&mut self, t: SimTime, up: &[bool]) {
        self.ensure_fleet_streams(up.len());
        for (i, &alive) in up.iter().enumerate() {
            self.server_live[i].push(t, if alive { 1.0 } else { 0.0 });
        }
        let live = up.iter().filter(|&&a| a).count();
        self.fleet_live.push(t, live as f64);
    }

    /// Materialize the per-server liveness streams for an `n`-server
    /// fleet (idempotent).
    fn ensure_fleet_streams(&mut self, n: usize) {
        while self.server_live.len() < n {
            let i = self.server_live.len();
            self.server_live
                .push(TimeSeries::new(format!("server{i}_live")));
        }
    }

    /// Capacity hint: pre-allocate every per-epoch stream for `epochs`
    /// more epochs of an `n`-server run, so the hot loop appends without
    /// reallocating. Purely an allocation optimization — capacity is not
    /// serialized and no recorded value changes.
    pub fn reserve_epochs(&mut self, n: usize, epochs: usize) {
        self.ensure_fleet_streams(n);
        for s in [
            &mut self.re_supply,
            &mut self.demand,
            &mut self.battery_power,
            &mut self.battery_soc,
            &mut self.goodput,
            &mut self.offered,
            &mut self.re_quality,
            &mut self.ladder,
            &mut self.fleet_live,
            &mut self.route_factor,
        ] {
            s.reserve(epochs);
        }
        for s in &mut self.server_live {
            s.reserve(epochs);
        }
    }

    /// Live-server-count stream (empty until fleet faults are tracked).
    pub fn fleet_live(&self) -> &TimeSeries {
        &self.fleet_live
    }

    /// Per-server liveness streams (1.0 live, 0.0 dead).
    pub fn server_live(&self) -> &[TimeSeries] {
        &self.server_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_all_streams() {
        let mut m = Monitor::new();
        m.record(
            SimTime::from_secs(60),
            Observation {
                re_supply_w: 500.0,
                demand_w: 450.0,
                battery_w: 0.0,
                battery_soc: 1.0,
                goodput_rps: 120.0,
                offered_rps: 150.0,
            },
        );
        m.record(
            SimTime::from_secs(120),
            Observation {
                re_supply_w: 100.0,
                demand_w: 450.0,
                battery_w: 350.0,
                battery_soc: 0.9,
                goodput_rps: 110.0,
                offered_rps: 150.0,
            },
        );
        assert_eq!(m.re_supply().len(), 2);
        assert_eq!(m.demand().sample_at(SimTime::from_secs(90)), Some(450.0));
        assert_eq!(
            m.battery_power().sample_at(SimTime::from_secs(120)),
            Some(350.0)
        );
        assert_eq!(m.battery_soc().points().last().unwrap().1, 0.9);
        assert!(
            m.goodput()
                .window_mean(SimTime::ZERO, SimTime::from_secs(121))
                .unwrap()
                > 100.0
        );
        assert_eq!(m.offered().len(), 2);
        // Trusted recordings keep quality at 1 and track last-good.
        assert_eq!(m.re_quality().points().last().unwrap().1, 1.0);
        assert_eq!(m.last_good_re(), Some((SimTime::from_secs(120), 100.0)));
        assert_eq!(m.stale_re_epochs(), 0);
    }

    #[test]
    fn stale_readings_hold_last_good_and_flag_quality() {
        let mut m = Monitor::new();
        m.record(
            SimTime::from_secs(60),
            Observation {
                re_supply_w: 500.0,
                battery_soc: 0.95,
                ..Observation::default()
            },
        );
        // Sensor dropout: the engine passes a zeroed reading, not fresh.
        m.record_q(
            SimTime::from_secs(120),
            Observation {
                re_supply_w: 0.0,
                battery_soc: 0.90,
                ..Observation::default()
            },
            ObservationQuality {
                re_fresh: false,
                soc_trusted: false,
            },
        );
        // The supply stream held the last-good value...
        assert_eq!(m.re_supply().points().last().unwrap().1, 500.0);
        // ...the quality stream says why...
        assert_eq!(m.re_quality().points().last().unwrap().1, 0.0);
        // ...and the last-good markers did not advance.
        assert_eq!(m.last_good_re(), Some((SimTime::from_secs(60), 500.0)));
        assert_eq!(m.last_good_soc(), Some((SimTime::from_secs(60), 0.95)));
        assert_eq!(m.stale_re_epochs(), 1);
    }

    #[test]
    fn stale_before_any_good_reading_passes_the_raw_value() {
        let mut m = Monitor::new();
        m.record_q(
            SimTime::from_secs(60),
            Observation {
                re_supply_w: 42.0,
                ..Observation::default()
            },
            ObservationQuality {
                re_fresh: false,
                soc_trusted: true,
            },
        );
        assert_eq!(m.re_supply().points().last().unwrap().1, 42.0);
        assert_eq!(m.last_good_re(), None);
        assert_eq!(m.stale_re_epochs(), 1);
    }

    #[test]
    fn fleet_streams_record_liveness_and_are_optional() {
        let mut m = Monitor::new();
        assert_eq!(m.fleet_live().len(), 0);
        assert!(m.server_live().is_empty());
        m.record_fleet(SimTime::from_secs(60), &[true, true, false]);
        m.record_fleet(SimTime::from_secs(120), &[true, false, false]);
        assert_eq!(m.fleet_live().points().last().unwrap().1, 1.0);
        assert_eq!(m.server_live().len(), 3);
        assert_eq!(m.server_live()[0].points().last().unwrap().1, 1.0);
        assert_eq!(m.server_live()[2].points().last().unwrap().1, 0.0);
        assert_eq!(m.server_live()[1].name(), "server1_live");
        // Pre-fleet serialized monitors deserialize with empty fleet
        // streams rather than failing.
        let json = serde_json::to_string(&Monitor::new()).unwrap();
        let stripped = json
            .replace(
                ",\"fleet_live\":{\"points\":[],\"name\":\"fleet_live\"}",
                "",
            )
            .replace(",\"server_live\":[]", "");
        assert_ne!(json, stripped);
        let old: Monitor = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.fleet_live().len(), 0);
        assert!(old.server_live().is_empty());
    }

    #[test]
    fn ladder_stream_is_optional_and_records_levels() {
        let mut m = Monitor::new();
        assert_eq!(m.ladder().len(), 0);
        m.record_ladder(SimTime::from_secs(60), 0);
        m.record_ladder(SimTime::from_secs(120), 2);
        assert_eq!(m.ladder().len(), 2);
        assert_eq!(m.ladder().points().last().unwrap().1, 2.0);
        // Pre-guardrail serialized monitors deserialize with an empty
        // ladder stream rather than failing.
        let json = serde_json::to_string(&Monitor::new()).unwrap();
        let stripped = json.replace(",\"ladder\":{\"points\":[],\"name\":\"ladder_level\"}", "");
        assert_ne!(json, stripped);
        let old: Monitor = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.ladder().len(), 0);
    }

    #[test]
    fn route_stream_is_optional_and_records_factors() {
        let mut m = Monitor::new();
        assert_eq!(m.route_factor().len(), 0);
        m.record_route(SimTime::from_secs(60), 1.0);
        m.record_route(SimTime::from_secs(120), 1.4);
        assert_eq!(m.route_factor().len(), 2);
        assert_eq!(m.route_factor().points().last().unwrap().1, 1.4);
        // Pre-broker serialized monitors deserialize with an empty route
        // stream rather than failing.
        let json = serde_json::to_string(&Monitor::new()).unwrap();
        let stripped = json.replace(
            ",\"route_factor\":{\"points\":[],\"name\":\"route_factor\"}",
            "",
        );
        assert_ne!(json, stripped);
        let old: Monitor = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.route_factor().len(), 0);
    }
}
