//! The Monitor (paper Fig. 3): collects the power and performance signals
//! the Predictor, PSS, and PMK consume, and retains them as time series
//! for reporting (paper Fig. 5 is drawn straight from these streams).

use gs_sim::{SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// One epoch's observations for the green rack.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Renewable production available to the rack (W).
    pub re_supply_w: f64,
    /// Aggregate power demand of the green servers (W).
    pub demand_w: f64,
    /// Aggregate battery discharge (W).
    pub battery_w: f64,
    /// Mean battery state of charge across the rack (fraction).
    pub battery_soc: f64,
    /// Aggregate goodput of the green servers (req/s).
    pub goodput_rps: f64,
    /// Offered load per green server (req/s).
    pub offered_rps: f64,
}

/// Time-series retention of every observation stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Monitor {
    re_supply: TimeSeries,
    demand: TimeSeries,
    battery_power: TimeSeries,
    battery_soc: TimeSeries,
    goodput: TimeSeries,
    offered: TimeSeries,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Monitor {
            re_supply: TimeSeries::new("re_supply_w"),
            demand: TimeSeries::new("demand_w"),
            battery_power: TimeSeries::new("battery_w"),
            battery_soc: TimeSeries::new("battery_soc"),
            goodput: TimeSeries::new("goodput_rps"),
            offered: TimeSeries::new("offered_rps"),
        }
    }

    /// Record one epoch.
    pub fn record(&mut self, t: SimTime, obs: Observation) {
        self.re_supply.push(t, obs.re_supply_w);
        self.demand.push(t, obs.demand_w);
        self.battery_power.push(t, obs.battery_w);
        self.battery_soc.push(t, obs.battery_soc);
        self.goodput.push(t, obs.goodput_rps);
        self.offered.push(t, obs.offered_rps);
    }

    /// Renewable-production stream.
    pub fn re_supply(&self) -> &TimeSeries {
        &self.re_supply
    }

    /// Green-rack demand stream (paper Fig. 5's "Power Demand").
    pub fn demand(&self) -> &TimeSeries {
        &self.demand
    }

    /// Battery discharge stream.
    pub fn battery_power(&self) -> &TimeSeries {
        &self.battery_power
    }

    /// Battery state-of-charge stream.
    pub fn battery_soc(&self) -> &TimeSeries {
        &self.battery_soc
    }

    /// Goodput stream.
    pub fn goodput(&self) -> &TimeSeries {
        &self.goodput
    }

    /// Offered-load stream.
    pub fn offered(&self) -> &TimeSeries {
        &self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_all_streams() {
        let mut m = Monitor::new();
        m.record(
            SimTime::from_secs(60),
            Observation {
                re_supply_w: 500.0,
                demand_w: 450.0,
                battery_w: 0.0,
                battery_soc: 1.0,
                goodput_rps: 120.0,
                offered_rps: 150.0,
            },
        );
        m.record(
            SimTime::from_secs(120),
            Observation {
                re_supply_w: 100.0,
                demand_w: 450.0,
                battery_w: 350.0,
                battery_soc: 0.9,
                goodput_rps: 110.0,
                offered_rps: 150.0,
            },
        );
        assert_eq!(m.re_supply().len(), 2);
        assert_eq!(m.demand().sample_at(SimTime::from_secs(90)), Some(450.0));
        assert_eq!(
            m.battery_power().sample_at(SimTime::from_secs(120)),
            Some(350.0)
        );
        assert_eq!(m.battery_soc().points().last().unwrap().1, 0.9);
        assert!(
            m.goodput()
                .window_mean(SimTime::ZERO, SimTime::from_secs(121))
                .unwrap()
                > 100.0
        );
        assert_eq!(m.offered().len(), 2);
    }
}
