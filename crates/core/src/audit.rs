//! Runtime invariant auditor: an independent check that the simulated
//! physics stayed sane, epoch by epoch.
//!
//! The engine settles energy flows against batteries and meters; the
//! auditor re-derives the conservation law from the settled per-epoch
//! flows and flags any epoch where the books do not balance, a battery
//! leaves its legal state-of-charge band, the grid draw exceeds the
//! breaker cap, or a power term goes negative. It runs inside the epoch
//! loop (enabled by [`EngineConfig::audit`](crate::engine::EngineConfig),
//! on by default) and accumulates human-readable violation strings into
//! [`BurstOutcome::audit_violations`](crate::engine::BurstOutcome) — a
//! tripwire for physics regressions under PR churn, and a hard failure
//! for `chaos` runs.
//!
//! The auditor is a pure checker over [`EpochFlows`] records, so tests
//! can feed it deliberately corrupted flows and watch it fire without
//! running an engine at all.

/// One epoch's settled physical energy flows, as the engine booked them.
///
/// All energies are in watt-hours over the epoch; state-of-charge entries
/// are fractions of rated capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochFlows {
    /// Which epoch of the window this is (for violation messages).
    pub epoch_index: usize,
    /// Renewable energy the bus physically delivered.
    pub supply_wh: f64,
    /// Energy discharged from the batteries into servers.
    pub battery_discharge_wh: f64,
    /// Energy drawn from the grid (serving + recharge).
    pub grid_wh: f64,
    /// Energy delivered into servers, accumulated source-side at
    /// settlement time.
    pub server_wh: f64,
    /// Energy drawn into battery charging (renewable surplus plus grid
    /// recharge), measured on the drawn side of the charger.
    pub charge_wh: f64,
    /// Renewable energy curtailed.
    pub curtailed_wh: f64,
    /// Per-battery `(soc_fraction, max_dod)` after settlement.
    pub socs: Vec<(f64, f64)>,
    /// Breaker cap on mean grid draw over an epoch (W).
    pub grid_cap_w: f64,
    /// Epoch length in hours (converts the energy terms to mean power).
    pub epoch_hours: f64,
    /// During a guardrail failover epoch: `(rack goodput, required
    /// Normal-floor goodput)`, both in req/s. `None` when the guardrail
    /// is off or the configured strategy is steering. Failover exists to
    /// degrade *to* the Normal floor, never below it — scaled by the live
    /// fleet, because a dead server owes nothing.
    pub failover_floor: Option<(f64, f64)>,
    /// Servers carrying load this epoch (fleet faults shrink this below
    /// the configured rack size).
    pub live_servers: usize,
    /// Energy the settlement attributed to servers that were down this
    /// epoch. Must be zero: a crashed server draws 0 W, not an idle floor.
    pub dead_server_wh: f64,
    /// `(rack goodput, live-capacity ceiling)`, both in req/s: aggregate
    /// goodput can never exceed what the live servers could serve flat-out
    /// at max sprint. `None` when the engine has no capacity model for the
    /// epoch (e.g. DES measurement noise makes the bound advisory).
    pub goodput_capacity: Option<(f64, f64)>,
}

/// One epoch's settled cross-rack routing state, as the datacenter broker
/// booked it. The broker feeds one of these per epoch to
/// [`InvariantAuditor::check_site_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SiteFlows {
    /// Which epoch of the run this is (for violation messages).
    pub epoch_index: usize,
    /// The load factor the broker *computed* for each rack this epoch
    /// (stale applied factors under link delay are counted separately,
    /// not treated as conservation violations).
    pub factors: Vec<f64>,
    /// True for racks the broker believes fully dark (zero live servers).
    pub dark: Vec<bool>,
    /// Each rack's settled power demand this epoch (W).
    pub rack_demand_w: Vec<f64>,
}

/// Relative tolerance for the energy-conservation balance. The settlement
/// arithmetic is exact up to floating-point rounding, so anything beyond
/// parts-per-million is a genuine accounting bug, not noise.
const ENERGY_REL_TOL: f64 = 1e-6;
/// Absolute tolerance on state-of-charge bounds.
const SOC_TOL: f64 = 1e-6;
/// Watts of slack on the breaker cap (absorbs rounding in the Wh→W
/// conversion).
const GRID_CAP_TOL_W: f64 = 1e-6;
/// Negative-energy slack: settlement never produces meaningful negatives,
/// but `a - b` of equal floats can land a hair below zero.
const NEG_TOL_WH: f64 = 1e-9;
/// Watts of slack on a blacked-out rack's settled demand: a dark rack's
/// servers are all crashed, so its draw is exactly zero up to rounding.
const SITE_DARK_TOL_W: f64 = 1e-6;

/// Accumulates invariant violations across a run.
///
/// # Example
///
/// ```
/// use greensprint::audit::{EpochFlows, InvariantAuditor};
///
/// let mut aud = InvariantAuditor::new();
/// aud.check_epoch(&EpochFlows {
///     epoch_index: 0,
///     supply_wh: 10.0,
///     battery_discharge_wh: 2.0,
///     grid_wh: 1.0,
///     server_wh: 9.0,
///     charge_wh: 3.0,
///     curtailed_wh: 1.0,
///     socs: vec![(0.8, 0.4)],
///     grid_cap_w: 500.0,
///     epoch_hours: 1.0 / 60.0,
///     failover_floor: None,
///     live_servers: 3,
///     dead_server_wh: 0.0,
///     goodput_capacity: None,
/// });
/// assert!(aud.violations().is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct InvariantAuditor {
    violations: Vec<String>,
}

impl InvariantAuditor {
    /// A fresh auditor with no violations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild an auditor mid-run from previously recorded violations
    /// (checkpoint resume).
    pub fn with_violations(violations: Vec<String>) -> Self {
        Self { violations }
    }

    /// Check one epoch's settled flows against every invariant,
    /// accumulating a message per violation.
    // The negated comparisons are deliberate: a NaN flow must land in the
    // violation branch, which `<`/`>` would silently pass.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn check_epoch(&mut self, f: &EpochFlows) {
        let k = f.epoch_index;

        // Non-negative energy terms. A negative flow means a meter or the
        // settlement code ran backwards.
        for (name, v) in [
            ("renewable supply", f.supply_wh),
            ("battery discharge", f.battery_discharge_wh),
            ("grid draw", f.grid_wh),
            ("server draw", f.server_wh),
            ("battery charge", f.charge_wh),
            ("curtailment", f.curtailed_wh),
        ] {
            if !(v >= -NEG_TOL_WH) {
                self.violations
                    .push(format!("epoch {k}: negative {name}: {v} Wh"));
            }
        }

        // Energy conservation: everything the sources delivered must land
        // in a server, a battery, or the curtailment bucket.
        let inflow = f.supply_wh + f.battery_discharge_wh + f.grid_wh;
        let outflow = f.server_wh + f.charge_wh + f.curtailed_wh;
        let tol = ENERGY_REL_TOL * inflow.abs().max(outflow.abs()).max(1.0);
        if !((inflow - outflow).abs() <= tol) {
            self.violations.push(format!(
                "epoch {k}: energy imbalance: inflow {inflow:.9} Wh \
                 (supply {:.9} + battery {:.9} + grid {:.9}) != outflow {outflow:.9} Wh \
                 (servers {:.9} + charge {:.9} + curtailed {:.9})",
                f.supply_wh,
                f.battery_discharge_wh,
                f.grid_wh,
                f.server_wh,
                f.charge_wh,
                f.curtailed_wh,
            ));
        }

        // State of charge stays inside [reserve, full]: the DoD cap is the
        // discharge floor and a charger cannot overfill the plates.
        for (i, &(soc, max_dod)) in f.socs.iter().enumerate() {
            let reserve = 1.0 - max_dod;
            if !(soc >= reserve - SOC_TOL && soc <= 1.0 + SOC_TOL) {
                self.violations.push(format!(
                    "epoch {k}: battery {i} SoC {soc} outside [{reserve}, 1]"
                ));
            }
        }

        // Breaker cap: mean grid draw over the epoch never exceeds every
        // server at Normal mode plus every charger at its C-rate limit.
        if f.epoch_hours > 0.0 {
            let grid_w = f.grid_wh / f.epoch_hours;
            if !(grid_w <= f.grid_cap_w + GRID_CAP_TOL_W) {
                self.violations.push(format!(
                    "epoch {k}: grid draw {grid_w:.6} W exceeds breaker cap {:.6} W",
                    f.grid_cap_w
                ));
            }
        }

        // Guardrail failover floor: a demoted epoch whose goodput lands
        // under the Normal floor means the ladder made things worse than
        // never sprinting at all.
        if let Some((goodput, floor)) = f.failover_floor {
            if !(goodput >= floor) {
                self.violations.push(format!(
                    "epoch {k}: failover goodput {goodput:.6} req/s \
                     below Normal floor {floor:.6} req/s"
                ));
            }
        }

        // Dead servers draw nothing: any energy settled against a downed
        // server means the fleet bookkeeping and the power settlement
        // disagree about who was alive.
        if !(f.dead_server_wh.abs() <= NEG_TOL_WH) {
            self.violations.push(format!(
                "epoch {k}: {:.9} Wh attributed to dead servers \
                 ({} live)",
                f.dead_server_wh, f.live_servers
            ));
        }

        // Live-capacity ceiling: the rack cannot serve more goodput than
        // its live servers could at max sprint, no matter what the
        // redistribution arithmetic claims.
        if let Some((goodput, ceiling)) = f.goodput_capacity {
            let tol = ENERGY_REL_TOL * ceiling.abs().max(1.0);
            if !(goodput <= ceiling + tol) {
                self.violations.push(format!(
                    "epoch {k}: goodput {goodput:.6} req/s exceeds \
                     live-capacity ceiling {ceiling:.6} req/s \
                     ({} live server(s))",
                    f.live_servers
                ));
            }
        }
    }

    /// Check one epoch's site-level routing state from the datacenter
    /// broker: routed load is conserved across the fleet, every factor is a
    /// finite non-negative scale, and a blacked-out rack draws no power.
    // Negated comparisons again so NaN factors land in the violation branch.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn check_site_epoch(&mut self, f: &SiteFlows) {
        let k = f.epoch_index;
        let n = f.factors.len();

        let mut sum = 0.0;
        for (r, &factor) in f.factors.iter().enumerate() {
            if !(factor.is_finite() && factor >= -ENERGY_REL_TOL) {
                self.violations.push(format!(
                    "epoch {k}: rack {r} routed factor {factor} is not a \
                     finite non-negative scale"
                ));
            }
            sum += factor;
        }

        // Conservation of routed load: scaling one rack up must have come
        // out of another rack's share. The broker hands out exactly the
        // fleet's nominal demand, N rack-units, every epoch.
        let expected = n as f64;
        let tol = ENERGY_REL_TOL * expected.max(1.0);
        if !((sum - expected).abs() <= tol) {
            self.violations.push(format!(
                "epoch {k}: routed load not conserved: factors sum to \
                 {sum:.9} across {n} rack(s), expected {expected:.9}"
            ));
        }

        // A blacked-out rack has no inverter output and no live servers:
        // any settled demand against it means the site bookkeeping and the
        // rack settlement disagree.
        for (r, (&dark, &demand_w)) in f.dark.iter().zip(f.rack_demand_w.iter()).enumerate() {
            if dark && !(demand_w.abs() <= SITE_DARK_TOL_W) {
                self.violations.push(format!(
                    "epoch {k}: blacked-out rack {r} drew {demand_w:.9} W"
                ));
            }
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Consume the auditor, yielding its violations.
    pub fn into_violations(self) -> Vec<String> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> EpochFlows {
        EpochFlows {
            epoch_index: 3,
            supply_wh: 12.0,
            battery_discharge_wh: 4.0,
            grid_wh: 6.0,
            server_wh: 15.0,
            charge_wh: 5.0,
            curtailed_wh: 2.0,
            socs: vec![(0.85, 0.40), (0.61, 0.40)],
            grid_cap_w: 1_000.0,
            epoch_hours: 1.0 / 60.0,
            failover_floor: None,
            live_servers: 2,
            dead_server_wh: 0.0,
            goodput_capacity: None,
        }
    }

    #[test]
    fn clean_flows_pass() {
        let mut aud = InvariantAuditor::new();
        for _ in 0..10 {
            aud.check_epoch(&balanced());
        }
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
    }

    #[test]
    fn rounding_noise_is_tolerated() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.server_wh += 1e-9;
        aud.check_epoch(&f);
        // A term a hair below zero from float cancellation is noise, not a
        // violation (books kept balanced: the 2 Wh move to the servers).
        let mut f = balanced();
        f.curtailed_wh = -1e-12;
        f.server_wh += 2.0;
        aud.check_epoch(&f);
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
    }

    #[test]
    fn energy_imbalance_fires() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        // A watt-hour vanishes into thin air.
        f.server_wh -= 1.0;
        aud.check_epoch(&f);
        assert_eq!(aud.violations().len(), 1, "{:?}", aud.violations());
        assert!(aud.violations()[0].contains("energy imbalance"));
        assert!(aud.violations()[0].contains("epoch 3"));
    }

    #[test]
    fn soc_bounds_fire_on_both_sides() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.socs = vec![(0.55, 0.40), (1.02, 0.40), (0.61, 0.40)];
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("battery 0 SoC"), "{v:?}");
        assert!(v[1].contains("battery 1 SoC"), "{v:?}");
    }

    #[test]
    fn grid_cap_fires() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        // Rebalance so only the breaker cap trips: bump grid inflow and
        // sink it into servers.
        f.grid_wh += 100.0;
        f.server_wh += 100.0;
        f.grid_cap_w = 500.0;
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("breaker cap"), "{v:?}");
    }

    #[test]
    fn negative_terms_fire() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.battery_discharge_wh = -4.0;
        f.server_wh -= 8.0; // keep the books balanced; only the sign check trips
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("negative battery discharge"), "{v:?}");
    }

    #[test]
    fn failover_floor_fires_only_when_goodput_falls_below_it() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.failover_floor = Some((900.0, 1_000.0));
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("failover goodput"), "{v:?}");

        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.failover_floor = Some((1_000.0, 1_000.0));
        aud.check_epoch(&f);
        f.failover_floor = None;
        aud.check_epoch(&f);
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());

        // NaN goodput during failover is a violation, not a pass.
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.failover_floor = Some((f64::NAN, 1_000.0));
        aud.check_epoch(&f);
        assert_eq!(aud.violations().len(), 1);
    }

    #[test]
    fn dead_server_energy_fires() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.live_servers = 1;
        f.dead_server_wh = 0.25;
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("attributed to dead servers"), "{v:?}");

        // Float-cancellation dust and NaN behave as for the other terms.
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.dead_server_wh = 1e-12;
        aud.check_epoch(&f);
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.dead_server_wh = f64::NAN;
        aud.check_epoch(&f);
        assert_eq!(aud.violations().len(), 1);
    }

    #[test]
    fn goodput_capacity_ceiling_fires_only_when_exceeded() {
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.live_servers = 1;
        f.goodput_capacity = Some((1_500.0, 1_000.0));
        aud.check_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("live-capacity ceiling"), "{v:?}");

        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.goodput_capacity = Some((1_000.0, 1_000.0));
        aud.check_epoch(&f);
        f.goodput_capacity = None;
        aud.check_epoch(&f);
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());

        // NaN goodput cannot sneak under the ceiling.
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.goodput_capacity = Some((f64::NAN, 1_000.0));
        aud.check_epoch(&f);
        assert_eq!(aud.violations().len(), 1);
    }

    fn site_balanced() -> SiteFlows {
        SiteFlows {
            epoch_index: 7,
            factors: vec![1.2, 0.8, 1.0],
            dark: vec![false, false, false],
            rack_demand_w: vec![900.0, 650.0, 780.0],
        }
    }

    #[test]
    fn clean_site_flows_pass() {
        let mut aud = InvariantAuditor::new();
        for _ in 0..10 {
            aud.check_site_epoch(&site_balanced());
        }
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
    }

    #[test]
    fn unconserved_routed_load_fires() {
        let mut aud = InvariantAuditor::new();
        let mut f = site_balanced();
        // A tenth of a rack-unit of load vanishes in routing.
        f.factors[1] = 0.7;
        aud.check_site_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("routed load not conserved"), "{v:?}");
    }

    #[test]
    fn degenerate_site_factors_fire() {
        // Negative factor: fails the per-factor check AND throws the sum
        // off, so two violations land.
        let mut aud = InvariantAuditor::new();
        let mut f = site_balanced();
        f.factors[0] = -0.5;
        aud.check_site_epoch(&f);
        assert_eq!(aud.violations().len(), 2, "{:?}", aud.violations());

        // NaN factor poisons the per-factor check and the sum.
        let mut aud = InvariantAuditor::new();
        let mut f = site_balanced();
        f.factors[2] = f64::NAN;
        aud.check_site_epoch(&f);
        assert_eq!(aud.violations().len(), 2, "{:?}", aud.violations());
    }

    #[test]
    fn dark_rack_drawing_power_fires() {
        let mut aud = InvariantAuditor::new();
        let mut f = site_balanced();
        f.dark[1] = true;
        f.factors = vec![1.5, 0.0, 1.5];
        f.rack_demand_w[1] = 0.0;
        aud.check_site_epoch(&f);
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());

        // Same shape but the dark rack's meter shows real watts.
        f.rack_demand_w[1] = 120.0;
        aud.check_site_epoch(&f);
        let v = aud.into_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("blacked-out rack 1 drew"), "{v:?}");
    }

    #[test]
    fn nan_flows_are_violations_not_passes() {
        // NaN comparisons are false both ways; the checks are written so a
        // NaN lands in the violation branch.
        let mut aud = InvariantAuditor::new();
        let mut f = balanced();
        f.server_wh = f64::NAN;
        aud.check_epoch(&f);
        assert!(
            aud.violations()
                .iter()
                .any(|v| v.contains("energy imbalance")),
            "{:?}",
            aud.violations()
        );
    }
}
