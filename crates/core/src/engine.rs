//! The scheduling-epoch engine.
//!
//! Reproduces the prototype's control loop (paper §III/§IV): a workload
//! burst hits the cluster; every epoch the Monitor publishes observations,
//! the Predictor forecasts the next epoch, the PSS classifies the supply
//! case and allocates renewable/battery/grid power, and the PMK picks each
//! green server's sprint setting. The workload layer then *measures* the
//! epoch — by request-level DES by default, or by the analytic queueing
//! model for fast sweeps — and the energy flows are settled against the
//! battery and the meters.
//!
//! Performance is reported exactly as in the paper: the mean goodput of
//! the green-provisioned servers over the burst, normalized to a Normal
//! (no-sprint) run of the same burst.

use crate::audit::{EpochFlows, InvariantAuditor};
use crate::checkpoint::{EngineSnapshot, LoopState, MainCarry, RunPhase, SnapshotScope};
use crate::config::{AvailabilityLevel, GreenConfig};
use crate::faults::{ActiveFaults, FaultPlan};
use crate::fleet::{EngineScratch, FleetState};
use crate::guardrail::{
    EpochSignals, Guardrail, GuardrailAction, GuardrailConfig, QuarantineRecord,
};
use crate::monitor::{Monitor, Observation, ObservationQuality};
use crate::pmk::{ActuationWatchdog, Pmk, PmkContext, Strategy};
use crate::predictor::Predictor;
use crate::profiler::ProfileTable;
use crate::qlearning::{reward, QState, RewardInputs};
use gs_cluster::ServerSetting;
use gs_power::battery::Battery;
use gs_power::meter::{PowerMeter, Source};
use gs_power::pss::{PowerSourceSelector, SupplyCase};
use gs_power::solar::{PvArray, SolarTrace};
use gs_sim::{SimDuration, SimRng, SimTime};
use gs_workload::apps::{AppProfile, Application};
use gs_workload::arrivals::BurstPattern;
use gs_workload::des::ServerSim;
use gs_workload::metrics::EpochPerf;
use serde::{Deserialize, Serialize};

/// Why a configuration cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The scheduling epoch is zero.
    ZeroEpoch,
    /// The burst is shorter than one epoch.
    SubEpochBurst,
    /// `warm_policy_json` is not a valid exported policy.
    InvalidWarmPolicy(String),
    /// A campaign was asked to run zero days.
    ZeroDays,
    /// `trace_override` is unusable (empty or non-finite samples — e.g. a
    /// scenario file that deserialized garbage straight into the trace).
    InvalidTrace(String),
    /// `fault_plan` contains a physically meaningless event.
    InvalidFaultPlan(String),
    /// The green cluster has zero servers — every per-server share would
    /// divide by zero.
    ZeroServers,
    /// A numeric threshold (named inside) is NaN or outside its legal
    /// range.
    InvalidThreshold(String),
    /// The guardrail configuration cannot supervise anything (a learned
    /// fallback, zero-length streaks, non-finite thresholds).
    InvalidGuardrail(String),
    /// Snapshots capture the full controller state, which the DES
    /// measurement plane cannot serialize — checkpointed runs must use
    /// `MeasurementMode::Analytic`.
    SnapshotRequiresAnalytic,
    /// A snapshot cannot resume here: its fingerprint (code + config) no
    /// longer matches, or its shape is inconsistent.
    SnapshotMismatch(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroEpoch => f.write_str("epoch must be positive"),
            EngineError::SubEpochBurst => f.write_str("burst must span at least one epoch"),
            EngineError::InvalidWarmPolicy(e) => write!(f, "invalid warm_policy_json: {e}"),
            EngineError::ZeroDays => f.write_str("campaign needs at least one day"),
            EngineError::InvalidTrace(e) => write!(f, "invalid trace_override: {e}"),
            EngineError::InvalidFaultPlan(e) => write!(f, "invalid fault_plan: {e}"),
            EngineError::ZeroServers => f.write_str("green cluster needs at least one server"),
            EngineError::InvalidThreshold(e) => write!(f, "invalid threshold: {e}"),
            EngineError::InvalidGuardrail(e) => write!(f, "invalid guardrail: {e}"),
            EngineError::SnapshotRequiresAnalytic => f.write_str(
                "snapshots require analytic measurement (DES state is not serializable)",
            ),
            EngineError::SnapshotMismatch(e) => write!(f, "snapshot mismatch: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Which thermal package the green servers carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalModel {
    /// The paper's assumption: PCM-buffered package; sprints of the
    /// evaluated durations never hit the junction limit.
    PaperPcm,
    /// No phase-change buffer: classic minutes-scale sprint headroom; the
    /// engine throttles to Normal when the junction limit trips.
    NoPcm,
    /// Skip thermal simulation entirely (fast sweeps).
    Disabled,
}

/// Which renewable-supply predictor the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The paper's raw EWMA over observed production (Eq. 1, α = 0.3).
    PaperEwma,
    /// Clear-sky-indexed EWMA: smooth the cloud attenuation and project it
    /// onto the known solar-geometry curve (extension; strictly better on
    /// dawn/dusk ramps).
    ClearSkyIndexed,
}

/// How epochs are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasurementMode {
    /// Request-level discrete-event simulation (the default; slower,
    /// higher fidelity, stochastic).
    Des,
    /// Closed-form queueing model (deterministic, fast; used for wide
    /// parameter sweeps and quick tests).
    Analytic,
}

/// Everything one burst experiment needs.
///
/// Deserializes with per-field defaults, so a scenario file only needs to
/// name the fields it changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct EngineConfig {
    /// The hosted application.
    pub app: Application,
    /// Green-provisioning option (Table I).
    pub green: GreenConfig,
    /// The PMK strategy under test.
    pub strategy: Strategy,
    /// Renewable availability level (paper Fig. 5 windows).
    pub availability: AvailabilityLevel,
    /// Burst length (the paper sweeps 10/15/30/60 minutes).
    pub burst_duration: SimDuration,
    /// Burst intensity `Int=k`: offered load equals the capacity of `k`
    /// cores at 2.0 GHz (paper §IV-D).
    pub burst_intensity_cores: u8,
    /// Scheduling epoch (the paper uses minutes-scale epochs).
    pub epoch: SimDuration,
    /// Horizon over which Parallel/Pacing budget battery energy.
    pub planning_horizon: SimDuration,
    /// Epoch measurement mode.
    pub measurement: MeasurementMode,
    /// Thermal package on the green servers.
    pub thermal: ThermalModel,
    /// Hour of day the burst starts (near solar noon by default so the
    /// Maximum availability window is genuinely maximal).
    pub burst_start_hour: f64,
    /// PMK switching hysteresis: keep the previous epoch's setting when
    /// its expected performance is within this fraction of the new
    /// choice's (0 = always switch, the paper's behaviour).
    pub switch_hysteresis: f64,
    /// Replay a specific irradiance trace (e.g. loaded from an NREL CSV
    /// via `gs_power::trace_io`) instead of the synthetic one implied by
    /// `availability`.
    pub trace_override: Option<SolarTrace>,
    /// Renewable-supply predictor (the paper's EWMA by default).
    pub predictor: PredictorKind,
    /// Warm-start the Hybrid learner from a policy exported by a previous
    /// run (`QLearner::to_json`); `None` bootstraps from the profiling
    /// tables as in the paper. Ignored by the other strategies.
    pub warm_policy_json: Option<String>,
    /// Deterministic fault-injection schedule replayed over the run
    /// (telemetry, supply, and actuation faults); `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Run the invariant auditor inside the epoch loop (energy
    /// conservation, SoC bounds, breaker cap, non-negative flows),
    /// accumulating violations into the outcome. On by default; the cost
    /// is a handful of additions per epoch.
    pub audit: bool,
    /// Consecutive commanded-vs-observed actuation mismatches before the
    /// watchdog clamps a server to Normal (must be at least 1).
    pub watchdog_threshold: u32,
    /// Policy guardrail: shadow fallback scoring, misbehavior detectors,
    /// and the failover ladder. Disabled by default — the paper-faithful
    /// controller runs unsupervised.
    pub guardrail: GuardrailConfig,
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
}

impl EngineConfig {
    /// Checks shared by every epoch loop this config can drive (bursts
    /// and campaigns): a positive epoch and a parseable warm policy.
    pub(crate) fn validate_base(&self) -> Result<(), EngineError> {
        if self.epoch.is_zero() {
            return Err(EngineError::ZeroEpoch);
        }
        if self.green.green_servers == 0 {
            return Err(EngineError::ZeroServers);
        }
        if !(0.0..=1.0).contains(&self.switch_hysteresis) {
            // NaN is not contained in any range, so it fails here too.
            return Err(EngineError::InvalidThreshold(format!(
                "switch_hysteresis must be in [0, 1], got {}",
                self.switch_hysteresis
            )));
        }
        if let Some(json) = &self.warm_policy_json {
            if let Err(e) = crate::qlearning::QLearner::from_json(json) {
                return Err(EngineError::InvalidWarmPolicy(e.to_string()));
            }
        }
        // Scenario JSON deserializes the trace's private samples directly,
        // bypassing the clamping constructors — validate before running.
        if let Some(trace) = &self.trace_override {
            if let Err(e) = trace.validate() {
                return Err(EngineError::InvalidTrace(e.to_string()));
            }
        }
        if let Some(plan) = &self.fault_plan {
            // Validate against this rack's size too: an event targeting a
            // server the rack does not have would silently no-op (or
            // worse, index out of range) mid-burst.
            if let Err(e) = plan.validate_for(self.green.green_servers) {
                return Err(EngineError::InvalidFaultPlan(e));
            }
        }
        if self.watchdog_threshold == 0 {
            return Err(EngineError::InvalidThreshold(
                "watchdog_threshold must be at least 1, got 0".to_string(),
            ));
        }
        if let Err(e) = self.guardrail.validate() {
            return Err(EngineError::InvalidGuardrail(e));
        }
        Ok(())
    }

    /// Validate this configuration for a single-burst run.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.validate_base()?;
        if self.burst_duration.div_duration(self.epoch).unwrap_or(0) < 1 {
            return Err(EngineError::SubEpochBurst);
        }
        if !(0.0..24.0).contains(&self.burst_start_hour) {
            // NaN is not contained in any range, so it fails here too.
            return Err(EngineError::InvalidThreshold(format!(
                "burst_start_hour must be in [0, 24), got {}",
                self.burst_start_hour
            )));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_batt(),
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(10),
            burst_intensity_cores: 12,
            epoch: SimDuration::from_secs(60),
            planning_horizon: SimDuration::from_mins(10),
            measurement: MeasurementMode::Des,
            thermal: ThermalModel::PaperPcm,
            burst_start_hour: 11.0,
            switch_hysteresis: 0.0,
            predictor: PredictorKind::PaperEwma,
            trace_override: None,
            warm_policy_json: None,
            fault_plan: None,
            audit: true,
            watchdog_threshold: crate::pmk::WATCHDOG_THRESHOLD,
            guardrail: GuardrailConfig::default(),
            seed: 7,
        }
    }
}

/// Consecutive healthy epochs a returning server must string together
/// before it rejoins the plan and regains load — the fleet's rejoin
/// hysteresis. A flapping server keeps resetting its streak, so it can
/// never oscillate the capacity plan.
pub const REJOIN_EPOCHS: u32 = 3;

/// One epoch's record for reporting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch start time.
    pub t: SimTime,
    /// The setting chosen for the green servers this epoch.
    pub setting: ServerSetting,
    /// The PSS supply case this epoch fell into.
    pub case: SupplyCase,
    /// Renewable power available (W).
    pub re_supply_w: f64,
    /// Renewable power consumed by the sprint (W).
    pub re_used_w: f64,
    /// Battery power consumed (W).
    pub battery_w: f64,
    /// Aggregate green-server demand (W).
    pub demand_w: f64,
    /// Mean battery state of charge after the epoch.
    pub battery_soc: f64,
    /// Offered load per server (req/s).
    pub offered_rps: f64,
    /// Goodput summed over the green servers (req/s).
    pub goodput_rps: f64,
    /// How many green servers were sprinting this epoch.
    pub sprinting_servers: u8,
    /// True if the controller planned this epoch in safe mode (no verified
    /// supply observation). Absent in pre-fault serialized records.
    #[serde(default)]
    pub safe_mode: bool,
    /// The guardrail ladder level that steered this epoch (0 = the
    /// configured strategy; always 0 with the guardrail off). Absent in
    /// pre-guardrail serialized records.
    #[serde(default)]
    pub ladder_level: u8,
    /// Servers carrying load this epoch (the full rack minus crashed,
    /// flapping, and rejoin-probation servers). Absent in pre-fleet
    /// serialized records.
    #[serde(default)]
    pub live_servers: u8,
}

/// The result of one burst experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstOutcome {
    /// Mean per-server goodput over the burst (req/s).
    pub mean_goodput_rps: f64,
    /// The Normal baseline's mean per-server goodput (req/s).
    pub normal_baseline_rps: f64,
    /// The paper's headline metric: goodput normalized to Normal.
    pub speedup_vs_normal: f64,
    /// Fraction of offered requests that met the SLO over the burst.
    pub slo_attainment: f64,
    /// Renewable energy used for serving (Wh).
    pub re_used_wh: f64,
    /// Renewable energy stored into batteries (Wh).
    pub re_charged_wh: f64,
    /// Renewable energy curtailed (Wh).
    pub curtailed_wh: f64,
    /// Battery energy discharged (Wh).
    pub battery_used_wh: f64,
    /// Emergency grid-overload energy (Wh).
    pub grid_overload_wh: f64,
    /// Grid energy to recharge the batteries after the burst (Wh).
    pub grid_recharge_wh: f64,
    /// Mean equivalent battery cycles consumed per unit.
    pub battery_cycles: f64,
    /// Total sprint-setting changes across green servers and epochs
    /// (knob churn; hysteresis reduces it).
    pub setting_transitions: usize,
    /// Epochs in which any green server was thermally throttled.
    pub thermal_throttle_epochs: usize,
    /// Hottest chip temperature reached during the burst (°C; ambient if
    /// thermal simulation is disabled).
    pub peak_temp_c: f64,
    /// Epochs during which at least one injected fault was active.
    #[serde(default)]
    pub fault_epochs: usize,
    /// Epochs the controller planned in safe mode (no verified supply
    /// observation: sensor dropout, or a delayed reading not yet arrived).
    #[serde(default)]
    pub safe_mode_epochs: usize,
    /// Epochs with at least one server clamped to Normal by the
    /// commanded-vs-observed actuation watchdog.
    #[serde(default)]
    pub watchdog_clamped_epochs: usize,
    /// Whether goodput stayed at or above the Normal-mode degradation
    /// floor (within measurement tolerance) — the invariant that defines
    /// graceful degradation under faults.
    #[serde(default = "default_floor_held")]
    pub floor_held: bool,
    /// Invariant-auditor violations (energy conservation, SoC bounds,
    /// breaker cap, negative flows). Empty on a healthy run — and when
    /// the auditor is disabled. Absent in pre-auditor serialized records.
    #[serde(default)]
    pub audit_violations: Vec<String>,
    /// Epochs steered by a demoted ladder level (0 with the guardrail
    /// off or never triggered).
    #[serde(default)]
    pub failover_epochs: usize,
    /// Deepest guardrail ladder level reached during the burst.
    #[serde(default)]
    pub ladder_level: usize,
    /// Q-tables quarantined by the guardrail during the burst.
    #[serde(default)]
    pub quarantined_tables: usize,
    /// Human-readable guardrail demotion/promotion/quarantine log.
    #[serde(default)]
    pub guardrail_events: Vec<String>,
    /// Server-epochs spent physically down (crashed or flapping). Zero
    /// without fleet faults.
    #[serde(default)]
    pub dead_server_epochs: usize,
    /// Server-epochs spent alive but goodput-degraded by a straggler
    /// fault.
    #[serde(default)]
    pub straggler_epochs: usize,
    /// Smallest number of load-carrying servers seen in any epoch (the
    /// full rack size on a healthy run; 0 in old serialized records).
    #[serde(default)]
    pub min_live_servers: usize,
    /// Human-readable fleet crash/flap/rejoin log.
    #[serde(default)]
    pub fleet_events: Vec<String>,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
}

fn default_floor_held() -> bool {
    true
}

/// The burst engine.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Create an engine for a configuration, panicking on an invalid one.
    /// The panic message carries the full [`EngineError`] display so
    /// callers bypassing [`Engine::try_new`] still learn what was wrong.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid engine configuration: {e}"))
    }

    /// Create an engine for a configuration, reporting what is wrong with
    /// an invalid one instead of panicking — the entry point for callers
    /// handling untrusted input (the CLI, scenario files).
    pub fn try_new(cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        Ok(Engine { cfg })
    }

    /// The configuration under test.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Run the experiment: the strategy run plus a Normal-baseline run of
    /// the same burst, returning the normalized outcome.
    pub fn run(self) -> BurstOutcome {
        self.run_with_monitor().0
    }

    /// As [`Engine::run`], reusing a caller-provided [`EngineScratch`]
    /// arena. Purely an allocation optimization: a run begins by
    /// resetting the arena, so the outcome is byte-identical to
    /// [`Engine::run`] whatever the arena previously ran.
    pub fn run_with_scratch(self, scratch: &mut EngineScratch) -> BurstOutcome {
        self.run_full_in(scratch).0
    }

    /// As [`Engine::run`], also returning the Monitor streams of the
    /// strategy run (paper Fig. 5).
    pub fn run_with_monitor(self) -> (BurstOutcome, Monitor) {
        let (outcome, monitor, _) = self.run_full();
        (outcome, monitor)
    }

    /// As [`Engine::run_with_monitor`], additionally returning the Hybrid
    /// learner's post-burst policy (JSON) so the next burst can warm-start
    /// from it — the paper's "we also continue to update the values in
    /// the lookup table" carried across sprints.
    pub fn run_full(self) -> (BurstOutcome, Monitor, Option<String>) {
        let mut scratch = EngineScratch::new();
        self.run_full_in(&mut scratch)
    }

    fn run_full_in(self, scratch: &mut EngineScratch) -> (BurstOutcome, Monitor, Option<String>) {
        let profiles = ProfileTable::cached(self.cfg.app);
        let (main, monitor, policy) = run_once(&self.cfg, self.cfg.strategy, profiles, scratch);
        let baseline = (self.cfg.strategy != Strategy::Normal)
            .then(|| run_once(&self.cfg, Strategy::Normal, profiles, scratch).0);
        (judge(&self.cfg, main, baseline), monitor, policy)
    }

    /// As [`Engine::run_full`], emitting a resumable [`EngineSnapshot`]
    /// at every `every_epochs`-th epoch boundary (0 = never) of both the
    /// strategy run and the Normal-baseline run. A run killed between two
    /// snapshots can be continued from the last one with
    /// [`resume_snapshot`] and finishes with a byte-identical outcome.
    ///
    /// Snapshots capture the full controller state, which the DES
    /// measurement plane cannot serialize — requires
    /// [`MeasurementMode::Analytic`].
    pub fn run_full_with_snapshots(
        self,
        every_epochs: u64,
        sink: &mut dyn FnMut(&EngineSnapshot),
    ) -> Result<(BurstOutcome, Monitor, Option<String>), EngineError> {
        if self.cfg.measurement != MeasurementMode::Analytic {
            return Err(EngineError::SnapshotRequiresAnalytic);
        }
        let cfg = self.cfg;
        let profiles = ProfileTable::cached(cfg.app);
        let fp = burst_fingerprint(&cfg);
        let mut scratch = EngineScratch::new();
        let (main, monitor, policy) = {
            let mut emit = |state: LoopState| {
                sink(&EngineSnapshot {
                    fingerprint: fp.clone(),
                    scope: SnapshotScope::Burst(cfg.clone()),
                    phase: RunPhase::Strategy,
                    main_carry: None,
                    state,
                });
            };
            run_once_resumable(
                &cfg,
                cfg.strategy,
                profiles,
                None,
                every_epochs,
                &mut emit,
                &mut scratch,
                &mut NoHooks,
            )
        };
        Ok(finish_burst(
            &cfg,
            profiles,
            &fp,
            main,
            monitor,
            policy,
            None,
            every_epochs,
            sink,
            &mut scratch,
        ))
    }
}

/// Apply the Normal-baseline normalization and the graceful-degradation
/// floor judgment to a finished strategy run.
pub(crate) fn judge(
    cfg: &EngineConfig,
    mut outcome: BurstOutcome,
    baseline: Option<BurstOutcome>,
) -> BurstOutcome {
    let normal_mean = match baseline {
        None => outcome.mean_goodput_rps,
        Some(b) => {
            // The baseline run audits too; its violations are just as much
            // a physics regression as the strategy run's.
            outcome
                .audit_violations
                .extend(b.audit_violations.iter().map(|v| format!("baseline: {v}")));
            b.mean_goodput_rps
        }
    };
    outcome.normal_baseline_rps = normal_mean;
    outcome.speedup_vs_normal = if normal_mean > 0.0 {
        outcome.mean_goodput_rps / normal_mean
    } else {
        1.0
    };
    // Graceful-degradation floor: even under faults, the sprint must
    // not end up below a Normal run of the same burst. The tolerance
    // absorbs analytic blend rounding (and, for DES, the different rng
    // streams the strategy and baseline runs consume).
    let floor_tolerance = match cfg.measurement {
        MeasurementMode::Analytic => 0.99,
        MeasurementMode::Des => 0.95,
    };
    outcome.floor_held = outcome.speedup_vs_normal >= floor_tolerance;
    outcome
}

/// Run (or resume) the Normal-baseline phase of a burst experiment with
/// snapshotting, then assemble the normalized result. The finished
/// strategy run rides inside every baseline-phase snapshot so a resume
/// from one still has everything.
#[allow(clippy::too_many_arguments)]
fn finish_burst(
    cfg: &EngineConfig,
    profiles: &ProfileTable,
    fp: &str,
    main: BurstOutcome,
    monitor: Monitor,
    policy: Option<String>,
    baseline_resume: Option<LoopState>,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
    scratch: &mut EngineScratch,
) -> (BurstOutcome, Monitor, Option<String>) {
    let baseline = if cfg.strategy == Strategy::Normal {
        None
    } else {
        let carry = MainCarry {
            outcome: main.clone(),
            monitor: Some(monitor.clone()),
            policy: policy.clone(),
        };
        let mut emit = |state: LoopState| {
            sink(&EngineSnapshot {
                fingerprint: fp.to_string(),
                scope: SnapshotScope::Burst(cfg.clone()),
                phase: RunPhase::Baseline,
                main_carry: Some(carry.clone()),
                state,
            });
        };
        Some(
            run_once_resumable(
                cfg,
                Strategy::Normal,
                profiles,
                baseline_resume,
                every_epochs,
                &mut emit,
                scratch,
                &mut NoHooks,
            )
            .0,
        )
    };
    (judge(cfg, main, baseline), monitor, policy)
}

/// The checkpoint fingerprint of a burst configuration.
fn burst_fingerprint(cfg: &EngineConfig) -> String {
    let json = serde_json::to_string(cfg).expect("config serializes");
    crate::checkpoint::config_fingerprint(&json)
}

/// The completed result of resuming a snapshot, whichever experiment
/// kind it came from.
// One value exists per resumed process; boxing the bigger variant would
// complicate every caller to save bytes that never multiply.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ResumedRun {
    /// A resumed single-burst experiment.
    Burst {
        /// The normalized outcome, identical to the uninterrupted run's.
        outcome: BurstOutcome,
        /// The strategy run's Monitor streams.
        monitor: Monitor,
        /// The strategy run's exported policy, if any.
        policy: Option<String>,
    },
    /// A resumed multi-day campaign.
    Campaign(crate::campaign::CampaignOutcome),
}

/// Resume a checkpointed run from its last snapshot, finishing with
/// output byte-identical to the uninterrupted run. Continues emitting
/// snapshots at the same cadence through `sink`.
///
/// Refuses a snapshot whose fingerprint no longer matches the current
/// code + embedded configuration.
pub fn resume_snapshot(
    snap: EngineSnapshot,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
) -> Result<ResumedRun, EngineError> {
    let expected = snap.expected_fingerprint();
    if snap.fingerprint != expected {
        return Err(EngineError::SnapshotMismatch(format!(
            "checkpoint fingerprint {} does not match this build/config ({expected}); \
             the code or configuration changed since the checkpoint was written",
            snap.fingerprint
        )));
    }
    match snap.scope.clone() {
        SnapshotScope::Burst(cfg) => resume_burst(cfg, snap, every_epochs, sink),
        SnapshotScope::Campaign(ccfg) => {
            crate::campaign::resume_campaign_snapshot(&ccfg, snap, every_epochs, sink)
                .map(ResumedRun::Campaign)
        }
    }
}

fn resume_burst(
    cfg: EngineConfig,
    snap: EngineSnapshot,
    every_epochs: u64,
    sink: &mut dyn FnMut(&EngineSnapshot),
) -> Result<ResumedRun, EngineError> {
    cfg.validate()?;
    if cfg.measurement != MeasurementMode::Analytic {
        return Err(EngineError::SnapshotRequiresAnalytic);
    }
    let profiles = ProfileTable::cached(cfg.app);
    let fp = snap.fingerprint.clone();
    let mut scratch = EngineScratch::new();
    let (outcome, monitor, policy) = match snap.phase {
        RunPhase::Strategy => {
            let (main, monitor, policy) = {
                let mut emit = |state: LoopState| {
                    sink(&EngineSnapshot {
                        fingerprint: fp.clone(),
                        scope: SnapshotScope::Burst(cfg.clone()),
                        phase: RunPhase::Strategy,
                        main_carry: None,
                        state,
                    });
                };
                run_once_resumable(
                    &cfg,
                    cfg.strategy,
                    profiles,
                    Some(snap.state),
                    every_epochs,
                    &mut emit,
                    &mut scratch,
                    &mut NoHooks,
                )
            };
            finish_burst(
                &cfg,
                profiles,
                &fp,
                main,
                monitor,
                policy,
                None,
                every_epochs,
                sink,
                &mut scratch,
            )
        }
        RunPhase::Baseline => {
            let carry = snap.main_carry.ok_or_else(|| {
                EngineError::SnapshotMismatch(
                    "baseline-phase snapshot is missing the finished strategy run".to_string(),
                )
            })?;
            let monitor = carry.monitor.clone().ok_or_else(|| {
                EngineError::SnapshotMismatch(
                    "burst snapshot is missing the strategy run's monitor".to_string(),
                )
            })?;
            finish_burst(
                &cfg,
                profiles,
                &fp,
                carry.outcome,
                monitor,
                carry.policy,
                Some(snap.state),
                every_epochs,
                sink,
                &mut scratch,
            )
        }
    };
    Ok(ResumedRun::Burst {
        outcome,
        monitor,
        policy,
    })
}

/// A simulation window: when it runs, which sky it sees, and the offered
/// load at every instant. Single bursts and long campaigns share the same
/// epoch loop through this.
pub(crate) struct RunWindow<'a> {
    /// Offered per-server load (req/s) at a given time.
    pub offered_rps: &'a dyn Fn(SimTime) -> f64,
    /// Normalized irradiance trace.
    pub trace: &'a SolarTrace,
    /// Window start.
    pub start: SimTime,
    /// Window length (must be a multiple of the epoch).
    pub duration: SimDuration,
}

/// Execute one burst under one strategy.
pub(crate) fn run_once(
    cfg: &EngineConfig,
    strategy: Strategy,
    profiles: &ProfileTable,
    scratch: &mut EngineScratch,
) -> (BurstOutcome, Monitor, Option<String>) {
    run_once_resumable(
        cfg,
        strategy,
        profiles,
        None,
        0,
        &mut |_| {},
        scratch,
        &mut NoHooks,
    )
}

/// As [`run_once`], optionally restarting from a captured [`LoopState`]
/// and emitting fresh captures every `snapshot_every` epochs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_once_resumable(
    cfg: &EngineConfig,
    strategy: Strategy,
    profiles: &ProfileTable,
    resume: Option<LoopState>,
    snapshot_every: u64,
    snap: &mut dyn FnMut(LoopState),
    scratch: &mut EngineScratch,
    hooks: &mut dyn EpochHooks,
) -> (BurstOutcome, Monitor, Option<String>) {
    let app = cfg.app.profile();
    let trace: SolarTrace = cfg
        .trace_override
        .clone()
        .unwrap_or_else(|| cfg.availability.trace(cfg.seed));
    let start = SimTime::from_secs_f64(cfg.burst_start_hour * 3_600.0);
    let end = start + cfg.burst_duration;
    let burst = BurstPattern::intensity(&app, cfg.burst_intensity_cores, start, end);
    let window = RunWindow {
        offered_rps: &|t| burst.offered_rps(t),
        trace: &trace,
        start,
        duration: cfg.burst_duration,
    };
    run_window_resumable(
        cfg,
        strategy,
        profiles,
        &window,
        resume,
        snapshot_every,
        snap,
        scratch,
        hooks,
    )
}

/// The scheduling-epoch loop over an arbitrary window.
pub(crate) fn run_window(
    cfg: &EngineConfig,
    strategy: Strategy,
    profiles: &ProfileTable,
    window: &RunWindow<'_>,
    scratch: &mut EngineScratch,
) -> (BurstOutcome, Monitor) {
    let (outcome, monitor, _) = run_window_resumable(
        cfg,
        strategy,
        profiles,
        window,
        None,
        0,
        &mut |_| {},
        scratch,
        &mut NoHooks,
    );
    (outcome, monitor)
}

/// What an external driver injects into one epoch, decided before the
/// epoch executes. The default directive is a strict no-op: every field
/// leaves the loop's own arithmetic untouched, so a driver that returns
/// `TickDirective::default()` forever reproduces a batch run bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TickDirective {
    /// Replace the trace-derived renewable AC supply with a live reading
    /// (watts, clamped non-negative; plan-driven supply faults still
    /// scale it — a live feed does not bypass the physical fault layer).
    pub supply_w: Option<f64>,
    /// Declare the telemetry feed stale for this epoch: the controller
    /// sees no fresh supply observation and the PSS routes into safe
    /// mode, exactly as under a sensor-dropout fault.
    pub telemetry_stale: bool,
    /// Force one rung of failover-ladder demotion before this epoch
    /// plans (serve's `--overrun degrade` policy). Ignored when the
    /// guardrail is off or already at the Normal floor.
    pub demote: Option<String>,
    /// Scale the window's nominal offered load by this factor for the
    /// epoch (clamped non-negative). The datacenter broker's routing
    /// seam: `Some(0.0)` drains a rack, `Some(2.0)` doubles its share.
    /// `None` leaves the nominal stream untouched.
    pub load_factor: Option<f64>,
}

/// Driver hooks for the epoch loop: the seam `greensprint serve` uses to
/// run the *identical* control path against a tick clock. The batch
/// entry points all pass [`NoHooks`], whose defaults make every hook
/// invisible — the golden-output suite pins that equivalence.
pub(crate) trait EpochHooks {
    /// Called at the top of epoch `k` (sim time `t`), before anything of
    /// the epoch has executed. The returned directive shapes this epoch.
    fn before_epoch(&mut self, _k: u64, _t: SimTime) -> TickDirective {
        TickDirective::default()
    }
    /// Called after epoch `k` fully settled, with its record and the
    /// fleet's applied per-server settings. Return `false` to stop at
    /// this boundary (graceful drain): the loop captures a final
    /// [`LoopState`], hands it to [`EpochHooks::on_snapshot`], and
    /// returns the partial outcome.
    fn after_epoch(&mut self, _k: u64, _rec: &EpochRecord, _settings: &[ServerSetting]) -> bool {
        true
    }
    /// Called with every captured [`LoopState`] — the periodic boundary
    /// captures and the final drain capture — *before* the plain `snap`
    /// sink sees it. Lets one `&mut` driver observe both the epoch
    /// stream and the snapshots without a second simultaneous borrow.
    fn on_snapshot(&mut self, _state: &LoopState) {}
}

/// The batch driver: every hook is a no-op and every directive a
/// default, so the loop behaves exactly as it did before hooks existed.
pub(crate) struct NoHooks;

impl EpochHooks for NoHooks {}

/// The resumable scheduling-epoch loop: restores every mutable local
/// from a [`LoopState`] when resuming, and captures one at each
/// `snapshot_every`-th epoch boundary. Both halves touch *all* of the
/// loop's mutable state — a field missed here would silently break the
/// byte-identity guarantee, which the resume tests pin down.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_window_resumable(
    cfg: &EngineConfig,
    strategy: Strategy,
    profiles: &ProfileTable,
    window: &RunWindow<'_>,
    resume: Option<LoopState>,
    snapshot_every: u64,
    snap: &mut dyn FnMut(LoopState),
    scratch: &mut EngineScratch,
    hooks: &mut dyn EpochHooks,
) -> (BurstOutcome, Monitor, Option<String>) {
    let app = cfg.app.profile();
    let n = cfg.green.green_servers;
    scratch.begin_run(n);
    let EngineScratch {
        fleet,
        analytic_cache,
    } = scratch;
    let pv: PvArray = cfg.green.pv_array();
    let trace = window.trace;
    let start = window.start;
    let end = start + window.duration;

    let mut rng = SimRng::seed_from_u64(cfg.seed ^ strategy_salt(strategy));
    // Forking the per-server DES streams is part of the pinned master rng
    // sequence whether or not the run is analytic; only DES mode pays to
    // materialize the simulators themselves.
    let mut sims: Vec<ServerSim> = match cfg.measurement {
        MeasurementMode::Des => (0..n).map(|_| ServerSim::new(rng.fork())).collect(),
        MeasurementMode::Analytic => {
            for _ in 0..n {
                let _ = rng.fork();
            }
            Vec::new()
        }
    };
    let mut batteries: Vec<Option<Battery>> = (0..n)
        .map(|_| cfg.green.battery_spec().map(Battery::new_full))
        .collect();
    // Paper case 3: "Recharging is activated when battery depth of
    // discharge reaches the set goal (40% DoD)" — a latch per battery;
    // once triggered, the grid tops the unit back up whenever its server
    // is not sprinting, until full.
    let mut grid_recharging: Vec<bool> = vec![false; n];
    let mut in_burst_grid_recharge_wh = 0.0;
    let mut predictor = Predictor::new();
    let mut cs_predictor = crate::predictor::ClearSkyIndexedPredictor::new(pv.peak_ac_watts());
    let mut pmk = Pmk::new(strategy, profiles);
    pmk.hysteresis = cfg.switch_hysteresis;
    if let (Some(json), Some(learner)) = (&cfg.warm_policy_json, pmk.learner_mut()) {
        match crate::qlearning::QLearner::from_json(json) {
            Ok(warm) => *learner = warm,
            Err(e) => panic!("invalid warm_policy_json: {e}"),
        }
    }
    let mut setting_transitions = 0usize;
    // Policy guardrail: shadow-score a certified fallback each epoch and
    // demote down the failover ladder when the active policy misbehaves.
    // Normal has no ladder, so the baseline run is never supervised.
    let mut guard: Option<Guardrail> = if cfg.guardrail.enabled {
        Guardrail::new(cfg.guardrail.clone(), strategy)
    } else {
        None
    };
    let mut shadow_pmk: Option<Pmk> = guard.as_ref().map(|_| {
        let mut p = Pmk::new(cfg.guardrail.fallback, profiles);
        p.hysteresis = cfg.switch_hysteresis;
        p
    });
    // The demoted rung's controller, steering instead of `pmk` while the
    // ladder level is above 0. Rebuilt from the guardrail level rather
    // than persisted: every rung below the top is learner-free, so the
    // strategy name is its entire state.
    let mut fallback_pmk: Option<Pmk> = None;
    // Fault-injection state: the plan is replayed deterministically; the
    // watchdog and safe-mode estimator run unconditionally (they are the
    // production control path) but are inert while telemetry is clean and
    // every command lands.
    let fault_plan = cfg.fault_plan.as_ref();
    let mut fade_done: Vec<bool> =
        fault_plan.map_or_else(Vec::new, |p| vec![false; p.events.len()]);
    let mut watchdog = ActuationWatchdog::with_threshold(n, cfg.watchdog_threshold);
    let mut safe_supply = gs_power::pss::SafeSupplyEstimator::new();
    // One-epoch telemetry delay line: the raw (meter-shaped) reading taken
    // last epoch, which a TelemetryDelay fault serves instead of today's.
    let mut last_raw_obs_w: Option<f64> = None;
    let mut fault_epochs = 0usize;
    let mut safe_mode_epochs = 0usize;
    let mut watchdog_clamped_epochs = 0usize;
    // Fleet fault state: per-server crash countdowns, rejoin-hysteresis
    // health streaks, and the burst-level fleet accounting. A full fleet
    // starts with every streak at the rejoin threshold — every server is
    // trusted with load from epoch 0.
    fleet.health_streak.fill(REJOIN_EPOCHS);
    let mut dead_server_epochs = 0usize;
    let mut straggler_epochs = 0usize;
    let mut min_live_servers = n;
    let mut fleet_events: Vec<String> = Vec::new();
    let pss = PowerSourceSelector::new();
    let mut meter = PowerMeter::new();
    let mut monitor = Monitor::new();
    let power_model = app.power_model();
    // Invariant auditor: re-derives energy conservation from the settled
    // flows each epoch. The breaker cap is every server at Normal mode
    // full-tilt plus every charger at its C-rate limit — fades only ever
    // lower the real draw below the cap computed from the fresh specs.
    let mut auditor = cfg.audit.then(InvariantAuditor::new);
    let grid_cap_w = n as f64 * power_model.power_w(ServerSetting::normal(), 1.0)
        + batteries
            .iter()
            .flatten()
            .map(|b| b.spec().max_charge_power_w())
            .sum::<f64>();
    let mut audited_grid_wh = 0.0;
    let mut audited_curtailed_wh = 0.0;

    let mut epochs = Vec::new();
    let mut goodput_sum = 0.0;
    let mut offered_sum = 0.0;
    let grid_overload_wh = 0.0;
    // Hybrid bookkeeping: the (state, action) each epoch's choice was made
    // from, for the Bellman update once the epoch is measured.
    let mut pending_q: Option<(QState, ServerSetting)> = None;
    // Cumulative renewable production over the burst so far — the
    // planners' estimate of the *future mean* supply (the reactive EWMA
    // would thrash the sustainability test on every cloud flicker).
    let mut re_sum_w = 0.0;
    // Thermal packages, pre-warmed at Normal-mode load so the burst does
    // not start from a cold heatsink.
    let mut thermals: Vec<gs_thermal::ThermalPackage> = match cfg.thermal {
        ThermalModel::Disabled => Vec::new(),
        ThermalModel::PaperPcm => (0..n)
            .map(|_| gs_thermal::ThermalPackage::paper_spec())
            .collect(),
        ThermalModel::NoPcm => (0..n)
            .map(|_| gs_thermal::ThermalPackage::without_pcm())
            .collect(),
    };
    for pkg in &mut thermals {
        pkg.advance(100.0, SimDuration::from_hours(2));
    }
    let mut thermal_throttle_epochs = 0usize;
    let mut peak_temp_c = thermals.first().map_or(0.0, |p| p.temp_c());

    // Resume: overwrite every mutable local with the checkpointed state.
    // `sims` stays fresh — snapshots are gated to analytic measurement,
    // where the per-server DES sims are never touched — and the analytic
    // cache is a pure memo that re-derives itself on demand.
    let mut start_k = 0u64;
    if let Some(st) = resume {
        start_k = st.next_epoch;
        rng = st.rng;
        batteries = st.batteries;
        grid_recharging = st.grid_recharging;
        in_burst_grid_recharge_wh = st.in_burst_grid_recharge_wh;
        predictor = st.predictor;
        cs_predictor = st.cs_predictor;
        if let Some(saved) = st.learner {
            if let Some(l) = pmk.learner_mut() {
                *l = saved;
            }
        }
        pending_q = st.pending_q;
        fleet.prev_settings.copy_from_slice(&st.prev_settings);
        setting_transitions = st.setting_transitions;
        fade_done = st.fade_done;
        watchdog = st.watchdog;
        safe_supply = st.safe_supply;
        last_raw_obs_w = st.last_raw_obs_w;
        fault_epochs = st.fault_epochs;
        safe_mode_epochs = st.safe_mode_epochs;
        watchdog_clamped_epochs = st.watchdog_clamped_epochs;
        // Pre-fleet snapshots carry empty vectors; keep the fresh
        // full-fleet initialization for those.
        if st.down_left.len() == n {
            fleet.down_left.copy_from_slice(&st.down_left);
        }
        if st.health_streak.len() == n {
            fleet.health_streak.copy_from_slice(&st.health_streak);
        }
        dead_server_epochs = st.dead_server_epochs;
        straggler_epochs = st.straggler_epochs;
        min_live_servers = st.min_live_servers.min(n);
        fleet_events = st.fleet_events;
        meter = st.meter;
        monitor = st.monitor;
        epochs = st.epochs;
        goodput_sum = st.goodput_sum;
        offered_sum = st.offered_sum;
        re_sum_w = st.re_sum_w;
        thermals = st.thermals;
        thermal_throttle_epochs = st.thermal_throttle_epochs;
        peak_temp_c = st.peak_temp_c;
        auditor = cfg
            .audit
            .then(|| InvariantAuditor::with_violations(st.audit_violations));
        audited_grid_wh = st.audited_grid_wh;
        audited_curtailed_wh = st.audited_curtailed_wh;
        if let (true, Some(saved)) = (cfg.guardrail.enabled, st.guardrail) {
            let g = Guardrail::restore(cfg.guardrail.clone(), saved);
            if g.level() > 0 {
                let mut p = Pmk::new(g.active_strategy(), profiles);
                p.hysteresis = cfg.switch_hysteresis;
                fallback_pmk = Some(p);
            }
            guard = Some(g);
        }
    }

    let n_epochs = window
        .duration
        .div_duration(cfg.epoch)
        .expect("validated in Engine::new");
    let epoch_hours = cfg.epoch.as_hours_f64();
    // Pre-size the per-epoch append targets (capacity only — none of it
    // is serialized) so the loop never reallocates them.
    let epochs_left = n_epochs.saturating_sub(start_k) as usize;
    epochs.reserve(epochs_left);
    monitor.reserve_epochs(n, epochs_left);

    // One literal for the full mutable-local capture, expanded at the
    // periodic boundary and at a drain stop — the two must never drift
    // apart, or resume byte-identity silently breaks.
    macro_rules! capture_state {
        ($next:expr) => {
            LoopState {
                next_epoch: $next,
                rng: rng.clone(),
                batteries: batteries.clone(),
                grid_recharging: grid_recharging.clone(),
                in_burst_grid_recharge_wh,
                predictor: predictor.clone(),
                cs_predictor: cs_predictor.clone(),
                learner: pmk.learner_mut().cloned(),
                pending_q,
                prev_settings: fleet.prev_settings.clone(),
                setting_transitions,
                fade_done: fade_done.clone(),
                watchdog: watchdog.clone(),
                safe_supply: safe_supply.clone(),
                last_raw_obs_w,
                fault_epochs,
                safe_mode_epochs,
                watchdog_clamped_epochs,
                meter: meter.clone(),
                monitor: monitor.clone(),
                epochs: epochs.clone(),
                goodput_sum,
                offered_sum,
                re_sum_w,
                thermals: thermals.clone(),
                thermal_throttle_epochs,
                peak_temp_c,
                audit_violations: auditor
                    .as_ref()
                    .map_or_else(Vec::new, |a| a.violations().to_vec()),
                audited_grid_wh,
                audited_curtailed_wh,
                guardrail: guard.as_ref().map(|g| g.state().clone()),
                down_left: fleet.down_left.clone(),
                health_streak: fleet.health_streak.clone(),
                dead_server_epochs,
                straggler_epochs,
                min_live_servers,
                fleet_events: fleet_events.clone(),
            }
        };
    }

    for k in start_k..n_epochs {
        // Capture at the epoch boundary: nothing of epoch k has happened
        // yet, so a resume from this state replays epoch k first. The
        // resume boundary itself is not re-captured (`k > start_k`).
        if snapshot_every > 0 && k > start_k && k % snapshot_every == 0 {
            let state = capture_state!(k);
            hooks.on_snapshot(&state);
            snap(state);
        }
        let t = start + SimDuration::from_micros(cfg.epoch.as_micros() * k);
        // The driver's per-tick directive: live supply override, declared
        // telemetry staleness, or a forced degrade. Batch runs (NoHooks)
        // always get the default no-op directive.
        let dir = hooks.before_epoch(k, t);
        if let Some(reason) = &dir.demote {
            if let Some(g) = guard.as_mut() {
                if g.force_demote(k, reason) {
                    let mut p = Pmk::new(g.active_strategy(), profiles);
                    p.hysteresis = cfg.switch_hysteresis;
                    fallback_pmk = Some(p);
                    // The learner is not suspect (the trigger was a
                    // deadline overrun, not corruption), so it is benched
                    // rather than quarantined — but a Bellman update
                    // graded on an epoch the fallback steered would be
                    // bogus, so the pending update is dropped.
                    pending_q = None;
                }
            }
        }
        // Planning lookahead: within a single burst this is the time to
        // the burst's end; campaigns cap it at an hour (the controller
        // cannot know a day ahead when load will subside).
        let remaining = (end - t).min(SimDuration::from_mins(60));
        let faults =
            fault_plan.map_or_else(ActiveFaults::default, |p| p.active_during(t, t + cfg.epoch));
        if faults.any() {
            fault_epochs += 1;
        }
        // Supply faults are physical: the inverter/breaker shapes what the
        // bus actually delivers, before any sensor sees it. A live-feed
        // directive replaces the trace-derived input, not the fault layer.
        let re_actual_w = match dir.supply_w {
            Some(w) => w.max(0.0) * faults.supply_factor,
            None => pv.ac_output(trace.window_mean(t, t + cfg.epoch)) * faults.supply_factor,
        };
        // Battery fade is permanent; each fade event applies exactly once,
        // when it first overlaps an epoch.
        for &(idx, factor) in &faults.fades {
            if !fade_done[idx] {
                fade_done[idx] = true;
                for b in batteries.iter_mut().flatten() {
                    b.fade_capacity(factor);
                }
            }
        }
        // Q-table poisoning is software corruption: it hits whichever
        // policy is steering, once per event. While a learner-free ladder
        // level steers there is nothing to poison and the event is spent.
        for &(idx, magnitude) in &faults.poisons {
            if !fade_done[idx] {
                fade_done[idx] = true;
                let steering = fallback_pmk.as_mut().unwrap_or(&mut pmk);
                if let Some(l) = steering.learner_mut() {
                    l.poison(magnitude);
                }
            }
        }
        // Fleet faults. A crash charges its outage onto the server's
        // countdown exactly once; a flap takes the server down on
        // alternating epochs of its window; either way the server's health
        // streak resets, and it only regains load after `REJOIN_EPOCHS`
        // consecutive healthy epochs.
        for &(idx, server, crash_epochs) in &faults.crashes {
            let i = usize::from(server);
            if i < n && !fade_done[idx] {
                fade_done[idx] = true;
                fleet.down_left[i] = fleet.down_left[i].max(crash_epochs);
                fleet_events.push(format!(
                    "epoch {k}: server {i} crashed for {crash_epochs} epoch(s)"
                ));
            }
        }
        for i in 0..n {
            fleet.up[i] = fleet.down_left[i] == 0 && !faults.flap_down(i, t, cfg.epoch);
        }
        for i in 0..n {
            if fleet.up[i] {
                if fleet.health_streak[i] + 1 == REJOIN_EPOCHS {
                    fleet_events.push(format!("epoch {k}: server {i} rejoined the plan"));
                }
                fleet.health_streak[i] = (fleet.health_streak[i] + 1).min(REJOIN_EPOCHS);
            } else {
                if fleet.health_streak[i] > 0 {
                    fleet_events.push(format!("epoch {k}: server {i} went down"));
                }
                fleet.health_streak[i] = 0;
                dead_server_epochs += 1;
                // A dead server's control state is gone with it: the
                // watchdog forgets its streaks and the hysteresis
                // incumbent resets to Normal (it reboots into Normal).
                watchdog.reset(i);
                fleet.prev_settings[i] = ServerSetting::normal();
                if fleet.down_left[i] > 0 {
                    fleet.down_left[i] -= 1;
                }
            }
        }
        // `live` servers carry load and are sprint-planned; `up` servers
        // that have not yet served their rejoin probation idle at Normal.
        for i in 0..n {
            fleet.live[i] = fleet.up[i] && fleet.health_streak[i] >= REJOIN_EPOCHS;
        }
        let live_count = fleet.live.iter().filter(|&&l| l).count();
        min_live_servers = min_live_servers.min(live_count);
        // Plan against the believed live capacity; the representative
        // server for reward scoring is the first live (else first up) one.
        let plan_n = live_count.max(1);
        let rep: Option<usize> = fleet
            .live
            .iter()
            .position(|&l| l)
            .or_else(|| fleet.up.iter().position(|&u| u));
        // Telemetry faults shape what the controller *believes*: a dropout
        // yields no reading at all; a delay serves last epoch's raw
        // reading; meter bias scales whatever the sensor outputs. A
        // driver-declared stale feed is indistinguishable from a dropout.
        let fresh_obs_w = (!faults.sensor_dropout && !dir.telemetry_stale)
            .then_some(re_actual_w * faults.meter_factor);
        let obs_w = if faults.telemetry_delay {
            last_raw_obs_w
        } else {
            fresh_obs_w
        };
        let in_safe_mode = obs_w.is_none();
        let re_believed_w = match obs_w {
            Some(w) => {
                safe_supply.observe_good(w);
                w
            }
            None => {
                // Safe mode: never plan against unverified supply — assume
                // the worst recent verified observation, decayed.
                safe_supply.mark_stale();
                predictor.mark_re_stale();
                safe_mode_epochs += 1;
                safe_supply.planning_supply_w()
            }
        };
        // The broker's routing seam: a driver-supplied load factor scales
        // the nominal offered stream (None — every batch path — is exactly
        // the nominal stream, so routing-free runs stay byte-identical).
        let route_factor = dir.load_factor.map(|f| f.max(0.0));
        let offered = (window.offered_rps)(t) * route_factor.unwrap_or(1.0);
        if let Some(f) = route_factor {
            monitor.record_route(t, f);
        }

        // Predictions (fall back to the live observation on the first
        // epoch — the Monitor publishes it either way). In safe mode every
        // prediction is capped by the safe-mode supply estimate.
        let re_pred_w = match cfg.predictor {
            PredictorKind::PaperEwma => {
                if in_safe_mode {
                    predictor
                        .re_supply_conservative(re_believed_w)
                        .min(re_believed_w)
                } else {
                    predictor.re_supply_w(re_believed_w)
                }
            }
            PredictorKind::ClearSkyIndexed => {
                let p = if k == 0 {
                    re_believed_w
                } else {
                    cs_predictor.predict_w(t)
                };
                if in_safe_mode {
                    p.min(re_believed_w)
                } else {
                    p
                }
            }
        };
        let load_pred = predictor.workload_rps(offered);

        // Battery budgets: what survives this epoch vs the horizon.
        let horizon = remaining.min(cfg.planning_horizon).max(cfg.epoch);
        for (slot, b) in fleet.instant_w.iter_mut().zip(&*batteries) {
            *slot = b.as_ref().map_or(0.0, |b| {
                sustainable_power_memo(&mut fleet.budget_memo[0], b, cfg.epoch)
            });
        }
        for (slot, b) in fleet.sustained_horizon_w.iter_mut().zip(&*batteries) {
            *slot = b.as_ref().map_or(0.0, |b| {
                sustainable_power_memo(&mut fleet.budget_memo[1], b, horizon)
            });
        }
        for (slot, b) in fleet.sustained_remaining_w.iter_mut().zip(&*batteries) {
            *slot = b.as_ref().map_or(0.0, |b| {
                sustainable_power_memo(&mut fleet.budget_memo[2], b, remaining.max(cfg.epoch))
            });
        }
        // SoC misreport scales the *controller's view* of every battery
        // budget; the physical packs (and settlement) are untouched.
        if faults.soc_report_factor != 1.0 {
            for v in fleet
                .instant_w
                .iter_mut()
                .chain(fleet.sustained_horizon_w.iter_mut())
                .chain(fleet.sustained_remaining_w.iter_mut())
            {
                *v *= faults.soc_report_factor;
            }
        }

        // PMK decision per green server, approximating the paper's
        // per-server optimization (Eq. 2–3):
        //
        // * If every battery can cover its share of the full-sprint
        //   deficit for the *whole remaining burst*, the optimum is the
        //   uniform one — everyone sprints, renewable split evenly,
        //   batteries topping up (the budget below then uses the
        //   remaining-burst sustainable power).
        // * Otherwise scarce green power is allocated *waterfall*-style:
        //   earlier servers claim what they need and later ones plan with
        //   the remainder, concentrating supply on a subset of full-sprint
        //   servers instead of spreading it below the idle floor.
        //
        // Greedy is uniform by definition ("simply activate all cores")
        // and always splits the supply evenly.
        // A demoted ladder level plans as the strategy actually steering.
        let steering_strategy = guard.as_ref().map_or(strategy, |g| g.active_strategy());
        let planning = matches!(
            steering_strategy,
            Strategy::Parallel | Strategy::Pacing | Strategy::Hybrid
        );
        re_sum_w += re_believed_w;
        let re_mean_w = re_sum_w / (k + 1) as f64;
        let full_sprint_w = profiles.planned_power_w(ServerSetting::max_sprint(), load_pred);
        // Capacity re-plan: the deficit and the sustainability test are
        // taken over the *live* fleet — dead servers neither claim supply
        // nor owe battery coverage. `plan_n == n` on a healthy fleet, so
        // the arithmetic (and its float bits) is unchanged there.
        let deficit_share = (full_sprint_w - re_mean_w / plan_n as f64).max(0.0);
        let uniform_sustainable = deficit_share <= 1e-9
            || (0..n).all(|i| !fleet.live[i] || fleet.sustained_remaining_w[i] >= deficit_share);
        let waterfall = planning && !uniform_sustainable;
        // When the whole remaining burst is energetically covered, sprint
        // freely (instantaneous battery budget); otherwise hedge with the
        // planning-horizon sustainable power.
        let use_instant = planning && uniform_sustainable;
        let decide = |re_plan_w: f64,
                      pmk: &mut Pmk,
                      rng: &mut SimRng,
                      capture_state: &mut Option<QState>,
                      fleet: &mut FleetState| {
            // Learner-free strategies decide as a pure function of
            // (renewable share, battery budgets, hysteresis incumbent) —
            // everything else is epoch-constant — so one memo entry serves
            // every server presenting the same inputs. Hybrid consumes rng
            // inside `choose`, so it is never memoized.
            let memoize = pmk.is_learner_free();
            let mut re_unclaimed = re_plan_w;
            for i in 0..n {
                if !fleet.live[i] {
                    // Dead and rejoin-probation servers take no part in
                    // sprint planning — and consume no decision
                    // randomness, so liveness alone steers the stream.
                    fleet.settings[i] = ServerSetting::normal();
                    continue;
                }
                let re_share = if waterfall {
                    re_unclaimed
                } else {
                    re_plan_w / plan_n as f64
                };
                let sustained = if use_instant {
                    fleet.instant_w[i]
                } else {
                    fleet.sustained_horizon_w[i]
                };
                let key = (
                    re_share.to_bits(),
                    fleet.instant_w[i].to_bits(),
                    sustained.to_bits(),
                    fleet.prev_settings[i],
                );
                let memo_hit = if memoize {
                    fleet.decision_memo.get(key)
                } else {
                    None
                };
                let s = match memo_hit {
                    Some(s) => s,
                    None => {
                        let ctx = PmkContext {
                            predicted_load_rps: load_pred,
                            re_share_w: re_share,
                            battery_instant_w: fleet.instant_w[i],
                            battery_sustained_w: sustained,
                        };
                        if Some(i) == rep {
                            if let Some(learner) = pmk.learner_mut() {
                                *capture_state = Some(
                                    learner.state(ctx.instant_budget_w(), ctx.predicted_load_rps),
                                );
                            }
                        }
                        let s = pmk.choose(profiles, &ctx, rng);
                        let s = pmk.apply_hysteresis(profiles, &ctx, fleet.prev_settings[i], s);
                        if memoize {
                            fleet.decision_memo.insert(key, s);
                        }
                        s
                    }
                };
                if waterfall && s.is_sprinting() {
                    re_unclaimed = (re_unclaimed - profiles.planned_power_w(s, load_pred)).max(0.0);
                }
                fleet.settings[i] = s;
            }
        };
        let sprint_demand = |settings: &[ServerSetting]| -> f64 {
            (0..n)
                .filter(|&i| settings[i].is_sprinting())
                .map(|i| profiles.planned_power_w(settings[i], load_pred))
                .sum()
        };

        fleet.begin_epoch();
        let mut q_state = None;
        {
            let steering = fallback_pmk.as_mut().unwrap_or(&mut pmk);
            decide(re_pred_w, steering, &mut rng, &mut q_state, fleet);
        }

        // Rack-level PSS check against the *observed* renewable supply
        // (identical to the physical supply while telemetry is clean; the
        // safe-mode estimate when it is not — the PSS never plans against
        // unverified supply). The PSS "performs switch tuning based on the
        // discrepancy between the workload power demand and the green
        // power supply" (paper §II): when the prediction overshot, the PMK
        // re-plans against the power the sensors can vouch for before the
        // epoch commits.
        let batt_accept: f64 = batteries
            .iter()
            .map(|b| {
                b.as_ref().map_or(0.0, |b| {
                    if b.is_full() {
                        0.0
                    } else {
                        b.spec().max_charge_power_w()
                    }
                })
            })
            .sum();
        let batt_avail = |settings: &[ServerSetting], instant_w: &[f64]| -> f64 {
            (0..n)
                .filter(|&i| settings[i].is_sprinting())
                .map(|i| instant_w[i])
                .sum()
        };
        let mut plan = pss.plan(
            sprint_demand(&fleet.settings),
            re_believed_w,
            batt_avail(&fleet.settings, &fleet.instant_w),
            batt_accept,
            0.0,
        );
        if plan.unmet_w > 1.0 {
            {
                let steering = fallback_pmk.as_mut().unwrap_or(&mut pmk);
                decide(re_believed_w, steering, &mut rng, &mut q_state, fleet);
            }
            plan = pss.plan(
                sprint_demand(&fleet.settings),
                re_believed_w,
                batt_avail(&fleet.settings, &fleet.instant_w),
                batt_accept,
                0.0,
            );
            if plan.unmet_w > 1.0 {
                // Genuine power emergency: finish sprinting (paper §III-B).
                for s in &mut fleet.settings {
                    *s = ServerSetting::normal();
                }
            }
        }

        // Actuation: what the control plane *applies* can differ from what
        // the PMK commanded. Servers the watchdog has clamped are
        // commanded Normal (the only setting needing no actuation); lost
        // commands and stuck servers keep their previous setting; a
        // core-activation failure caps how many cores can come up
        // (deactivation always works and Normal's cores are already
        // active, so the effective cap never drops below Normal).
        for i in 0..n {
            fleet.commanded[i] = if watchdog.is_clamped(i) {
                ServerSetting::normal()
            } else {
                fleet.settings[i]
            };
        }
        if watchdog.clamped_count() > 0 {
            watchdog_clamped_epochs += 1;
        }
        for i in 0..n {
            if !fleet.up[i] {
                // A dead server applies nothing and the watchdog stays
                // quiet (it was reset on the down transition); it reboots
                // into Normal.
                fleet.settings[i] = ServerSetting::normal();
                continue;
            }
            let applied = if faults.command_lost(i) || faults.is_stuck(i) {
                fleet.prev_settings[i]
            } else if let Some(cap) = faults.core_cap {
                let cap = cap.clamp(gs_cluster::NORMAL_CORES, gs_cluster::MAX_CORES);
                let c = fleet.commanded[i];
                if c.cores > cap {
                    ServerSetting::new(cap, c.freq_idx)
                } else {
                    c
                }
            } else {
                fleet.commanded[i]
            };
            watchdog.observe(i, fleet.commanded[i], applied);
            fleet.settings[i] = applied;
        }

        // Thermal guard: a server at its junction limit cannot sprint,
        // whatever the power situation (paper §II assumes the PCM package
        // keeps this from ever firing during the evaluated bursts; the
        // NoPcm model shows why that assumption was needed).
        if !thermals.is_empty() {
            for (setting, th) in fleet.settings.iter_mut().zip(&*thermals) {
                if setting.is_sprinting() && th.is_throttling() {
                    *setting = ServerSetting::normal();
                }
            }
        }

        // Measure the epoch. The offered load redistributes onto the live
        // servers (a shrunken fleet serves the same rack-level demand);
        // the `live_count == n` guard keeps the healthy-fleet arithmetic
        // bit-identical to the pre-fleet code path.
        let served_rps = if live_count == n || live_count == 0 {
            offered
        } else {
            offered * n as f64 / live_count as f64
        };
        // SoA walk over several parallel arrays; the index form is the
        // clearest way to touch them all in lockstep.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !fleet.live[i] {
                // Dead servers serve nothing; probation servers idle at
                // Normal without load until their streak completes.
                fleet.perfs[i] = EpochPerf::default();
                continue;
            }
            let setting = fleet.settings[i];
            let perf = match cfg.measurement {
                MeasurementMode::Des => {
                    let admit = profiles.get(setting).slo_capacity;
                    sims[i].advance_epoch(&app, setting, served_rps, admit, cfg.epoch)
                }
                // Within one epoch the served rate is constant, so the
                // per-epoch memo (a short linear scan) answers repeats
                // without hashing into the run-scoped cache.
                MeasurementMode::Analytic => {
                    match fleet.perf_memo.iter().find(|(s, _)| *s == setting) {
                        Some((_, p)) => p.clone(),
                        None => {
                            let p = analytic_cache
                                .entry((setting, served_rps.to_bits()))
                                .or_insert_with(|| {
                                    measure_analytic(&app, profiles, setting, served_rps)
                                })
                                .clone();
                            fleet.perf_memo.push((setting, p.clone()));
                            p
                        }
                    }
                }
            };
            fleet.perfs[i] = perf;
        }
        // Stragglers degrade delivered goodput on an otherwise-alive
        // server (slow disk, thermal neighbor, NIC trouble) — applied
        // after measurement so power and latency stay those of the chosen
        // setting.
        if !faults.stragglers.is_empty() {
            for i in 0..n {
                if fleet.up[i] {
                    let factor = faults.straggler_factor(i);
                    if factor != 1.0 {
                        fleet.perfs[i].goodput_rps *= factor;
                        straggler_epochs += 1;
                    }
                }
            }
        }

        // Settle actual energy flows. `settled_server_wh` accumulates the
        // source-side deliveries into servers, independently of the
        // meters, so the auditor can balance the books against it.
        fleet.sprinting.clear();
        for i in 0..n {
            if fleet.settings[i].is_sprinting() {
                fleet.sprinting.push(i);
            }
        }
        // A dead server draws nothing — 0 W, not an idle floor; the
        // auditor checks the settled books agree.
        for i in 0..n {
            fleet.actual_power[i] = if fleet.up[i] {
                power_model.power_w(fleet.settings[i], fleet.perfs[i].utilization)
            } else {
                0.0
            };
        }
        let dead_server_wh: f64 = (0..n)
            .filter(|&i| !fleet.up[i])
            .map(|i| fleet.actual_power[i] * epoch_hours)
            .sum();
        let mut re_left = re_actual_w;
        let mut re_used_w = 0.0;
        let mut battery_w = 0.0;
        let mut settled_server_wh = 0.0;
        for &i in &fleet.sprinting {
            // Mirror the planning-time allocation: waterfall strategies
            // let earlier servers claim their full draw; uniform ones
            // split the supply evenly.
            let re_share = if waterfall {
                re_left
            } else {
                re_left.min(re_actual_w / fleet.sprinting.len() as f64)
            };
            let from_re = fleet.actual_power[i].min(re_share);
            re_left -= from_re;
            re_used_w += from_re;
            settled_server_wh += from_re * epoch_hours;
            let shortfall = fleet.actual_power[i] - from_re;
            if shortfall > 0.0 {
                let drain_memo = &mut fleet.drain_memo;
                let out = batteries[i]
                    .as_mut()
                    .map(|b| {
                        b.discharge_memoized(shortfall, cfg.epoch, &mut |spec, current| {
                            let key = (current.to_bits(), spec.capacity_ah.to_bits());
                            drain_memo
                                .get_or_insert_with(key, || spec.peukert_drain_ah_per_hour(current))
                        })
                    })
                    .unwrap_or(gs_power::battery::DischargeOutcome {
                        delivered_wh: 0.0,
                        sustained: SimDuration::ZERO,
                    });
                battery_w += out.delivered_wh / epoch_hours;
                settled_server_wh += out.delivered_wh;
                let gap_wh = shortfall * epoch_hours - out.delivered_wh;
                if gap_wh > 1e-9 {
                    // The battery (or a renewable prediction error) could
                    // not carry the sprint through the whole epoch: the
                    // server drops back to Normal mode on the grid for the
                    // remainder, and the epoch's performance is settled as
                    // the time-weighted blend of the two regimes.
                    let w = (out.sustained.as_secs_f64() / cfg.epoch.as_secs_f64()).clamp(0.0, 1.0);
                    let normal_perf = analytic_cache
                        .entry((ServerSetting::normal(), served_rps.to_bits()))
                        .or_insert_with(|| {
                            measure_analytic(&app, profiles, ServerSetting::normal(), served_rps)
                        })
                        .clone();
                    fleet.perfs[i] = blend_perf(&fleet.perfs[i], &normal_perf, w);
                    let normal_power =
                        power_model.power_w(ServerSetting::normal(), normal_perf.utilization);
                    meter.record(Source::Grid, normal_power * (1.0 - w), epoch_hours);
                    settled_server_wh += normal_power * (1.0 - w) * epoch_hours;
                }
            }
        }
        meter.record(Source::Renewable, re_used_w, epoch_hours);
        meter.record(Source::Battery, battery_w, epoch_hours);
        // Normal-mode servers ride the grid budget; dead servers draw
        // nothing and are never metered.
        for i in 0..n {
            if !fleet.settings[i].is_sprinting() && fleet.up[i] {
                meter.record(Source::Grid, fleet.actual_power[i], epoch_hours);
                settled_server_wh += fleet.actual_power[i] * epoch_hours;
            }
        }
        // Surplus renewable charges the batteries; the rest is curtailed.
        let mut charged_w = 0.0;
        if re_left > 0.0 {
            fleet.open.clear();
            for (i, b) in batteries.iter().enumerate() {
                if b.as_ref().is_some_and(|b| !b.is_full()) {
                    fleet.open.push(i);
                }
            }
            if !fleet.open.is_empty() {
                let share = re_left / fleet.open.len() as f64;
                for &i in &fleet.open {
                    let drawn = batteries[i]
                        .as_mut()
                        .expect("filtered to Some")
                        .charge(share, cfg.epoch);
                    charged_w += drawn;
                }
            }
            meter.record_curtailment(re_left - charged_w, epoch_hours);
        }

        // Grid recharge (paper case 3): once a battery reaches its DoD
        // goal it recharges from the grid — but only "if the workload
        // burst can be completed in this period", i.e. while no
        // sprint-worthy demand is pending. Recharging *during* a burst
        // would amortize grid energy into the sprint, exactly the budget
        // overdraw the green bus exists to avoid.
        let burst_pending = offered > profiles.get(ServerSetting::normal()).slo_capacity;
        let mut epoch_grid_recharge_wh = 0.0;
        for i in 0..n {
            let Some(b) = batteries[i].as_mut() else {
                continue;
            };
            // Trigger at (or within a whisker of) the DoD goal — exact
            // floor equality rarely happens because the PSS re-plan backs
            // off just before the last milliamp-hour.
            if b.dod_fraction() >= b.spec().max_dod - 0.02 {
                grid_recharging[i] = true;
            }
            if grid_recharging[i] && !fleet.settings[i].is_sprinting() && !burst_pending {
                let drawn = b.charge(b.spec().max_charge_power_w(), cfg.epoch);
                if drawn > 0.0 {
                    meter.record(Source::Grid, drawn, epoch_hours);
                    in_burst_grid_recharge_wh += drawn * epoch_hours;
                    epoch_grid_recharge_wh += drawn * epoch_hours;
                }
            }
            if b.is_full() {
                grid_recharging[i] = false;
            }
        }

        // Audit the epoch's settled books before anything else runs.
        if let Some(aud) = auditor.as_mut() {
            let grid_now = meter.energy_wh(Source::Grid);
            let curtailed_now = meter.curtailed_wh();
            fleet.socs.clear();
            fleet.socs.extend(
                batteries
                    .iter()
                    .flatten()
                    .map(|b| (b.soc_fraction(), b.spec().max_dod)),
            );
            let mut flows = EpochFlows {
                epoch_index: k as usize,
                supply_wh: re_actual_w * epoch_hours,
                battery_discharge_wh: battery_w * epoch_hours,
                grid_wh: grid_now - audited_grid_wh,
                server_wh: settled_server_wh,
                charge_wh: charged_w * epoch_hours + epoch_grid_recharge_wh,
                curtailed_wh: curtailed_now - audited_curtailed_wh,
                socs: std::mem::take(&mut fleet.socs),
                grid_cap_w,
                epoch_hours,
                // While a demoted ladder level steers, the rack must never
                // serve below the Normal floor — failover is a degradation
                // bound, not a license to collapse. The floor is owed by
                // the *live* fleet: a dead server serves nothing and owes
                // nothing. The tolerance absorbs blend rounding (and DES
                // stochasticity vs the analytic floor estimate).
                failover_floor: match guard.as_ref() {
                    Some(g) if g.level() > 0 => {
                        let normal_perf = analytic_cache
                            .entry((ServerSetting::normal(), served_rps.to_bits()))
                            .or_insert_with(|| {
                                measure_analytic(
                                    &app,
                                    profiles,
                                    ServerSetting::normal(),
                                    served_rps,
                                )
                            })
                            .clone();
                        let tol = match cfg.measurement {
                            MeasurementMode::Analytic => 0.99,
                            MeasurementMode::Des => 0.85,
                        };
                        // A straggler degrades Normal-mode serving just as
                        // much as demoted serving; weight its share of the
                        // floor accordingly (1.0 per healthy server).
                        let live_weight: f64 = (0..n)
                            .filter(|&i| fleet.live[i])
                            .map(|i| faults.straggler_factor(i))
                            .sum();
                        Some((
                            fleet.perfs.iter().map(|p| p.goodput_rps).sum::<f64>(),
                            normal_perf.goodput_rps * live_weight * tol,
                        ))
                    }
                    _ => None,
                },
                live_servers: live_count,
                dead_server_wh,
                // The capacity ceiling is exact only on the analytic
                // plane; DES queue drain can legitimately complete a few
                // requests above the per-epoch steady-state capacity.
                goodput_capacity: matches!(cfg.measurement, MeasurementMode::Analytic).then(|| {
                    (
                        fleet.perfs.iter().map(|p| p.goodput_rps).sum::<f64>(),
                        live_count as f64 * profiles.get(ServerSetting::max_sprint()).slo_capacity,
                    )
                }),
            };
            aud.check_epoch(&flows);
            // Reclaim the SoC list's allocation for the next epoch.
            fleet.socs = std::mem::take(&mut flows.socs);
            audited_grid_wh = grid_now;
            audited_curtailed_wh = curtailed_now;
        }

        // Advance the thermal state under the power actually drawn. A
        // sprint that crosses the junction limit mid-epoch throttles to
        // Normal for the remainder (hardware DVFS reacts in milliseconds)
        // and the epoch's performance is blended accordingly.
        let mut any_thermal_throttle = false;
        for (i, pkg) in thermals.iter_mut().enumerate() {
            if !fleet.settings[i].is_sprinting() {
                pkg.advance(fleet.actual_power[i], cfg.epoch);
                peak_temp_c = peak_temp_c.max(pkg.temp_c());
                continue;
            }
            let total_s = cfg.epoch.as_secs().max(1);
            let mut crossed_at: Option<u64> = None;
            for s in 0..total_s {
                if pkg.is_throttling() {
                    crossed_at = Some(s);
                    break;
                }
                pkg.advance(fleet.actual_power[i], SimDuration::from_secs(1));
            }
            if let Some(s) = crossed_at {
                any_thermal_throttle = true;
                let w = s as f64 / total_s as f64;
                let normal_perf = analytic_cache
                    .entry((ServerSetting::normal(), offered.to_bits()))
                    .or_insert_with(|| {
                        measure_analytic(&app, profiles, ServerSetting::normal(), offered)
                    })
                    .clone();
                fleet.perfs[i] = blend_perf(&fleet.perfs[i], &normal_perf, w);
                let normal_power =
                    power_model.power_w(ServerSetting::normal(), normal_perf.utilization);
                pkg.advance(normal_power, SimDuration::from_secs(total_s - s));
            }
            peak_temp_c = peak_temp_c.max(pkg.temp_c());
        }
        if any_thermal_throttle {
            thermal_throttle_epochs += 1;
        }

        // Observations → Monitor → Predictor. The Monitor (and everything
        // downstream of it) sees what the *sensors* report — held-over
        // last-good values during dropout, biased readings under meter
        // faults — with quality flags saying which readings to trust. The
        // EpochRecord below keeps the physical values for energy audits.
        let goodput: f64 = fleet.perfs.iter().map(|p| p.goodput_rps).sum();
        let soc = mean_soc(&batteries);
        let soc_reported = (soc * faults.soc_report_factor).min(1.0);
        monitor.record_q(
            t,
            Observation {
                re_supply_w: obs_w.unwrap_or(0.0),
                demand_w: fleet.actual_power.iter().sum(),
                battery_w,
                battery_soc: soc_reported,
                goodput_rps: goodput,
                offered_rps: offered,
            },
            ObservationQuality {
                re_fresh: obs_w.is_some(),
                soc_trusted: faults.soc_report_factor == 1.0,
            },
        );
        // The EWMA holds its last-good state through dropouts: only
        // verified readings are fed.
        if let Some(w) = obs_w {
            predictor.observe_re_supply(w);
            cs_predictor.observe(t, w);
        }
        predictor.observe_workload(offered);
        // The telemetry delay line advances every epoch; a reading lost to
        // a dropout stays lost (a delayed read of nothing is nothing).
        last_raw_obs_w = fresh_obs_w;

        monitor.record_fleet(t, &fleet.up);

        // The representative server for reward scoring — the first live
        // (else first up) server: the Hybrid Bellman update and the
        // guardrail's shadow comparison both grade the epoch with
        // Algorithm 1's reward on it. With the whole fleet down there is
        // nothing to score and no detector has signal.
        let steering_level = guard.as_ref().map_or(0, |g| g.level());
        if let Some(r0) = rep {
            let supply0_w = re_believed_w / plan_n as f64 + fleet.instant_w[r0];
            let active_inputs = RewardInputs {
                power_supply_w: supply0_w,
                power_current_w: fleet.actual_power[r0],
                qos_target_s: app.slo_deadline_s,
                qos_current_s: fleet.perfs[r0].slo_percentile_latency_s,
                offered_slo_fraction: if fleet.perfs[r0].offered_rps > 0.0 {
                    fleet.perfs[r0].goodput_rps / fleet.perfs[r0].offered_rps
                } else {
                    1.0
                },
                slo_percentile: app.slo_percentile,
            };

            // Hybrid: reward and Bellman update on the representative server.
            // While a demoted ladder level steers, `pending_q` stays `None`
            // (the steering controller is learner-free), so no update fires.
            if let Some(learner) = pmk.learner_mut() {
                let r = reward(&active_inputs);
                let next_state = learner.state(supply0_w, offered);
                if let Some((s_prev, a_prev)) = pending_q {
                    learner.update(s_prev, a_prev, r, next_state);
                }
                pending_q = q_state.map(|s| (s, fleet.settings[r0]));
            }

            // Guardrail: score the shadow fallback on the same planning
            // context, feed the detectors, and act on the ladder verdict.
            // Demotions and promotions take effect from the next epoch.
            if let Some(g) = guard.as_mut() {
                // Shadow decision for the representative server. The fallback
                // strategies are rng-free by construction (GuardrailConfig
                // validation rejects Hybrid), so the throwaway rng preserves
                // the run's main stream byte-for-byte.
                let shadow = shadow_pmk.as_mut().expect("guardrail carries a shadow");
                let shadow_ctx = PmkContext {
                    predicted_load_rps: load_pred,
                    re_share_w: re_believed_w / plan_n as f64,
                    battery_instant_w: fleet.instant_w[r0],
                    battery_sustained_w: if use_instant {
                        fleet.instant_w[r0]
                    } else {
                        fleet.sustained_horizon_w[r0]
                    },
                };
                let mut throwaway = SimRng::seed_from_u64(0);
                let chosen = shadow.choose(profiles, &shadow_ctx, &mut throwaway);
                let shadow_setting =
                    shadow.apply_hysteresis(profiles, &shadow_ctx, g.shadow_prev(), chosen);
                g.set_shadow_prev(shadow_setting);
                let shadow_perf = analytic_cache
                    .entry((shadow_setting, served_rps.to_bits()))
                    .or_insert_with(|| measure_analytic(&app, profiles, shadow_setting, served_rps))
                    .clone();
                let shadow_inputs = RewardInputs {
                    power_supply_w: supply0_w,
                    power_current_w: power_model.power_w(shadow_setting, shadow_perf.utilization),
                    qos_target_s: app.slo_deadline_s,
                    qos_current_s: shadow_perf.slo_percentile_latency_s,
                    offered_slo_fraction: if shadow_perf.offered_rps > 0.0 {
                        shadow_perf.goodput_rps / shadow_perf.offered_rps
                    } else {
                        1.0
                    },
                    slo_percentile: app.slo_percentile,
                };
                let slo_ok = |p: &EpochPerf| {
                    p.slo_percentile_latency_s <= app.slo_deadline_s
                        && (p.offered_rps <= 0.0 || p.goodput_rps >= 0.9 * p.offered_rps)
                };
                // Corruption scan on whichever policy is steering; a
                // learner-free rung has no table to corrupt.
                let cap = g.config().value_explosion_cap;
                let table_corrupt = {
                    let steering = fallback_pmk.as_mut().unwrap_or(&mut pmk);
                    steering.learner_mut().is_some_and(|l| {
                        let stats = l.table_stats();
                        stats.non_finite > 0
                            || stats.max_abs > cap
                            || pending_q.is_some_and(|(s, _)| !s.in_range())
                    })
                };
                monitor.record_ladder(t, steering_level);
                match g.observe(&EpochSignals {
                    epoch_index: k,
                    active_reward: reward(&active_inputs),
                    shadow_reward: reward(&shadow_inputs),
                    active_slo_ok: slo_ok(&fleet.perfs[r0]),
                    shadow_slo_ok: slo_ok(&shadow_perf),
                    battery_discharge_w: battery_w,
                    planned_battery_w: if use_instant {
                        fleet.instant_w.iter().sum()
                    } else {
                        fleet.sustained_horizon_w.iter().sum()
                    },
                    table_corrupt,
                    live_fraction: live_count as f64 / n as f64,
                }) {
                    GuardrailAction::Demote { reason } => {
                        // Quarantine the learner the demoted rung steered
                        // with; rungs below the top are learner-free.
                        if fallback_pmk.is_none() {
                            if let Some(l) = pmk.learner_mut() {
                                let rec = QuarantineRecord::new(k, &reason, l.to_json());
                                let detail = match g.config().quarantine_dir.clone() {
                                    Some(dir) => match rec.write_to(&dir) {
                                        Ok(path) => format!(" -> {path}"),
                                        Err(e) => format!(" (sidecar write failed: {e})"),
                                    },
                                    None => String::new(),
                                };
                                g.note_quarantine(k, &rec.checksum, &detail);
                                // The quarantined table never steers again: a
                                // future re-promotion restarts from the
                                // deterministic profile bootstrap.
                                pmk = Pmk::new(strategy, profiles);
                                pmk.hysteresis = cfg.switch_hysteresis;
                                pending_q = None;
                            }
                        }
                        let mut p = Pmk::new(g.active_strategy(), profiles);
                        p.hysteresis = cfg.switch_hysteresis;
                        fallback_pmk = Some(p);
                    }
                    GuardrailAction::Promote => {
                        if g.level() == 0 {
                            fallback_pmk = None;
                        } else {
                            let mut p = Pmk::new(g.active_strategy(), profiles);
                            p.hysteresis = cfg.switch_hysteresis;
                            fallback_pmk = Some(p);
                        }
                        pending_q = None;
                    }
                    GuardrailAction::Hold => {}
                }
            }
        } else {
            // Whole fleet down: drop any pending Bellman update (there is
            // no epoch to grade it against) and keep the ladder stream
            // continuous for the Monitor.
            pending_q = None;
            if let Some(g) = guard.as_ref() {
                monitor.record_ladder(t, g.level());
            }
        }

        for i in 0..n {
            if fleet.settings[i] != fleet.prev_settings[i] {
                setting_transitions += 1;
            }
        }
        let (prev, cur) = (&mut fleet.prev_settings, &fleet.settings);
        prev.copy_from_slice(cur);

        goodput_sum += goodput / n as f64;
        offered_sum += offered;
        epochs.push(EpochRecord {
            t,
            setting: rep.map_or_else(ServerSetting::normal, |r| fleet.settings[r]),
            case: plan.case,
            re_supply_w: re_actual_w,
            re_used_w,
            battery_w,
            demand_w: fleet.actual_power.iter().sum(),
            battery_soc: soc,
            offered_rps: offered,
            goodput_rps: goodput,
            sprinting_servers: fleet.settings.iter().filter(|s| s.is_sprinting()).count() as u8,
            safe_mode: in_safe_mode,
            ladder_level: steering_level as u8,
            live_servers: live_count as u8,
        });
        let keep_going = hooks.after_epoch(k, epochs.last().expect("just pushed"), &fleet.settings);
        if !keep_going {
            // Graceful drain: the driver asked to stop at this boundary.
            // Capture the would-be-next state exactly as a periodic
            // snapshot of epoch k+1 would, so a restart resumes with the
            // next unexecuted epoch and zero warmup.
            let state = capture_state!(k + 1);
            hooks.on_snapshot(&state);
            break;
        }
    }

    // Post-burst grid recharge back to full (paper case 3: "we charge the
    // battery with grid power in anticipation of future sprints").
    let mut grid_recharge_wh = in_burst_grid_recharge_wh;
    for b in batteries.iter().flatten() {
        let missing_ah = (1.0 - b.soc_fraction()) * b.spec().capacity_ah;
        grid_recharge_wh += missing_ah * b.spec().voltage_v / b.spec().charge_efficiency;
    }

    // Completed-epoch count, not the window's nominal count: identical
    // (`== n_epochs`) for every run that finishes the window, and the
    // honest divisor for a drain-stopped serve run.
    let completed = epochs.len().max(1) as u64;
    let mean_goodput = goodput_sum / completed as f64;
    let outcome = BurstOutcome {
        mean_goodput_rps: mean_goodput,
        normal_baseline_rps: mean_goodput, // replaced by Engine::run
        speedup_vs_normal: 1.0,
        slo_attainment: if offered_sum > 0.0 {
            mean_goodput / (offered_sum / completed as f64)
        } else {
            1.0
        },
        re_used_wh: meter.energy_wh(Source::Renewable),
        re_charged_wh: {
            // Charged energy is tracked inside the batteries; report the
            // drawn side of it (what left the green bus).
            let used = meter.energy_wh(Source::Renewable);
            let avail = used + meter.curtailed_wh();
            // Anything produced, not used and not curtailed went to charge.
            let produced: f64 = epochs.iter().map(|e| e.re_supply_w * epoch_hours).sum();
            (produced - avail).max(0.0)
        },
        curtailed_wh: meter.curtailed_wh(),
        battery_used_wh: meter.energy_wh(Source::Battery),
        grid_overload_wh,
        grid_recharge_wh,
        battery_cycles: batteries
            .iter()
            .flatten()
            .map(Battery::equivalent_cycles)
            .sum::<f64>()
            / batteries.iter().flatten().count().max(1) as f64,
        setting_transitions,
        thermal_throttle_epochs,
        peak_temp_c,
        fault_epochs,
        safe_mode_epochs,
        watchdog_clamped_epochs,
        floor_held: default_floor_held(), // judged against Normal in run_full
        audit_violations: auditor.map_or_else(Vec::new, InvariantAuditor::into_violations),
        failover_epochs: guard.as_ref().map_or(0, |g| g.state().failover_epochs),
        ladder_level: guard.as_ref().map_or(0, |g| g.state().peak_level),
        quarantined_tables: guard.as_ref().map_or(0, |g| g.state().quarantined_tables),
        guardrail_events: guard
            .as_ref()
            .map_or_else(Vec::new, |g| g.state().events.clone()),
        dead_server_epochs,
        straggler_epochs,
        min_live_servers,
        fleet_events,
        epochs,
    };
    let policy = pmk.learner_mut().map(|l| l.to_json());
    (outcome, monitor, policy)
}

/// Deterministic analytic measurement of one epoch.
pub(crate) fn measure_analytic(
    app: &AppProfile,
    profiles: &ProfileTable,
    setting: ServerSetting,
    offered_rps: f64,
) -> EpochPerf {
    let e = profiles.get(setting);
    let admitted = offered_rps.min(e.slo_capacity);
    let station = app.station(setting);
    let grid = station.service_grid();
    let tail = station.sojourn_tail_with(&grid, admitted, app.slo_deadline_s);
    let goodput = admitted * (1.0 - tail);
    // The percentile latency only grades the Hybrid reward's magnitude, so
    // a decimated quadrature grid and a short bisection are plenty.
    let coarse: Vec<f64> = grid.iter().step_by(8).copied().collect();
    let latency = {
        let target = 1.0 - app.slo_percentile;
        let mut hi = station.mean_service_s * 4.0;
        for _ in 0..40 {
            if station.sojourn_tail_with(&coarse, admitted, hi) <= target {
                break;
            }
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..25 {
            let mid = 0.5 * (lo + hi);
            if station.sojourn_tail_with(&coarse, admitted, mid) <= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    EpochPerf {
        offered_rps,
        admitted_rps: admitted,
        completed_rps: admitted,
        goodput_rps: goodput,
        shed_rps: offered_rps - admitted,
        mean_latency_s: station.mean_service_s, // lower bound; diagnostics only
        slo_percentile_latency_s: latency,
        utilization: (admitted / e.raw_capacity).clamp(0.0, 1.0),
    }
}

/// Time-weighted blend of a sprint epoch that collapsed to Normal mode
/// `w` of the way through.
fn blend_perf(sprint: &EpochPerf, normal: &EpochPerf, w: f64) -> EpochPerf {
    let mix = |a: f64, b: f64| w * a + (1.0 - w) * b;
    EpochPerf {
        offered_rps: sprint.offered_rps,
        admitted_rps: mix(sprint.admitted_rps, normal.admitted_rps),
        completed_rps: mix(sprint.completed_rps, normal.completed_rps),
        goodput_rps: mix(sprint.goodput_rps, normal.goodput_rps),
        shed_rps: mix(sprint.shed_rps, normal.shed_rps),
        mean_latency_s: mix(sprint.mean_latency_s, normal.mean_latency_s),
        slo_percentile_latency_s: sprint
            .slo_percentile_latency_s
            .max(normal.slo_percentile_latency_s),
        utilization: mix(sprint.utilization, normal.utilization),
    }
}

/// Per-epoch memoized [`Battery::sustainable_power`]. The Peukert math
/// is pure in the battery's `(usable_rated_ah, capacity_ah)` — every
/// other input is a per-run spec constant — so equal keys provably give
/// equal results. A short linear scan: fleets cluster into a handful of
/// battery states.
fn sustainable_power_memo(
    memo: &mut crate::fleet::InlineMemo<(u64, u64), f64>,
    b: &Battery,
    d: SimDuration,
) -> f64 {
    let key = (
        b.usable_rated_ah().to_bits(),
        b.spec().capacity_ah.to_bits(),
    );
    memo.get_or_insert_with(key, || b.sustainable_power(d))
}

fn mean_soc(batteries: &[Option<Battery>]) -> f64 {
    let count = batteries.iter().flatten().count();
    if count == 0 {
        return 1.0;
    }
    batteries
        .iter()
        .flatten()
        .map(Battery::soc_fraction)
        .sum::<f64>()
        / count as f64
}

/// Decorrelate the strategy run from the Normal baseline while keeping
/// both reproducible from the master seed.
fn strategy_salt(s: Strategy) -> u64 {
    match s {
        Strategy::Normal => 0x6e6f_726d,
        Strategy::Greedy => 0x6772_6565,
        Strategy::Parallel => 0x7061_7261,
        Strategy::Pacing => 0x7061_6369,
        Strategy::Hybrid => 0x6879_6272,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> EngineConfig {
        EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_batt(),
            strategy: Strategy::Greedy,
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn max_availability_reaches_full_sprint_speedup() {
        let out = Engine::new(quick_cfg()).run();
        let expect = Application::SpecJbb.profile().max_speedup();
        assert!(
            (out.speedup_vs_normal - expect).abs() < 0.25,
            "speedup {} vs model {expect}",
            out.speedup_vs_normal
        );
        // All epochs ran green-only.
        assert!(out
            .epochs
            .iter()
            .all(|e| e.case == SupplyCase::GreenOnly && e.setting == ServerSetting::max_sprint()));
        assert_eq!(out.grid_overload_wh, 0.0);
    }

    #[test]
    fn min_availability_without_battery_is_normal() {
        let cfg = EngineConfig {
            green: GreenConfig::re_only(),
            availability: AvailabilityLevel::Minimum,
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert!(
            (out.speedup_vs_normal - 1.0).abs() < 0.05,
            "speedup {}",
            out.speedup_vs_normal
        );
        assert!(out
            .epochs
            .iter()
            .all(|e| e.setting == ServerSetting::normal()));
        assert_eq!(out.battery_used_wh, 0.0);
    }

    #[test]
    fn min_availability_short_burst_runs_on_battery() {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(10),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        // 10 Ah batteries carry a full 10-minute sprint (paper Fig. 6a).
        assert!(
            out.speedup_vs_normal > 4.0,
            "speedup {}",
            out.speedup_vs_normal
        );
        assert!(out.battery_used_wh > 0.0);
        assert!(out.epochs.iter().all(|e| e.case == SupplyCase::BatteryOnly));
        assert!(out.battery_cycles > 0.0);
        assert!(out.grid_recharge_wh > 0.0);
    }

    #[test]
    fn long_battery_only_burst_degrades() {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(60),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        // Battery carries ~11 of 60 minutes at full sprint: the average
        // sits well below the 10-minute case but above Normal.
        assert!(
            out.speedup_vs_normal > 1.2,
            "speedup {}",
            out.speedup_vs_normal
        );
        assert!(
            out.speedup_vs_normal < 3.0,
            "speedup {}",
            out.speedup_vs_normal
        );
        // Late epochs are back to Normal mode.
        assert_eq!(out.epochs.last().unwrap().setting, ServerSetting::normal());
    }

    #[test]
    fn des_and_analytic_agree_at_max_availability() {
        let a = Engine::new(quick_cfg()).run();
        let d = Engine::new(EngineConfig {
            measurement: MeasurementMode::Des,
            ..quick_cfg()
        })
        .run();
        let rel = (a.speedup_vs_normal - d.speedup_vs_normal).abs() / a.speedup_vs_normal;
        assert!(
            rel < 0.12,
            "analytic {} vs DES {}",
            a.speedup_vs_normal,
            d.speedup_vs_normal
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            Engine::new(EngineConfig {
                seed,
                measurement: MeasurementMode::Des,
                ..quick_cfg()
            })
            .run()
            .mean_goodput_rps
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn hybrid_runs_and_beats_normal_at_medium() {
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(15),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert!(
            out.speedup_vs_normal > 1.5,
            "speedup {}",
            out.speedup_vs_normal
        );
    }

    #[test]
    fn monitor_streams_cover_every_epoch() {
        let (out, monitor) = Engine::new(quick_cfg()).run_with_monitor();
        assert_eq!(monitor.re_supply().len(), out.epochs.len());
        assert_eq!(monitor.goodput().len(), out.epochs.len());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_sub_epoch_burst() {
        Engine::new(EngineConfig {
            burst_duration: SimDuration::from_secs(10),
            ..quick_cfg()
        });
    }

    #[test]
    fn paper_pcm_never_throttles_evaluated_bursts() {
        // The paper's standing assumption: with the PCM package, thermal
        // limits never bind during its 10–60 minute bursts.
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(60),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.thermal_throttle_epochs, 0);
        assert!(out.peak_temp_c < 85.0, "peak {}", out.peak_temp_c);
        assert!(
            out.peak_temp_c > 70.0,
            "thermals look unsimulated: {}",
            out.peak_temp_c
        );
    }

    #[test]
    fn without_pcm_long_sprints_thermally_throttle() {
        let base = EngineConfig {
            burst_duration: SimDuration::from_mins(60),
            ..quick_cfg()
        };
        let with_pcm = Engine::new(base.clone()).run();
        let without = Engine::new(EngineConfig {
            thermal: ThermalModel::NoPcm,
            ..base
        })
        .run();
        assert!(without.thermal_throttle_epochs > 0);
        assert!(
            without.speedup_vs_normal < with_pcm.speedup_vs_normal - 0.5,
            "no-PCM {} vs PCM {}",
            without.speedup_vs_normal,
            with_pcm.speedup_vs_normal
        );
        assert!(without.peak_temp_c >= 85.0 - 1.0);
    }

    #[test]
    fn disabled_thermals_report_nothing() {
        let out = Engine::new(EngineConfig {
            thermal: ThermalModel::Disabled,
            ..quick_cfg()
        })
        .run();
        assert_eq!(out.thermal_throttle_epochs, 0);
        assert_eq!(out.peak_temp_c, 0.0);
    }

    #[test]
    fn hybrid_policy_persists_across_bursts() {
        // Burst 1 exports its learned policy; burst 2 warm-starts from it.
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(10),
            measurement: MeasurementMode::Analytic,
            ..quick_cfg()
        };
        let (out1, _, policy) = Engine::new(cfg.clone()).run_full();
        let policy = policy.expect("hybrid exports a policy");
        assert!(policy.len() > 100);
        let warm_cfg = EngineConfig {
            warm_policy_json: Some(policy),
            seed: cfg.seed + 1, // different weather, same learned table
            ..cfg
        };
        let out2 = Engine::new(warm_cfg).run();
        // The warm-started controller still sprints competitively.
        assert!(out2.speedup_vs_normal > out1.speedup_vs_normal * 0.8);
        assert!(out2.speedup_vs_normal > 2.0);
    }

    #[test]
    fn non_hybrid_strategies_export_no_policy() {
        let (_, _, policy) = Engine::new(quick_cfg()).run_full();
        assert!(policy.is_none()); // quick_cfg is Greedy
    }

    #[test]
    #[should_panic(expected = "invalid warm_policy_json")]
    fn garbage_warm_policy_is_rejected() {
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            warm_policy_json: Some("{broken".to_string()),
            measurement: MeasurementMode::Analytic,
            ..quick_cfg()
        };
        let _ = Engine::new(cfg).run();
    }

    #[test]
    fn try_new_reports_config_errors_instead_of_panicking() {
        let bad_policy = EngineConfig {
            warm_policy_json: Some("{broken".to_string()),
            ..quick_cfg()
        };
        assert!(matches!(
            Engine::try_new(bad_policy).unwrap_err(),
            EngineError::InvalidWarmPolicy(_)
        ));

        let zero_epoch = EngineConfig {
            epoch: SimDuration::ZERO,
            ..quick_cfg()
        };
        assert_eq!(
            Engine::try_new(zero_epoch).unwrap_err(),
            EngineError::ZeroEpoch
        );

        let sub_epoch = EngineConfig {
            burst_duration: SimDuration::from_secs(1),
            ..quick_cfg()
        };
        assert_eq!(
            Engine::try_new(sub_epoch).unwrap_err(),
            EngineError::SubEpochBurst
        );

        assert!(Engine::try_new(quick_cfg()).is_ok());
    }

    #[test]
    fn zero_server_configs_are_rejected() {
        let mut cfg = quick_cfg();
        cfg.green.green_servers = 0;
        assert_eq!(Engine::try_new(cfg).unwrap_err(), EngineError::ZeroServers);
    }

    #[test]
    fn nan_hysteresis_is_rejected() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let cfg = EngineConfig {
                switch_hysteresis: bad,
                ..quick_cfg()
            };
            assert!(
                matches!(
                    Engine::try_new(cfg).unwrap_err(),
                    EngineError::InvalidThreshold(ref m) if m.contains("switch_hysteresis")
                ),
                "hysteresis {bad} slipped through"
            );
        }
    }

    #[test]
    fn nan_burst_start_hour_is_rejected() {
        for bad in [f64::NAN, -1.0, 24.0, f64::NEG_INFINITY] {
            let cfg = EngineConfig {
                burst_start_hour: bad,
                ..quick_cfg()
            };
            assert!(
                matches!(
                    Engine::try_new(cfg).unwrap_err(),
                    EngineError::InvalidThreshold(ref m) if m.contains("burst_start_hour")
                ),
                "start hour {bad} slipped through"
            );
        }
    }

    #[test]
    fn grid_never_recharges_while_burst_demand_is_pending() {
        // Paper case 3's conditional: recharge happens "if the workload
        // burst can be completed in this period" — during a battery-only
        // burst the SoC is monotone non-increasing.
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(40),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        for w in out.epochs.windows(2) {
            assert!(
                w[1].battery_soc <= w[0].battery_soc + 1e-9,
                "SoC rose mid-burst at {}",
                w[1].t
            );
        }
    }

    #[test]
    fn sprinting_servers_field_tracks_settings() {
        let out = Engine::new(quick_cfg()).run();
        for e in &out.epochs {
            if e.setting.is_sprinting() {
                assert!(e.sprinting_servers >= 1, "at {}", e.t);
            }
        }
        // Max availability: all three green servers sprint.
        assert!(out.epochs.iter().all(|e| e.sprinting_servers == 3));
    }

    #[test]
    fn cached_profiles_are_shared_and_consistent() {
        let a = ProfileTable::cached(Application::SpecJbb);
        let b = ProfileTable::cached(Application::SpecJbb);
        assert!(std::ptr::eq(a, b), "cached tables must be the same object");
        let fresh = ProfileTable::build(&Application::SpecJbb.profile());
        for s in ServerSetting::all() {
            assert_eq!(a.get(s).slo_capacity, fresh.get(s).slo_capacity);
        }
    }

    #[test]
    fn energy_conservation_roughly_holds() {
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(20),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        let epoch_hours = 60.0 / 3600.0;
        let produced: f64 = out.epochs.iter().map(|e| e.re_supply_w * epoch_hours).sum();
        let accounted = out.re_used_wh + out.re_charged_wh + out.curtailed_wh;
        assert!(
            (produced - accounted).abs() < produced * 0.02 + 1.0,
            "produced {produced} vs accounted {accounted}"
        );
    }

    #[test]
    fn auditor_is_clean_on_healthy_runs() {
        for strategy in [Strategy::Greedy, Strategy::Pacing, Strategy::Hybrid] {
            let out = Engine::new(EngineConfig {
                strategy,
                availability: AvailabilityLevel::Medium,
                ..quick_cfg()
            })
            .run();
            assert!(
                out.audit_violations.is_empty(),
                "{strategy:?}: {:?}",
                out.audit_violations
            );
        }
        // The DES settlement path balances the same books.
        let out = Engine::new(EngineConfig {
            measurement: MeasurementMode::Des,
            ..quick_cfg()
        })
        .run();
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
    }

    #[test]
    fn auditor_can_be_disabled() {
        let out = Engine::new(EngineConfig {
            audit: false,
            ..quick_cfg()
        })
        .run();
        assert!(out.audit_violations.is_empty());
    }

    // ---- checkpoint snapshots ----

    fn json<T: Serialize>(v: &T) -> String {
        serde_json::to_string(v).expect("serializes")
    }

    #[test]
    fn snapshot_resume_is_byte_identical_for_bursts() {
        // Hybrid at Medium exercises everything a snapshot must carry:
        // the RNG stream (ε-greedy exploration), the Q-table, the EWMA
        // predictors, battery state, and the meters.
        let cfg = EngineConfig {
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(10),
            ..quick_cfg()
        };
        let (want_out, want_mon, want_pol) = Engine::new(cfg.clone()).run_full();

        let mut snaps = Vec::new();
        let (out, mon, pol) = Engine::new(cfg)
            .run_full_with_snapshots(7, &mut |s| snaps.push(s.clone()))
            .unwrap();
        assert_eq!(json(&out), json(&want_out), "snapshotting changed the run");
        assert_eq!(json(&mon), json(&want_mon));
        assert_eq!(pol, want_pol);
        assert!(snaps.iter().any(|s| s.phase == RunPhase::Strategy));
        assert!(snaps.iter().any(|s| s.phase == RunPhase::Baseline));

        // Resume from every captured snapshot — strategy-phase and
        // baseline-phase alike — through a JSON round trip (the on-disk
        // checkpoint): all must converge on the same bytes.
        for snap in snaps {
            let snap = EngineSnapshot::from_json(&snap.to_json()).unwrap();
            match resume_snapshot(snap, 0, &mut |_| {}).unwrap() {
                ResumedRun::Burst {
                    outcome,
                    monitor,
                    policy,
                } => {
                    assert_eq!(json(&outcome), json(&want_out));
                    assert_eq!(json(&monitor), json(&want_mon));
                    assert_eq!(policy, want_pol);
                }
                other => panic!("expected a burst, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_resume_is_byte_identical_under_faults() {
        // The fault-plan cursor (fade_done), the watchdog, and the
        // safe-mode estimator all live in the snapshot too.
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::generate(
                77,
                SimTime::from_hours(11),
                SimDuration::from_mins(10),
                4,
            )),
            ..quick_cfg()
        };
        let (want_out, want_mon, _) = Engine::new(cfg.clone()).run_full();
        let mut snaps = Vec::new();
        Engine::new(cfg)
            .run_full_with_snapshots(5, &mut |s| snaps.push(s.clone()))
            .unwrap();
        let snap = snaps.swap_remove(snaps.len() / 2);
        let snap = EngineSnapshot::from_json(&snap.to_json()).unwrap();
        match resume_snapshot(snap, 0, &mut |_| {}).unwrap() {
            ResumedRun::Burst {
                outcome, monitor, ..
            } => {
                assert_eq!(json(&outcome), json(&want_out));
                assert_eq!(json(&monitor), json(&want_mon));
            }
            other => panic!("expected a burst, got {other:?}"),
        }
    }

    #[test]
    fn snapshots_require_analytic_measurement() {
        let err = Engine::new(EngineConfig {
            measurement: MeasurementMode::Des,
            ..quick_cfg()
        })
        .run_full_with_snapshots(5, &mut |_| {})
        .unwrap_err();
        assert_eq!(err, EngineError::SnapshotRequiresAnalytic);
    }

    #[test]
    fn resume_refuses_a_stale_fingerprint() {
        let mut snaps = Vec::new();
        Engine::new(EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(10),
            ..quick_cfg()
        })
        .run_full_with_snapshots(5, &mut |s| snaps.push(s.clone()))
        .unwrap();
        let mut snap = snaps.swap_remove(0);
        snap.fingerprint = "0000000000000000".to_string();
        match resume_snapshot(snap, 0, &mut |_| {}) {
            Err(EngineError::SnapshotMismatch(m)) => {
                assert!(m.contains("fingerprint"), "{m}");
            }
            other => panic!("expected SnapshotMismatch, got {other:?}"),
        }
    }

    // ---- fault injection ----

    use crate::faults::{FaultEvent, FaultKind, FleetMix};

    /// An event active across the whole default burst window.
    fn whole_burst(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_hours(11),
            duration: SimDuration::from_hours(1),
            kind,
        }
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let clean = Engine::new(quick_cfg()).run();
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![])),
            ..quick_cfg()
        };
        let with_plan = Engine::new(cfg).run();
        assert_eq!(
            serde_json::to_string(&clean).unwrap(),
            serde_json::to_string(&with_plan).unwrap(),
            "an empty plan must be bit-identical to no plan"
        );
        assert_eq!(with_plan.fault_epochs, 0);
        assert!(with_plan.floor_held);
    }

    #[test]
    fn sensor_dropout_enters_safe_mode_and_holds_the_floor() {
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(
                FaultKind::ReSensorDropout,
            )])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert!(out.safe_mode_epochs > 0, "dropout must trigger safe mode");
        assert_eq!(out.fault_epochs, out.epochs.len());
        assert!(out.epochs.iter().all(|e| e.safe_mode));
        // With no verified observation ever, safe mode plans against 0 W:
        // the rack rides batteries down and lands on Normal — never below.
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
    }

    #[test]
    fn breaker_trip_mid_burst_degrades_gracefully() {
        let trip = FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(2),
            duration: SimDuration::from_mins(10),
            kind: FaultKind::BreakerTrip,
        };
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![trip])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert!(out.fault_epochs >= 8);
        // The physical record shows the outage...
        assert!(out.epochs[3].re_supply_w < 1.0, "breaker open");
        // ...and the first post-trip epochs still beat or match Normal.
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
    }

    #[test]
    fn meter_over_report_never_overdraws_the_grid() {
        // The meter claims 3× the real supply: the controller plans rich,
        // settlement finds the gap, servers blend down to Normal-on-grid
        // at their baseline share — never grid overload.
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::MeterBias {
                factor: 3.0,
            })])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.grid_overload_wh, 0.0);
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
    }

    #[test]
    fn stuck_server_trips_the_watchdog() {
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::StuckServer {
                server: 0,
            })])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        // Server 0 starts at Normal and stays stuck there; commands to
        // sprint keep missing, so the watchdog clamps it within a few
        // epochs and the epochs-with-clamp counter reflects that.
        assert!(
            out.watchdog_clamped_epochs > 0,
            "watchdog never clamped: {out:?}"
        );
        assert!(out.floor_held);
        assert_eq!(out.grid_overload_wh, 0.0);
    }

    #[test]
    fn core_activation_cap_limits_the_sprint() {
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(
                FaultKind::CoreActivationFail { max_cores: 8 },
            )])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert!(out.epochs.iter().all(|e| e.setting.cores <= 8));
        // 8 cores at full frequency still beats Normal.
        assert!(out.speedup_vs_normal > 1.0);
        assert!(out.floor_held);
    }

    #[test]
    fn battery_fade_applies_once_and_shortens_the_ride() {
        let night = EngineConfig {
            availability: AvailabilityLevel::Minimum,
            burst_duration: SimDuration::from_mins(10),
            ..quick_cfg()
        };
        let clean = Engine::new(night.clone()).run();
        let faded = Engine::new(EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::BatteryFade {
                factor: 0.5,
            })])),
            ..night
        })
        .run();
        assert!(
            faded.battery_used_wh < clean.battery_used_wh,
            "faded {} vs clean {}",
            faded.battery_used_wh,
            clean.battery_used_wh
        );
        assert!(faded.floor_held);
        assert_eq!(faded.grid_overload_wh, 0.0);
    }

    #[test]
    fn soc_misreport_is_contained() {
        for factor in [0.5, 1.4] {
            let cfg = EngineConfig {
                availability: AvailabilityLevel::Minimum,
                burst_duration: SimDuration::from_mins(10),
                fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::SocMisreport {
                    factor,
                })])),
                ..quick_cfg()
            };
            let out = Engine::new(cfg).run();
            assert!(out.floor_held, "factor {factor}: {}", out.speedup_vs_normal);
            assert_eq!(out.grid_overload_wh, 0.0, "factor {factor}");
        }
    }

    #[test]
    fn telemetry_delay_is_softer_than_dropout() {
        let delay = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::TelemetryDelay)])),
            ..quick_cfg()
        };
        let out = Engine::new(delay).run();
        // The first epoch has no prior reading (degrades to a dropout);
        // afterwards the one-epoch-old readings keep the controller fed.
        assert_eq!(out.safe_mode_epochs, 1);
        assert!(out.floor_held);
        assert!(
            out.speedup_vs_normal > 1.0,
            "stale-but-present telemetry still sprints"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = FaultPlan::generate(99, SimTime::from_hours(11), SimDuration::from_mins(5), 3);
        let cfg = EngineConfig {
            fault_plan: Some(plan),
            ..quick_cfg()
        };
        let a = Engine::new(cfg.clone()).run();
        let b = Engine::new(cfg).run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(FaultKind::MeterBias {
                factor: f64::NAN,
            })])),
            ..quick_cfg()
        };
        let err = Engine::try_new(cfg).unwrap_err();
        assert!(matches!(err, EngineError::InvalidFaultPlan(_)));
        assert!(err.to_string().contains("invalid fault_plan"), "{err}");
    }

    #[test]
    fn invalid_trace_override_is_rejected() {
        let cfg = EngineConfig {
            trace_override: Some(SolarTrace::from_samples(vec![])),
            ..quick_cfg()
        };
        let err = Engine::try_new(cfg).unwrap_err();
        assert!(matches!(err, EngineError::InvalidTrace(_)));
        assert!(err.to_string().contains("invalid trace_override"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid engine configuration")]
    fn new_panics_with_configuration_context() {
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_secs(1),
            ..quick_cfg()
        };
        let _ = Engine::new(cfg);
    }

    // ---- fleet fault domains ----

    /// A crash event: `duration` only marks the injection instant; the
    /// outage length is carried by `down_epochs`.
    fn crash_at(offset_mins: u64, server: u8, down_epochs: u32) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(offset_mins),
            duration: SimDuration::from_mins(1),
            kind: FaultKind::ServerCrash {
                server,
                down_epochs,
            },
        }
    }

    #[test]
    fn server_crash_sheds_load_to_survivors_and_rejoins_with_hysteresis() {
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![crash_at(2, 1, 3)])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        // Down for exactly the commanded outage; probation epochs are
        // powered (up) but carry no load, so they are not "dead".
        assert_eq!(out.dead_server_epochs, 3, "{:?}", out.fleet_events);
        assert_eq!(out.min_live_servers, 2);
        // Epochs 2..=4 down, 5..=6 probation: five epochs at 2 live
        // servers, then full strength from epoch 7 on.
        let degraded = out.epochs.iter().filter(|e| e.live_servers == 2).count();
        assert_eq!(degraded, 3 + REJOIN_EPOCHS as usize - 1);
        assert_eq!(out.epochs.last().unwrap().live_servers, 3);
        assert!(out
            .fleet_events
            .iter()
            .any(|e| e.contains("server 1 crashed")));
        assert!(out
            .fleet_events
            .iter()
            .any(|e| e.contains("server 1 rejoined")));
        // Survivors absorb the load without dropping below Normal and
        // without drawing grid power beyond the baseline share.
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
    }

    #[test]
    fn three_of_ten_servers_crash_mid_sprint_and_the_run_stays_clean() {
        // The ISSUE acceptance scenario: a 10-server green rack loses 3
        // servers mid-sprint, holds the Normal floor, books no energy to
        // the dead servers, and replans back to full strength after the
        // hysteretic rejoin.
        let cfg = EngineConfig {
            green: GreenConfig {
                name: "RE-Batt-10".into(),
                green_servers: 10,
                panels: 10,
                battery_ah: 10.0,
            },
            burst_duration: SimDuration::from_mins(12),
            fault_plan: Some(FaultPlan::new(vec![
                crash_at(2, 2, 2),
                crash_at(2, 5, 2),
                crash_at(3, 7, 2),
            ])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.min_live_servers, 7);
        assert_eq!(out.dead_server_epochs, 6);
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
        // Hot rejoin restores full-fleet planning before the burst ends.
        assert_eq!(out.epochs.last().unwrap().live_servers, 10);
        for server in [2, 5, 7] {
            assert!(
                out.fleet_events
                    .iter()
                    .any(|e| e.contains(&format!("server {server} rejoined"))),
                "{:?}",
                out.fleet_events
            );
        }
    }

    #[test]
    fn whole_fleet_crash_is_survivable() {
        // Every server down at once: no load is served, no power flows,
        // and the books still balance. The baseline suffers identically,
        // so the floor comparison stays fair.
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![
                crash_at(2, 0, 2),
                crash_at(2, 1, 2),
                crash_at(2, 2, 2),
            ])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.min_live_servers, 0);
        assert_eq!(out.dead_server_epochs, 6);
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
        assert_eq!(out.epochs.last().unwrap().live_servers, 3);
    }

    #[test]
    fn flapping_server_is_held_out_until_it_stays_healthy() {
        // A flapping server alternates power states every epoch, so its
        // health streak never reaches REJOIN_EPOCHS inside the flap
        // window: the planner treats it as out for the whole window plus
        // the probation tail.
        let flap = FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(1),
            duration: SimDuration::from_mins(4),
            kind: FaultKind::ServerFlap { server: 0 },
        };
        let cfg = EngineConfig {
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![flap])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.min_live_servers, 2);
        assert!(out.dead_server_epochs >= 2, "{}", out.dead_server_epochs);
        assert!(out
            .fleet_events
            .iter()
            .any(|e| e.contains("server 0 rejoined")));
        assert_eq!(out.epochs.last().unwrap().live_servers, 3);
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
    }

    #[test]
    fn straggler_degrades_goodput_but_stays_in_the_plan() {
        let clean = Engine::new(quick_cfg()).run();
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![whole_burst(
                FaultKind::ServerStraggler {
                    server: 0,
                    goodput_factor: 0.5,
                },
            )])),
            ..quick_cfg()
        };
        let out = Engine::new(cfg).run();
        // A straggler still counts as live — it carries load, just slowly.
        assert_eq!(out.min_live_servers, 3);
        assert_eq!(out.dead_server_epochs, 0);
        assert_eq!(out.straggler_epochs, out.epochs.len());
        assert!(
            out.mean_goodput_rps < clean.mean_goodput_rps,
            "straggler {} vs clean {}",
            out.mean_goodput_rps,
            clean.mean_goodput_rps
        );
        // The baseline straggles identically, so the floor stays fair,
        // and the audit floor is weighted by the degraded capacity.
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
    }

    #[test]
    fn fleet_plan_out_of_range_server_is_rejected() {
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::new(vec![crash_at(1, 9, 1)])),
            ..quick_cfg()
        };
        let err = Engine::try_new(cfg).unwrap_err();
        assert!(matches!(err, EngineError::InvalidFaultPlan(_)));
        assert!(err.to_string().contains("targets server"), "{err}");
    }

    #[test]
    fn generated_fleet_plans_run_deterministically() {
        for seed in [3, 17, 99] {
            let plan = FaultPlan::generate_fleet(
                seed,
                SimTime::from_hours(11),
                SimDuration::from_mins(10),
                3,
                FleetMix::default(),
            );
            let cfg = EngineConfig {
                burst_duration: SimDuration::from_mins(10),
                fault_plan: Some(plan),
                ..quick_cfg()
            };
            let a = Engine::new(cfg.clone()).run();
            let b = Engine::new(cfg).run();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
            assert!(a.floor_held, "seed {seed}: {}", a.speedup_vs_normal);
            assert!(
                a.audit_violations.is_empty(),
                "seed {seed}: {:?}",
                a.audit_violations
            );
        }
    }

    #[test]
    fn snapshot_resume_is_byte_identical_through_a_crash() {
        // The liveness vectors (down_left, health_streak) and the fleet
        // counters all live in the snapshot: resuming from an epoch while
        // a server is down or on probation must replay the same rejoin.
        let flap = FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(5),
            duration: SimDuration::from_mins(2),
            kind: FaultKind::ServerFlap { server: 0 },
        };
        let straggle = whole_burst(FaultKind::ServerStraggler {
            server: 2,
            goodput_factor: 0.7,
        });
        let cfg = EngineConfig {
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(10),
            fault_plan: Some(FaultPlan::new(vec![crash_at(2, 1, 2), flap, straggle])),
            ..quick_cfg()
        };
        let (want_out, want_mon, _) = Engine::new(cfg.clone()).run_full();
        assert!(want_out.dead_server_epochs > 0, "scenario must bite");
        let mut snaps = Vec::new();
        Engine::new(cfg)
            .run_full_with_snapshots(2, &mut |s| snaps.push(s.clone()))
            .unwrap();
        for snap in snaps {
            let snap = EngineSnapshot::from_json(&snap.to_json()).unwrap();
            match resume_snapshot(snap, 0, &mut |_| {}).unwrap() {
                ResumedRun::Burst {
                    outcome, monitor, ..
                } => {
                    assert_eq!(json(&outcome), json(&want_out));
                    assert_eq!(json(&monitor), json(&want_mon));
                }
                other => panic!("expected a burst, got {other:?}"),
            }
        }
    }

    // ---- policy guardrails ----

    use crate::guardrail::GuardrailConfig;

    fn guarded_hybrid_cfg() -> EngineConfig {
        EngineConfig {
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(15),
            measurement: MeasurementMode::Analytic,
            guardrail: GuardrailConfig {
                enabled: true,
                ..GuardrailConfig::default()
            },
            ..quick_cfg()
        }
    }

    /// A poison event landing exactly in epoch 1 of the default burst.
    fn poison_at_epoch_1() -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_secs(60),
            duration: SimDuration::from_secs(60),
            kind: FaultKind::QTablePoison { magnitude: 1e9 },
        }])
    }

    #[test]
    fn zero_watchdog_threshold_is_rejected() {
        let cfg = EngineConfig {
            watchdog_threshold: 0,
            ..quick_cfg()
        };
        assert!(matches!(
            Engine::try_new(cfg).unwrap_err(),
            EngineError::InvalidThreshold(ref m) if m.contains("watchdog_threshold")
        ));
        let cfg = EngineConfig {
            watchdog_threshold: 5,
            ..quick_cfg()
        };
        assert!(Engine::try_new(cfg).is_ok());
    }

    #[test]
    fn degenerate_guardrail_configs_are_rejected() {
        let mut cfg = guarded_hybrid_cfg();
        cfg.guardrail.fallback = Strategy::Hybrid;
        let err = Engine::try_new(cfg).unwrap_err();
        assert!(matches!(err, EngineError::InvalidGuardrail(_)));
        assert!(err.to_string().contains("invalid guardrail"), "{err}");

        let mut cfg = guarded_hybrid_cfg();
        cfg.guardrail.probation_epochs = 0;
        assert!(matches!(
            Engine::try_new(cfg).unwrap_err(),
            EngineError::InvalidGuardrail(_)
        ));
    }

    #[test]
    fn guardrail_is_quiet_on_healthy_runs() {
        let out = Engine::new(guarded_hybrid_cfg()).run();
        assert_eq!(out.failover_epochs, 0, "events: {:?}", out.guardrail_events);
        assert_eq!(out.ladder_level, 0);
        assert_eq!(out.quarantined_tables, 0);
        assert!(out.guardrail_events.is_empty());
        assert!(out.epochs.iter().all(|e| e.ladder_level == 0));
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
        assert!(out.speedup_vs_normal > 1.5, "{}", out.speedup_vs_normal);
    }

    #[test]
    fn poisoned_qtable_fails_over_quarantines_and_recovers() {
        let cfg = EngineConfig {
            fault_plan: Some(poison_at_epoch_1()),
            ..guarded_hybrid_cfg()
        };
        let out = Engine::new(cfg.clone()).run();
        // Corruption fires in the poisoned epoch itself: the table is
        // quarantined and the next rung (Parallel) steers.
        assert_eq!(
            out.quarantined_tables, 1,
            "events: {:?}",
            out.guardrail_events
        );
        assert!(out.ladder_level >= 1);
        assert!(out.failover_epochs > 0);
        assert!(out
            .guardrail_events
            .iter()
            .any(|e| e.contains("corruption")));
        assert_eq!(out.epochs[1].ladder_level, 0, "demotion lands next epoch");
        assert_eq!(out.epochs[2].ladder_level, 1);
        // Probation (6 clean epochs) passes and control re-promotes to
        // the fresh Hybrid bootstrap before the burst ends.
        assert!(out
            .guardrail_events
            .iter()
            .any(|e| e.contains("re-promoted")));
        assert_eq!(out.epochs.last().unwrap().ladder_level, 0);
        // The failover never violates the Normal floor or the books.
        assert!(out.floor_held, "speedup {}", out.speedup_vs_normal);
        assert_eq!(out.grid_overload_wh, 0.0);
        assert!(
            out.audit_violations.is_empty(),
            "{:?}",
            out.audit_violations
        );
        // Deterministic: same plan, same bytes.
        let again = Engine::new(cfg).run();
        assert_eq!(json(&out), json(&again));
    }

    #[test]
    fn quarantine_sidecar_lands_in_the_configured_dir() {
        let dir = std::env::temp_dir().join(format!("gs-engine-quar-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        let mut cfg = EngineConfig {
            fault_plan: Some(poison_at_epoch_1()),
            ..guarded_hybrid_cfg()
        };
        cfg.guardrail.quarantine_dir = Some(dir_s.clone());
        let out = Engine::new(cfg).run();
        assert_eq!(out.quarantined_tables, 1);
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("quarantine dir exists")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 1, "{files:?}");
        assert!(files[0].starts_with("qtable-e1-"), "{files:?}");
        let text = std::fs::read_to_string(dir.join(&files[0])).unwrap();
        let rec = crate::guardrail::QuarantineRecord::from_json(&text).unwrap();
        // The captured table carries the poison signature and is
        // loadable for forensics but rejected for reuse.
        let learner = crate::qlearning::QLearner::from_json_unchecked(&rec.policy).unwrap();
        assert!(learner.table_stats().non_finite > 0);
        assert!(crate::qlearning::QLearner::from_json(&rec.policy).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_resume_is_byte_identical_across_a_failover() {
        let cfg = EngineConfig {
            fault_plan: Some(poison_at_epoch_1()),
            ..guarded_hybrid_cfg()
        };
        let (want_out, want_mon, want_pol) = Engine::new(cfg.clone()).run_full();
        assert!(want_out.failover_epochs > 0, "fixture must fail over");

        let mut snaps = Vec::new();
        let (out, ..) = Engine::new(cfg)
            .run_full_with_snapshots(3, &mut |s| snaps.push(s.clone()))
            .unwrap();
        assert_eq!(json(&out), json(&want_out), "snapshotting changed the run");
        // Resume from every boundary — before, during, and after the
        // failover window — and converge on the same bytes.
        for snap in snaps {
            let snap = EngineSnapshot::from_json(&snap.to_json()).unwrap();
            match resume_snapshot(snap, 0, &mut |_| {}).unwrap() {
                ResumedRun::Burst {
                    outcome,
                    monitor,
                    policy,
                } => {
                    assert_eq!(json(&outcome), json(&want_out));
                    assert_eq!(json(&monitor), json(&want_mon));
                    assert_eq!(policy, want_pol);
                }
                other => panic!("expected a burst, got {other:?}"),
            }
        }
    }

    #[test]
    fn guardrail_supervises_non_learned_strategies_too() {
        // Greedy has no Q-table to poison, but the ladder still arms for
        // its comparative detectors; a healthy run never triggers.
        let cfg = EngineConfig {
            strategy: Strategy::Greedy,
            ..guarded_hybrid_cfg()
        };
        let out = Engine::new(cfg).run();
        assert_eq!(out.quarantined_tables, 0);
        assert_eq!(out.failover_epochs, 0, "events: {:?}", out.guardrail_events);
        assert!(out.floor_held);
    }
}
