//! The tabular reinforcement learner behind the *Hybrid* strategy
//! (paper §III-B, Algorithm 1).
//!
//! The MDP: the state `c_t` is the (power supply, workload intensity) pair
//! observed during epoch `t−1`, both quantized in 5 % steps; the action
//! `a_t` is a sprint setting from the 63-element space `S`; the reward
//! combines a power-satisfaction ratio and a QoS ratio per Algorithm 1;
//! updates follow `R(c,a) += α[r + γ·max_a' R(c',a') − R(c,a)]` with the
//! paper's α = 0.7 and γ = 0.9.
//!
//! The table is bootstrapped from the profiling data (the paper seeds it
//! "from the profiling data collected by Parallel and Pacing"), so the
//! very first sprint decisions are already sensible and online learning
//! refines them.
//!
//! One interpretation note, recorded here because Algorithm 1 leaves it
//! implicit: `QoScurrent` must reflect the *offered* workload, not only the
//! requests a load balancer admitted — otherwise shedding to a trickle
//! would always look QoS-compliant. We therefore treat QoS as ensured when
//! the fraction of offered requests finishing within the deadline reaches
//! the SLO percentile, and use the measured tail latency for the magnitude
//! of the reward once it is.

use crate::profiler::ProfileTable;
use gs_cluster::ServerSetting;
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The paper's learning rate.
pub const PAPER_LEARNING_RATE: f64 = 0.7;
/// The paper's discount factor.
pub const PAPER_DISCOUNT: f64 = 0.9;
/// The paper's state-quantization step ("we empirically determine the
/// step as 5%").
pub const QUANT_STEP: f64 = 0.05;

/// Number of quantization levels for one state dimension (0 %, 5 %, …, 100 %).
const LEVELS: usize = 21;

/// A quantized MDP state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QState {
    /// Power-supply level in `0..LEVELS` (fraction of max sprint power).
    pub power_level: usize,
    /// Workload-intensity level in `0..LEVELS` (fraction of max capacity).
    pub load_level: usize,
}

impl QState {
    fn index(self) -> usize {
        self.power_level * LEVELS + self.load_level
    }

    /// Total number of states.
    pub const COUNT: usize = LEVELS * LEVELS;

    /// Whether both levels lie inside the quantization grid. [`quantize`]
    /// never produces an out-of-range level, but a deserialized or
    /// corrupted state can carry one; indexing the table with it would
    /// read another state's cells (or panic).
    pub fn in_range(self) -> bool {
        self.power_level < LEVELS && self.load_level < LEVELS
    }
}

/// Quantize a fraction in `[0, 1]` to a 5 % level.
pub fn quantize(fraction: f64) -> usize {
    ((fraction.clamp(0.0, 1.0) / QUANT_STEP).round() as usize).min(LEVELS - 1)
}

/// Inputs to the reward computation for one epoch.
#[derive(Debug, Clone, Copy)]
pub struct RewardInputs {
    /// Power available to the server this epoch (W).
    pub power_supply_w: f64,
    /// Power the server actually demanded (W).
    pub power_current_w: f64,
    /// The SLO deadline (s).
    pub qos_target_s: f64,
    /// Measured latency at the SLO percentile, of admitted requests (s).
    pub qos_current_s: f64,
    /// Fraction of *offered* requests that finished within the deadline.
    pub offered_slo_fraction: f64,
    /// The SLO percentile (e.g. 0.99).
    pub slo_percentile: f64,
}

/// Algorithm 1's reward.
pub fn reward(inp: &RewardInputs) -> f64 {
    let r_power = if inp.power_current_w > 0.0 {
        inp.power_supply_w / inp.power_current_w
    } else {
        // No demand at all: supply trivially suffices.
        2.0
    };
    // QoS is ensured only if the offered workload met the percentile; the
    // latency ratio then grades how comfortably (capped to keep the table
    // bounded).
    //
    // Deviation from the literal Algorithm 1: in the violated branch the
    // paper subtracts `Rqos = QoStarget/QoScurrent`, which *shrinks* as QoS
    // worsens — i.e. the literal formula prefers the setting that violates
    // QoS the most. We read that as a typo for the inverse ratio and
    // subtract a penalty that *grows* with the violation (capped), which
    // matches the prose: "if the QoS can not been ensured, we add a
    // negative reward."
    let qos_ensured = inp.offered_slo_fraction >= inp.slo_percentile;
    if r_power > 1.0 {
        if qos_ensured {
            let r_qos = if inp.qos_current_s > 0.0 {
                (inp.qos_target_s / inp.qos_current_s).clamp(1.0, 3.0)
            } else {
                3.0
            };
            r_power + r_qos + 1.0
        } else {
            let violation = if inp.offered_slo_fraction > 0.0 {
                (inp.slo_percentile / inp.offered_slo_fraction).min(5.0)
            } else {
                5.0
            };
            r_power - violation + 1.0
        }
    } else {
        -r_power - 1.0
    }
}

/// Why an exported policy cannot be loaded.
///
/// Returned by [`QLearner::from_json`]; surfaced by the CLI as a usage
/// error (exit 2) and by the engine as `InvalidWarmPolicy`.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The text does not parse as a policy at all.
    Parse(String),
    /// The table does not have `QState::COUNT × |S|` cells.
    WrongShape {
        /// Cells a well-formed table must have.
        expected: usize,
        /// Cells the table actually has.
        got: usize,
    },
    /// The table holds NaN or infinite values.
    NonFinite {
        /// Number of non-finite cells.
        cells: usize,
    },
    /// A hyper-parameter or quantization reference is out of range.
    BadParameter(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Parse(e) => write!(f, "policy does not parse: {e}"),
            PolicyError::WrongShape { expected, got } => {
                write!(f, "table has {got} cells, expected {expected}")
            }
            PolicyError::NonFinite { cells } => {
                write!(f, "table holds {cells} NaN/inf cells")
            }
            PolicyError::BadParameter(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Summary statistics over a Q-table, shared by the guardrail's
/// corruption detector and `greensprint qtable dump`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Total number of cells.
    pub cells: usize,
    /// Cells holding NaN or ±inf.
    pub non_finite: usize,
    /// Smallest finite value (`0.0` if none are finite).
    pub min: f64,
    /// Largest finite value (`0.0` if none are finite).
    pub max: f64,
    /// Mean over finite values (`0.0` if none are finite).
    pub mean: f64,
    /// Largest absolute finite value (`0.0` if none are finite).
    pub max_abs: f64,
}

/// The tabular Q-learner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QLearner {
    /// `R(c, a)` lookup table, `QState::COUNT × 63`.
    table: Vec<f64>,
    /// Learning rate α.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub discount: f64,
    /// Exploration probability (the paper runs pure greedy with continued
    /// updates; ε > 0 is available for ablations).
    pub epsilon: f64,
    /// Reference power for the state quantization (max sprint power, W).
    max_power_w: f64,
    /// Reference load for the state quantization (max SLO capacity, req/s).
    max_load_rps: f64,
}

impl QLearner {
    /// A learner with the paper's constants, quantizing against the given
    /// application maxima.
    pub fn new(max_power_w: f64, max_load_rps: f64) -> Self {
        let n_actions = ServerSetting::all().len();
        QLearner {
            table: vec![0.0; QState::COUNT * n_actions],
            learning_rate: PAPER_LEARNING_RATE,
            discount: PAPER_DISCOUNT,
            epsilon: 0.0,
            max_power_w,
            max_load_rps,
        }
    }

    /// The process-wide bootstrapped learner for a paper application:
    /// [`QLearner::new`] against the cached profile maxima plus
    /// [`QLearner::bootstrap`], computed once per process and shared
    /// read-only. Sweeps clone it instead of re-running the
    /// 21×21×63-cell bootstrap per Hybrid run; the bootstrap is a pure
    /// function of the profile table, so the clone is bit-identical to a
    /// fresh bootstrap.
    pub fn bootstrapped_cached(app: gs_workload::apps::Application) -> &'static QLearner {
        static BOOTSTRAPPED: [std::sync::OnceLock<QLearner>; 3] = [
            std::sync::OnceLock::new(),
            std::sync::OnceLock::new(),
            std::sync::OnceLock::new(),
        ];
        BOOTSTRAPPED[crate::profiler::app_cache_index(app)].get_or_init(|| {
            let profiles = ProfileTable::cached(app);
            let max = profiles.get(ServerSetting::max_sprint());
            let mut q = QLearner::new(max.full_load_power_w, max.slo_capacity);
            q.bootstrap(profiles);
            q
        })
    }

    /// Quantize observed (supply, load) into an MDP state.
    pub fn state(&self, power_supply_w: f64, load_rps: f64) -> QState {
        QState {
            power_level: quantize(power_supply_w / self.max_power_w),
            load_level: quantize(load_rps / self.max_load_rps),
        }
    }

    fn cell(&self, s: QState, a: ServerSetting) -> usize {
        s.index() * ServerSetting::all().len() + a.action_index()
    }

    /// Current table value.
    pub fn value(&self, s: QState, a: ServerSetting) -> f64 {
        self.table[self.cell(s, a)]
    }

    /// Seed the table from profiling data: for every state and action,
    /// estimate Algorithm 1's one-step reward from the profiled power and
    /// SLO capacity (the paper bootstraps from Parallel/Pacing profiles).
    pub fn bootstrap(&mut self, profiles: &ProfileTable) {
        for power_level in 0..LEVELS {
            for load_level in 0..LEVELS {
                let s = QState {
                    power_level,
                    load_level,
                };
                let supply = power_level as f64 * QUANT_STEP * self.max_power_w;
                let offered = load_level as f64 * QUANT_STEP * self.max_load_rps;
                for a in ServerSetting::all() {
                    let e = profiles.get(a);
                    let demand = profiles.planned_power_w(a, offered);
                    let frac = if offered <= 0.0 {
                        1.0
                    } else {
                        (e.slo_capacity / offered).min(1.0)
                    };
                    let r = reward(&RewardInputs {
                        power_supply_w: supply,
                        power_current_w: demand,
                        qos_target_s: 1.0,
                        // Comfortable latency when capacity covers the load.
                        qos_current_s: if frac >= 1.0 { 0.6 } else { 1.5 },
                        offered_slo_fraction: frac,
                        slo_percentile: 0.99,
                    });
                    let cell = self.cell(s, a);
                    self.table[cell] = r;
                }
            }
        }
    }

    /// Greedy action for a state among `feasible` settings (the PMK masks
    /// actions whose planned power exceeds the supply); falls back to
    /// Normal when the feasible set is empty. With ε > 0, explores
    /// uniformly over the feasible set.
    pub fn best_action(
        &self,
        s: QState,
        feasible: &[ServerSetting],
        rng: &mut SimRng,
    ) -> ServerSetting {
        if feasible.is_empty() {
            return ServerSetting::normal();
        }
        if self.epsilon > 0.0 && rng.chance(self.epsilon) {
            return feasible[rng.index(feasible.len())];
        }
        feasible
            .iter()
            .copied()
            .max_by(|&a, &b| self.value(s, a).total_cmp(&self.value(s, b)))
            .expect("feasible set is non-empty")
    }

    /// Serialize the learner (table and hyper-parameters) to JSON — the
    /// operational path for persisting a trained policy across restarts,
    /// complementing the paper's offline profiling bootstrap.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("QLearner serializes")
    }

    /// Restore a learner saved with [`Self::to_json`], rejecting any
    /// table no engine should ever run: wrong dimensions, NaN/inf
    /// cells, or out-of-range hyper-parameters / quantization maxima.
    pub fn from_json(json: &str) -> Result<Self, PolicyError> {
        let q = Self::from_json_unchecked(json)?;
        q.validate()?;
        Ok(q)
    }

    /// Parse without validation — the forensic path for inspecting
    /// quarantined (deliberately corrupt) tables; [`Self::validate`]
    /// reports what is wrong with the result.
    ///
    /// The serializer writes non-finite floats as `null` (JSON has no
    /// NaN), so `null` table cells are mapped back to NaN here — a
    /// quarantined table round-trips with its corruption intact.
    pub fn from_json_unchecked(json: &str) -> Result<Self, PolicyError> {
        let mut v: serde_json::Value =
            serde_json::from_str(json).map_err(|e| PolicyError::Parse(e.to_string()))?;
        if let serde_json::Value::Object(fields) = &mut v {
            if let Some((_, serde_json::Value::Array(cells))) =
                fields.iter_mut().find(|(k, _)| k == "table")
            {
                for c in cells.iter_mut() {
                    if matches!(c, serde_json::Value::Null) {
                        *c = serde_json::Value::Number(serde::Number::from_f64(f64::NAN));
                    }
                }
            }
        }
        serde_json::from_value(v).map_err(|e| PolicyError::Parse(e.to_string()))
    }

    /// Structural health check: table shape, cell finiteness, and
    /// hyper-parameter / quantization-reference ranges.
    pub fn validate(&self) -> Result<(), PolicyError> {
        let expected = QState::COUNT * ServerSetting::all().len();
        if self.table.len() != expected {
            return Err(PolicyError::WrongShape {
                expected,
                got: self.table.len(),
            });
        }
        let cells = self.table.iter().filter(|v| !v.is_finite()).count();
        if cells > 0 {
            return Err(PolicyError::NonFinite { cells });
        }
        for (name, v) in [
            ("max_power_w", self.max_power_w),
            ("max_load_rps", self.max_load_rps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PolicyError::BadParameter(format!(
                    "{name} must be finite and positive, got {v}"
                )));
            }
        }
        for (name, v) in [
            ("learning_rate", self.learning_rate),
            ("discount", self.discount),
            ("epsilon", self.epsilon),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(PolicyError::BadParameter(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics over the table (finite-value min/max/mean and
    /// the non-finite cell count).
    pub fn table_stats(&self) -> TableStats {
        let mut stats = TableStats {
            cells: self.table.len(),
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            max_abs: 0.0,
        };
        let mut finite = 0_usize;
        let mut sum = 0.0;
        for &v in &self.table {
            if v.is_finite() {
                finite += 1;
                sum += v;
                stats.min = stats.min.min(v);
                stats.max = stats.max.max(v);
                stats.max_abs = stats.max_abs.max(v.abs());
            } else {
                stats.non_finite += 1;
            }
        }
        if finite > 0 {
            stats.mean = sum / finite as f64;
        } else {
            stats.min = 0.0;
            stats.max = 0.0;
        }
        stats
    }

    /// Deterministically corrupt the table — the chaos `QTablePoison`
    /// fault. Every 13th cell becomes NaN and every other cell is
    /// overwritten with `magnitude`, exhibiting both corruption
    /// signatures (non-finite cells and value explosion) at once.
    pub fn poison(&mut self, magnitude: f64) {
        for (i, v) in self.table.iter_mut().enumerate() {
            *v = if i % 13 == 0 { f64::NAN } else { magnitude };
        }
    }

    /// The Bellman update of Algorithm 1 line 15.
    pub fn update(&mut self, s: QState, a: ServerSetting, r: f64, next: QState) {
        let best_next = ServerSetting::all()
            .into_iter()
            .map(|a2| self.value(next, a2))
            .fold(f64::NEG_INFINITY, f64::max);
        let cell = self.cell(s, a);
        let old = self.table[cell];
        self.table[cell] = old + self.learning_rate * (r + self.discount * best_next - old);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_workload::apps::Application;

    #[test]
    fn quantize_levels() {
        assert_eq!(quantize(0.0), 0);
        assert_eq!(quantize(0.049), 1); // rounds to nearest 5 %
        assert_eq!(quantize(0.5), 10);
        assert_eq!(quantize(1.0), 20);
        assert_eq!(quantize(2.0), 20);
        assert_eq!(quantize(-1.0), 0);
    }

    #[test]
    fn reward_follows_algorithm1_branches() {
        // Power satisfied + QoS satisfied: r = Rpower + Rqos + 1.
        let r = reward(&RewardInputs {
            power_supply_w: 150.0,
            power_current_w: 100.0,
            qos_target_s: 0.5,
            qos_current_s: 0.25,
            offered_slo_fraction: 1.0,
            slo_percentile: 0.99,
        });
        assert!((r - (1.5 + 2.0 + 1.0)).abs() < 1e-9);

        // Power satisfied + QoS violated: r = Rpower − penalty + 1, where
        // the penalty grows with the violation (see the typo note in
        // `reward`). Serving half of a p99 target is a ~2× violation.
        let r = reward(&RewardInputs {
            power_supply_w: 150.0,
            power_current_w: 100.0,
            qos_target_s: 0.5,
            qos_current_s: 1.0,
            offered_slo_fraction: 0.5,
            slo_percentile: 0.99,
        });
        let penalty = 0.99 / 0.5;
        assert!((r - (1.5 - penalty + 1.0)).abs() < 1e-9);
        // A worse violation is penalized harder.
        let worse = reward(&RewardInputs {
            offered_slo_fraction: 0.25,
            ..RewardInputs {
                power_supply_w: 150.0,
                power_current_w: 100.0,
                qos_target_s: 0.5,
                qos_current_s: 1.0,
                offered_slo_fraction: 0.5,
                slo_percentile: 0.99,
            }
        });
        assert!(worse < r);

        // Power not satisfied: r = −Rpower − 1 (negative).
        let r = reward(&RewardInputs {
            power_supply_w: 80.0,
            power_current_w: 155.0,
            qos_target_s: 0.5,
            qos_current_s: 0.2,
            offered_slo_fraction: 1.0,
            slo_percentile: 0.99,
        });
        assert!(r < 0.0);
        assert!((r - (-(80.0 / 155.0) - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cached_bootstrap_is_bit_identical_to_fresh() {
        let app = Application::SpecJbb;
        let cached = QLearner::bootstrapped_cached(app);
        let profiles = ProfileTable::cached(app);
        let max = profiles.get(ServerSetting::max_sprint());
        let mut fresh = QLearner::new(max.full_load_power_w, max.slo_capacity);
        fresh.bootstrap(profiles);
        assert_eq!(cached.table, fresh.table, "cached bootstrap diverged");
        assert_eq!(cached.max_power_w, fresh.max_power_w);
        assert_eq!(cached.max_load_rps, fresh.max_load_rps);
        // And the cache really is a cache.
        assert!(std::ptr::eq(cached, QLearner::bootstrapped_cached(app)));
    }

    #[test]
    fn reward_handles_degenerate_inputs() {
        // Zero demand counts as satisfied supply.
        let r = reward(&RewardInputs {
            power_supply_w: 100.0,
            power_current_w: 0.0,
            qos_target_s: 0.5,
            qos_current_s: 0.0,
            offered_slo_fraction: 1.0,
            slo_percentile: 0.99,
        });
        assert!(r > 0.0);
    }

    fn learner() -> (QLearner, ProfileTable) {
        let app = Application::SpecJbb.profile();
        let profiles = ProfileTable::build(&app);
        let max_p = profiles.get(ServerSetting::max_sprint()).full_load_power_w;
        let max_l = profiles.get(ServerSetting::max_sprint()).slo_capacity;
        (QLearner::new(max_p, max_l), profiles)
    }

    #[test]
    fn bootstrap_prefers_sprinting_under_burst_with_ample_power() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        let s = q.state(
            155.0,
            1e9_f64.min(profiles.get(ServerSetting::max_sprint()).slo_capacity),
        );
        let mut rng = SimRng::seed_from_u64(1);
        let all = ServerSetting::all();
        let choice = q.best_action(s, &all, &mut rng);
        // With full supply and a saturating burst, the bootstrapped policy
        // must sprint hard (more cores *and* higher frequency than Normal).
        assert!(choice.cores > 6 || choice.freq_idx > 0, "chose {choice}");
        let perf = profiles.expected_perf(choice, 1e9);
        let normal_perf = profiles.expected_perf(ServerSetting::normal(), 1e9);
        assert!(
            perf > 2.0 * normal_perf,
            "perf {perf} vs normal {normal_perf}"
        );
    }

    #[test]
    fn bootstrap_prefers_frugality_at_light_load() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        // Light load, ample power: the reward's Rpower term favours low
        // draw, so the policy shouldn't burn max sprint.
        let light = 0.1 * profiles.get(ServerSetting::max_sprint()).slo_capacity;
        let s = q.state(155.0, light);
        let mut rng = SimRng::seed_from_u64(2);
        let choice = q.best_action(s, &ServerSetting::all(), &mut rng);
        let p_choice = profiles.planned_power_w(choice, light);
        let p_max = profiles.planned_power_w(ServerSetting::max_sprint(), light);
        assert!(p_choice <= p_max, "{p_choice} vs {p_max}");
        assert!(
            profiles.expected_perf(choice, light) >= light * 0.999,
            "still must serve the load"
        );
    }

    #[test]
    fn update_moves_value_towards_target() {
        let (mut q, _) = learner();
        let s = QState {
            power_level: 10,
            load_level: 10,
        };
        let next = QState {
            power_level: 10,
            load_level: 10,
        };
        let a = ServerSetting::max_sprint();
        assert_eq!(q.value(s, a), 0.0);
        q.update(s, a, 10.0, next);
        // α = 0.7, zero table: new value = 0.7 × 10.
        assert!((q.value(s, a) - 7.0).abs() < 1e-9);
        // A second update factors in the discounted max of the next state.
        q.update(s, a, 10.0, next);
        assert!(q.value(s, a) > 7.0);
    }

    #[test]
    fn empty_feasible_set_falls_back_to_normal() {
        let (q, _) = learner();
        let mut rng = SimRng::seed_from_u64(3);
        let s = QState {
            power_level: 0,
            load_level: 20,
        };
        assert_eq!(q.best_action(s, &[], &mut rng), ServerSetting::normal());
    }

    #[test]
    fn epsilon_explores() {
        let (mut q, _) = learner();
        q.epsilon = 1.0;
        let mut rng = SimRng::seed_from_u64(4);
        let s = QState {
            power_level: 5,
            load_level: 5,
        };
        let picks: std::collections::HashSet<ServerSetting> = (0..100)
            .map(|_| q.best_action(s, &ServerSetting::all(), &mut rng))
            .collect();
        assert!(
            picks.len() > 10,
            "exploration visited {} actions",
            picks.len()
        );
    }

    #[test]
    fn json_roundtrip_preserves_learned_policy() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        let s = QState {
            power_level: 12,
            load_level: 18,
        };
        q.update(s, ServerSetting::new(9, 5), 42.0, s);
        let restored = QLearner::from_json(&q.to_json()).expect("roundtrip");
        let mut rng_a = SimRng::seed_from_u64(6);
        let mut rng_b = SimRng::seed_from_u64(6);
        let all = ServerSetting::all();
        for pl in (0..21).step_by(4) {
            for ll in (0..21).step_by(4) {
                let st = QState {
                    power_level: pl,
                    load_level: ll,
                };
                assert_eq!(
                    q.best_action(st, &all, &mut rng_a),
                    restored.best_action(st, &all, &mut rng_b)
                );
            }
        }
        assert_eq!(
            restored.value(s, ServerSetting::new(9, 5)),
            q.value(s, ServerSetting::new(9, 5))
        );
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(QLearner::from_json("{not json").is_err());
    }

    #[test]
    fn from_json_rejects_nan_cells() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        q.poison(1.0);
        let err = QLearner::from_json(&q.to_json()).expect_err("NaN table must be rejected");
        assert!(
            matches!(err, PolicyError::NonFinite { cells } if cells > 0),
            "{err}"
        );
    }

    /// Overwrite one top-level field of a policy JSON object.
    fn set_field(json: &str, key: &str, val: serde_json::Value) -> String {
        let mut v: serde_json::Value = serde_json::from_str(json).unwrap();
        let serde_json::Value::Object(fields) = &mut v else {
            panic!("policy JSON is an object");
        };
        let slot = fields
            .iter_mut()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("field {key} missing"));
        slot.1 = val;
        serde_json::to_string(&v).unwrap()
    }

    #[test]
    fn from_json_rejects_wrong_shape_and_bad_references() {
        let (q, _) = learner();
        let json = q.to_json();

        // Truncate the table: drop one cell.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Object(fields) = &mut v {
            if let Some((_, serde_json::Value::Array(cells))) =
                fields.iter_mut().find(|(k, _)| k == "table")
            {
                cells.pop();
            }
        }
        let err = QLearner::from_json(&serde_json::to_string(&v).unwrap())
            .expect_err("short table must be rejected");
        assert!(matches!(err, PolicyError::WrongShape { .. }), "{err}");

        // Non-positive quantization reference.
        let bad = set_field(
            &json,
            "max_power_w",
            serde_json::Value::Number(serde::Number::from_f64(-1.0)),
        );
        let err = QLearner::from_json(&bad).expect_err("bad max_power_w");
        assert!(matches!(err, PolicyError::BadParameter(_)), "{err}");

        // Out-of-range hyper-parameter.
        let bad = set_field(
            &json,
            "learning_rate",
            serde_json::Value::Number(serde::Number::from_f64(3.5)),
        );
        let err = QLearner::from_json(&bad).expect_err("bad learning_rate");
        assert!(matches!(err, PolicyError::BadParameter(_)), "{err}");
    }

    #[test]
    fn unchecked_parse_loads_corrupt_tables_for_forensics() {
        let (mut q, _) = learner();
        q.poison(1e9);
        let json = q.to_json();
        assert!(QLearner::from_json(&json).is_err());
        let loaded = QLearner::from_json_unchecked(&json).expect("forensic load");
        let stats = loaded.table_stats();
        assert!(stats.non_finite > 0);
        assert_eq!(stats.max_abs, 1e9);
        assert!(loaded.validate().is_err());
    }

    #[test]
    fn table_stats_summarize_the_table() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        let stats = q.table_stats();
        assert_eq!(stats.cells, QState::COUNT * ServerSetting::all().len());
        assert_eq!(stats.non_finite, 0);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(stats.max_abs >= stats.max.abs());
    }

    #[test]
    fn poison_flips_both_corruption_signatures() {
        let (mut q, _) = learner();
        q.poison(1e8);
        let stats = q.table_stats();
        assert!(stats.non_finite > 0, "poison must plant NaN cells");
        assert_eq!(stats.max_abs, 1e8, "poison must plant exploded values");
        // A poisoned table still yields *some* feasible action — the
        // engine's floor never depends on table health.
        let mut rng = SimRng::seed_from_u64(9);
        let s = QState {
            power_level: 10,
            load_level: 10,
        };
        let all = ServerSetting::all();
        let pick = q.best_action(s, &all, &mut rng);
        assert!(all.contains(&pick));
    }

    #[test]
    fn qstate_range_check() {
        assert!(QState {
            power_level: 20,
            load_level: 0
        }
        .in_range());
        assert!(!QState {
            power_level: 21,
            load_level: 0
        }
        .in_range());
        assert!(!QState {
            power_level: 0,
            load_level: 99
        }
        .in_range());
    }

    #[test]
    fn learning_overrides_bootstrap() {
        let (mut q, profiles) = learner();
        q.bootstrap(&profiles);
        let s = QState {
            power_level: 20,
            load_level: 20,
        };
        let mut rng = SimRng::seed_from_u64(5);
        let initial = q.best_action(s, &ServerSetting::all(), &mut rng);
        // Hammer a different action with huge rewards.
        let target = ServerSetting::new(7, 3);
        for _ in 0..50 {
            q.update(s, target, 100.0, s);
        }
        let learned = q.best_action(s, &ServerSetting::all(), &mut rng);
        assert_eq!(learned, target);
        assert_ne!(learned, initial);
    }
}
