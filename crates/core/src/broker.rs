//! The datacenter broker: deterministic cross-rack load balancing with
//! site-level fault domains.
//!
//! The paper provisions renewables "on the PDU level … in a data center on
//! a per-rack basis" (§II). [`crate::datacenter`] runs those racks as
//! independent experiments; this module makes them a *fleet*: a broker
//! steps every rack through the scheduling-epoch loop in lockstep and
//! routes the datacenter's offered load toward the racks with renewable
//! surplus, while tolerating the site-level failures a real control plane
//! sees — rack blackouts, inverter derates, broker↔rack partitions, lossy
//! and laggy links ([`crate::faults::FaultKind::RackBlackout`] and
//! friends).
//!
//! # Architecture
//!
//! Each rack runs the unmodified engine epoch loop on its own OS thread,
//! driven through the engine's `EpochHooks` seam: at the top of
//! every epoch the rack blocks on a broker *directive* (its routed load
//! factor for the epoch), and after the epoch settles it reports
//! telemetry (believed supply, battery state of charge, live servers,
//! demand) back to the broker. The broker:
//!
//! 1. computes a *conserved* allocation — per-rack load factors summing
//!    exactly to the rack count — from last epoch's telemetry, favouring
//!    racks with renewable surplus;
//! 2. pushes each directive through a simulated control link (partition,
//!    loss with seeded retries and [`crate::supervisor::backoff_ms`]
//!    virtual latency, delay serving stale factors);
//! 3. collects telemetry in rack-index order and audits the settled epoch
//!    with [`crate::audit::InvariantAuditor::check_site_epoch`].
//!
//! A partitioned rack receives nothing and degrades to *local autonomy*:
//! it holds its last-good factor, which by construction keeps it at or
//! above the Normal floor (the Normal baseline replays the identical
//! applied factors). After the link heals the rack stays pinned for
//! [`crate::engine::REJOIN_EPOCHS`] probationary epochs — mirroring the
//! fleet's server-rejoin hysteresis — before fresh allocations resume.
//!
//! # Determinism and durability
//!
//! Results are byte-identical at any `jobs` level: concurrency only bounds
//! how many racks compute an epoch simultaneously (a counting gate), while
//! every RNG draw and every aggregation happens on the broker thread in
//! rack-index order. Mid-run [`DatacenterSnapshot`]s capture the broker
//! state plus every rack's [`LoopState`] at the same epoch boundary, so a
//! run killed mid-partition resumes to a byte-identical outcome.

use crate::audit::{InvariantAuditor, SiteFlows};
use crate::checkpoint::{fingerprint, LoopState, DC_CHECKPOINT_SCHEMA};
use crate::datacenter::{DatacenterConfig, DatacenterOutcome};
use crate::engine::{
    run_once_resumable, BurstOutcome, EngineConfig, EpochHooks, EpochRecord, MeasurementMode,
    TickDirective, REJOIN_EPOCHS,
};
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::fleet::EngineScratch;
use crate::pmk::Strategy;
use crate::profiler::ProfileTable;
use crate::supervisor::{backoff_ms, panic_message};
use gs_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, PoisonError};

/// EWMA-style smoothing weight on the surplus-driven share: a factor is
/// `(1 − β)` of an even split plus `β` of the rack's surplus share, so
/// routing follows the sun without whiplashing the fleet.
const ROUTE_BETA: f64 = 0.3;
/// Watts of routable surplus one fully charged battery is credited with
/// when scoring racks (battery headroom counts toward surplus, scaled by
/// state of charge and rack size).
const SOC_WEIGHT_W: f64 = 50.0;
/// Directive retransmissions the broker attempts on a lossy link before
/// declaring the epoch's directive lost.
const LINK_RETRIES: u32 = 3;
/// Salt for the broker's link-loss RNG stream ("link!"), keeping it
/// decorrelated from every engine and generator stream.
const LINK_SALT: u64 = 0x006c_696e_6b21;
/// A computed factor at or below this is treated as "drained" when
/// counting re-routed epochs. Shared with [`crate::serve`]'s multi-rack
/// orchestrator so both planes count reroutes identically.
pub(crate) const REROUTE_EPS: f64 = 0.01;

/// The broker's belief about one rack, refreshed from telemetry each
/// epoch (or held stale across a partition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackBelief {
    /// Believed renewable supply (W).
    pub re_supply_w: f64,
    /// Mean battery state of charge.
    pub battery_soc: f64,
    /// Servers carrying load.
    pub live_servers: usize,
    /// Settled power demand (W).
    pub demand_w: f64,
    /// Goodput summed over the rack (req/s).
    pub goodput_rps: f64,
    /// True while the belief is held over from before a partition.
    pub stale: bool,
}

impl RackBelief {
    /// The pre-telemetry belief for a healthy rack of `n` servers.
    pub(crate) fn initial(n: usize) -> Self {
        RackBelief {
            re_supply_w: 0.0,
            battery_soc: 1.0,
            live_servers: n,
            demand_w: 0.0,
            goodput_rps: 0.0,
            stale: true,
        }
    }
}

/// Per-rack routing statistics, summarized into the outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackRouteStats {
    /// Mean applied load factor over the run.
    pub mean_factor: f64,
    /// Smallest applied load factor in any epoch.
    pub min_factor: f64,
    /// Largest applied load factor in any epoch.
    pub max_factor: f64,
    /// Epochs this rack spent partitioned from the broker.
    pub partition_epochs: usize,
    /// Epochs this rack ran degraded (partitioned, on probation, or with
    /// its directive lost) — applying a held factor instead of a fresh
    /// allocation.
    pub degraded_epochs: usize,
}

/// Every piece of mutable state the broker carries across epochs.
/// Snapshotting it alongside each rack's [`LoopState`] and restoring both
/// later continues the datacenter run byte-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerState {
    /// The next epoch index to execute.
    pub next_epoch: u64,
    /// The link-loss RNG stream position.
    pub link_rng: SimRng,
    /// Per-rack beliefs from the latest telemetry.
    pub beliefs: Vec<RackBelief>,
    /// True once the first epoch's telemetry has been ingested.
    pub has_telemetry: bool,
    /// Per-rack pinned factor while partitioned or on rejoin probation.
    pub pinned: Vec<Option<f64>>,
    /// Per-rack probationary epochs left before rejoining routing.
    pub probation_left: Vec<u32>,
    /// Computed (conserved) factors, one row per epoch.
    pub computed: Vec<Vec<f64>>,
    /// Applied factors — what each rack actually ran — one row per epoch.
    pub applied: Vec<Vec<f64>>,
    /// Per-rack epochs spent partitioned.
    pub per_rack_partition: Vec<usize>,
    /// Per-rack epochs spent degraded (partition + probation + lost
    /// directives).
    pub per_rack_degraded: Vec<usize>,
    /// Rack-epochs spent inside an active blackout event.
    pub blackout_epochs: usize,
    /// Rack-epochs that applied a stale (link-delayed) factor.
    pub stale_factor_epochs: usize,
    /// Epochs in which load was re-routed away from a drained rack.
    pub rerouted_epochs: usize,
    /// Directive retransmissions attempted on lossy links.
    pub link_retries: usize,
    /// Virtual retransmission latency accumulated from
    /// [`backoff_ms`] (bookkeeping only — never part of results timing).
    pub link_latency_ms: u64,
    /// Racks re-admitted to routing after probation.
    pub rejoins: usize,
    /// Human-readable partition/degrade/rejoin log.
    pub site_events: Vec<String>,
    /// Site-level audit violations so far.
    pub site_audit_violations: Vec<String>,
}

impl BrokerState {
    /// A fresh broker for `n` racks under `master_seed`.
    fn fresh(n: usize, master_seed: u64) -> Self {
        BrokerState {
            next_epoch: 0,
            link_rng: SimRng::seed_from_u64(master_seed ^ LINK_SALT),
            beliefs: Vec::new(),
            has_telemetry: false,
            pinned: vec![None; n],
            probation_left: vec![0; n],
            computed: Vec::new(),
            applied: Vec::new(),
            per_rack_partition: vec![0; n],
            per_rack_degraded: vec![0; n],
            blackout_epochs: 0,
            stale_factor_epochs: 0,
            rerouted_epochs: 0,
            link_retries: 0,
            link_latency_ms: 0,
            rejoins: 0,
            site_events: Vec::new(),
            site_audit_violations: Vec::new(),
        }
    }
}

/// A resumable mid-run checkpoint of a datacenter run: the broker state
/// plus every rack's engine [`LoopState`], captured at the same epoch
/// boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatacenterSnapshot {
    /// [`datacenter_fingerprint`] of the embedded configuration at
    /// capture time; resume recomputes and compares.
    pub fingerprint: String,
    /// The full datacenter configuration, embedded so resume is
    /// self-contained.
    pub cfg: DatacenterConfig,
    /// The broker's state as of the snapshot epoch.
    pub broker: BrokerState,
    /// Each rack's engine loop state, in rack order.
    pub racks: Vec<LoopState>,
}

impl DatacenterSnapshot {
    /// Serialize to JSON. Serialization of a plain data snapshot only
    /// fails on allocator-level trouble; the error is surfaced (not
    /// panicked) so a checkpoint writer can log and continue the run.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("datacenter snapshot serialize: {e}"))
    }

    /// Parse a snapshot from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// The compatibility fingerprint a datacenter checkpoint is stamped with:
/// schema tag, crate version, and the configuration JSON. A resume across
/// a code or config change fails fast instead of continuing a run whose
/// physics changed underneath it.
pub fn datacenter_fingerprint(cfg: &DatacenterConfig) -> String {
    // A config that cannot serialize fingerprints as "" on both the
    // write and the resume side, so the comparison still behaves.
    let json = serde_json::to_string(cfg).unwrap_or_default();
    fingerprint(&[DC_CHECKPOINT_SCHEMA, env!("CARGO_PKG_VERSION"), &json])
}

/// The engine configuration rack `i` of `cfg` runs: the rack's
/// app/green/strategy over the template, the decorrelated-but-reproducible
/// per-rack seed, and the rack's translated fault plan.
pub(crate) fn rack_engine_config(cfg: &DatacenterConfig, i: usize) -> EngineConfig {
    let rack = &cfg.racks[i];
    EngineConfig {
        app: rack.app,
        green: rack.green.clone(),
        strategy: rack.strategy,
        seed: cfg.template.seed.wrapping_add(i as u64 * 0x9E37_79B9),
        fault_plan: translate_plan(cfg, i),
        ..cfg.template.clone()
    }
}

/// Build rack `i`'s engine-level fault plan from the template plan plus
/// the site plan: site kinds targeting this rack translate to engine
/// kinds (blackout → per-server crashes, derate → inverter derate),
/// rack-local kinds in the site plan replicate to every rack, and the
/// broker-side kinds (partition, link loss/delay) stay out of the engine
/// entirely.
fn translate_plan(cfg: &DatacenterConfig, rack: usize) -> Option<FaultPlan> {
    let n_servers = cfg.racks[rack].green.green_servers;
    let mut events: Vec<FaultEvent> = cfg
        .template
        .fault_plan
        .as_ref()
        .map(|p| p.events.clone())
        .unwrap_or_default();
    let mut seed = cfg.template.fault_plan.as_ref().map_or(0, |p| p.seed);
    if let Some(site) = &cfg.site_fault_plan {
        if !site.events.is_empty() {
            seed = site.seed;
        }
        for e in &site.events {
            match e.kind {
                FaultKind::RackBlackout { rack: r, epochs } if usize::from(r) == rack => {
                    // Server indices are u8; DatacenterConfig::validate
                    // bounds blackout-target rack sizes accordingly.
                    for s in 0..n_servers.min(usize::from(u8::MAX) + 1) {
                        events.push(FaultEvent {
                            at: e.at,
                            duration: e.duration,
                            kind: FaultKind::ServerCrash {
                                server: s as u8,
                                down_epochs: epochs,
                            },
                        });
                    }
                }
                FaultKind::RackInverterDerate { rack: r, factor } if usize::from(r) == rack => {
                    events.push(FaultEvent {
                        at: e.at,
                        duration: e.duration,
                        kind: FaultKind::InverterDerate { factor },
                    });
                }
                ref k if k.is_site() => {} // other racks', or broker-side
                _ => events.push(*e),      // rack-local kinds replicate
            }
        }
    }
    (!events.is_empty()).then_some(FaultPlan { seed, events })
}

/// The epoch index containing `at` (clamped to the window start).
fn epoch_of(at: SimTime, start: SimTime, epoch: SimDuration) -> u64 {
    at.since(start).div_duration(epoch).unwrap_or(0)
}

/// True if a [`FaultKind::BrokerPartition`] on `rack` covers epoch `k`.
/// Epoch-counted faults start at the epoch containing the event start.
fn partitioned(site: &FaultPlan, k: u64, rack: usize, start: SimTime, epoch: SimDuration) -> bool {
    site.events.iter().any(|e| match e.kind {
        FaultKind::BrokerPartition { rack: r, epochs } if usize::from(r) == rack => {
            let e0 = epoch_of(e.at, start, epoch);
            k >= e0 && k < e0.saturating_add(u64::from(epochs))
        }
        _ => false,
    })
}

/// True if a [`FaultKind::RackBlackout`] on `rack` covers epoch `k`.
fn blackout_active(
    site: &FaultPlan,
    k: u64,
    rack: usize,
    start: SimTime,
    epoch: SimDuration,
) -> bool {
    site.events.iter().any(|e| match e.kind {
        FaultKind::RackBlackout { rack: r, epochs } if usize::from(r) == rack => {
            let e0 = epoch_of(e.at, start, epoch);
            k >= e0 && k < e0.saturating_add(u64::from(epochs))
        }
        _ => false,
    })
}

/// The loss probability of the first [`FaultKind::LinkLoss`] event on
/// `rack` overlapping epoch `k`'s window, if any.
fn link_loss_p(
    site: &FaultPlan,
    k: u64,
    rack: usize,
    start: SimTime,
    epoch: SimDuration,
) -> Option<f64> {
    let from = start + SimDuration::from_micros(epoch.as_micros() * k);
    let to = from + epoch;
    site.events.iter().find_map(|e| match e.kind {
        FaultKind::LinkLoss { rack: r, p } if usize::from(r) == rack && e.overlaps(from, to) => {
            Some(p)
        }
        _ => None,
    })
}

/// The delivery lag of the first [`FaultKind::LinkDelay`] event on `rack`
/// overlapping epoch `k`'s window, if any.
fn link_delay(
    site: &FaultPlan,
    k: u64,
    rack: usize,
    start: SimTime,
    epoch: SimDuration,
) -> Option<u32> {
    let from = start + SimDuration::from_micros(epoch.as_micros() * k);
    let to = from + epoch;
    site.events.iter().find_map(|e| match e.kind {
        FaultKind::LinkDelay { rack: r, epochs }
            if usize::from(r) == rack && e.overlaps(from, to) =>
        {
            Some(epochs)
        }
        _ => None,
    })
}

/// A counting gate bounding how many racks compute an epoch
/// simultaneously. Purely a concurrency throttle: acquisition order never
/// influences results, because the broker aggregates in rack-index order.
struct JobGate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl JobGate {
    fn new(n: usize) -> Self {
        JobGate {
            permits: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    // The gate only ever holds a counter, so a poisoned lock (some rack
    // panicked while holding it) still carries a usable value: ride the
    // poison rather than cascading the panic into every sibling rack.
    fn acquire(&self) {
        let mut p = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(PoisonError::into_inner);
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.cv.notify_one();
    }
}

/// What the broker delivers to a rack for one epoch.
enum RackDirective {
    /// The routed load factor arrived.
    Deliver(f64),
    /// Nothing arrived (partition, or retries exhausted on a lossy
    /// link): the rack degrades to local autonomy.
    Lost,
}

/// What a rack sends back to the broker.
enum RackMsg {
    /// A captured loop state at a snapshot boundary.
    Snapshot(Box<LoopState>),
    /// One settled epoch's telemetry.
    Report(EpochRecord),
}

/// The rack-side epoch driver: block for the directive, apply it (or
/// hold the last-good factor on a lost link), and report telemetry.
struct RackHooks<'a> {
    dir_rx: mpsc::Receiver<RackDirective>,
    msg_tx: mpsc::Sender<RackMsg>,
    gate: &'a JobGate,
    /// Last factor actually applied — the rack's local autonomy when a
    /// directive is lost.
    last_factor: f64,
}

impl EpochHooks for RackHooks<'_> {
    fn before_epoch(&mut self, _k: u64, _t: SimTime) -> TickDirective {
        // A closed directive channel means the broker died mid-run. The
        // rack degrades to local autonomy (exactly as for a lost link)
        // and runs its window out, so the broker's error path can still
        // join every rack and report one coherent failure.
        let dir = self.dir_rx.recv().unwrap_or(RackDirective::Lost);
        self.gate.acquire();
        let f = match dir {
            RackDirective::Deliver(f) => {
                self.last_factor = f;
                f
            }
            RackDirective::Lost => self.last_factor,
        };
        TickDirective {
            load_factor: Some(f),
            ..TickDirective::default()
        }
    }

    fn after_epoch(
        &mut self,
        _k: u64,
        rec: &EpochRecord,
        _s: &[gs_cluster::ServerSetting],
    ) -> bool {
        self.gate.release();
        let _ = self.msg_tx.send(RackMsg::Report(*rec));
        true
    }

    fn on_snapshot(&mut self, state: &LoopState) {
        let _ = self.msg_tx.send(RackMsg::Snapshot(Box::new(state.clone())));
    }
}

/// The baseline driver: replay the applied factors of the strategy run so
/// the Normal floor is judged like-for-like through blackouts and
/// partitions. Shared with [`crate::serve`]'s multi-rack floor judgment.
pub(crate) struct ReplayHooks<'a> {
    pub(crate) factors: &'a [f64],
}

impl EpochHooks for ReplayHooks<'_> {
    fn before_epoch(&mut self, k: u64, _t: SimTime) -> TickDirective {
        TickDirective {
            load_factor: Some(self.factors.get(k as usize).copied().unwrap_or(1.0)),
            ..TickDirective::default()
        }
    }
}

/// Compute the conserved allocation for the next epoch from the current
/// beliefs: factors sum to exactly the rack count, dark racks get zero
/// (their load re-routes to survivors), and each survivor's share blends
/// an even split with its renewable-surplus share.
fn compute_factors(st: &BrokerState, cfg: &DatacenterConfig) -> Vec<f64> {
    let rack_servers: Vec<usize> = cfg.racks.iter().map(|r| r.green.green_servers).collect();
    conserved_factors(&st.beliefs, &rack_servers, st.has_telemetry)
}

/// The conserved-allocation core shared by the batch broker and
/// [`crate::serve`]'s multi-rack orchestrator: given per-rack beliefs
/// and rack sizes, produce factors summing to exactly the rack count,
/// with dark racks at zero and survivors blending an even split with
/// their renewable-surplus share.
pub(crate) fn conserved_factors(
    beliefs: &[RackBelief],
    rack_servers: &[usize],
    has_telemetry: bool,
) -> Vec<f64> {
    let n = beliefs.len();
    if !has_telemetry {
        return vec![1.0; n];
    }
    let scores: Vec<f64> = beliefs
        .iter()
        .enumerate()
        .map(|(r, b)| {
            if b.live_servers == 0 {
                0.0
            } else {
                let n_srv = rack_servers.get(r).copied().unwrap_or(1) as f64;
                let live_frac = b.live_servers as f64 / n_srv.max(1.0);
                (b.re_supply_w.max(0.0) + SOC_WEIGHT_W * b.battery_soc.clamp(0.0, 1.0) * n_srv)
                    * live_frac
            }
        })
        .collect();
    let alive: Vec<usize> = (0..n).filter(|&r| beliefs[r].live_servers > 0).collect();
    if alive.is_empty() {
        // The whole fleet is believed dark: there is nowhere to shed load,
        // so every rack keeps its nominal share.
        return vec![1.0; n];
    }
    let m = alive.len() as f64;
    let total: f64 = alive.iter().map(|&r| scores[r]).sum();
    let mut factors = vec![0.0; n];
    for &r in &alive {
        let share = if total > 0.0 {
            scores[r] / total
        } else {
            1.0 / m
        };
        factors[r] = n as f64 * ((1.0 - ROUTE_BETA) / m + ROUTE_BETA * share);
    }
    factors
}

/// Run the datacenter through the stepped broker without snapshots.
pub fn try_run_datacenter(
    cfg: &DatacenterConfig,
    jobs: usize,
) -> Result<DatacenterOutcome, String> {
    run_datacenter_with_snapshots(cfg, jobs, 0, &mut |_| {})
}

/// Run the datacenter through the stepped broker, emitting a resumable
/// [`DatacenterSnapshot`] at every `snapshot_every`-th epoch boundary
/// (0 = never). Snapshots capture the full controller state, which the
/// DES measurement plane cannot serialize — `snapshot_every > 0` requires
/// [`MeasurementMode::Analytic`].
pub fn run_datacenter_with_snapshots(
    cfg: &DatacenterConfig,
    jobs: usize,
    snapshot_every: u64,
    sink: &mut dyn FnMut(&DatacenterSnapshot),
) -> Result<DatacenterOutcome, String> {
    cfg.validate()?;
    run_stepped(cfg, jobs, snapshot_every, None, sink)
}

/// Resume a checkpointed datacenter run from its snapshot, finishing with
/// output byte-identical to the uninterrupted run. Continues emitting
/// snapshots at the same cadence through `sink`.
pub fn resume_datacenter_snapshot(
    snap: DatacenterSnapshot,
    jobs: usize,
    snapshot_every: u64,
    sink: &mut dyn FnMut(&DatacenterSnapshot),
) -> Result<DatacenterOutcome, String> {
    let expected = datacenter_fingerprint(&snap.cfg);
    if snap.fingerprint != expected {
        return Err(format!(
            "checkpoint fingerprint {} does not match this build/config ({expected}); \
             the code or configuration changed since the checkpoint was written",
            snap.fingerprint
        ));
    }
    let cfg = snap.cfg.clone();
    cfg.validate()?;
    if snap.racks.len() != cfg.racks.len() || snap.broker.pinned.len() != cfg.racks.len() {
        return Err("checkpoint rack count does not match its configuration".to_string());
    }
    run_stepped(
        &cfg,
        jobs,
        snapshot_every,
        Some((snap.broker, snap.racks)),
        sink,
    )
}

/// The broker loop plus the per-rack baseline replays. `resume` restarts
/// from a snapshot's broker state and rack loop states.
fn run_stepped(
    cfg: &DatacenterConfig,
    jobs: usize,
    snapshot_every: u64,
    resume: Option<(BrokerState, Vec<LoopState>)>,
    sink: &mut dyn FnMut(&DatacenterSnapshot),
) -> Result<DatacenterOutcome, String> {
    if snapshot_every > 0 && cfg.template.measurement != MeasurementMode::Analytic {
        return Err(
            "datacenter snapshots capture full controller state and require analytic \
             measurement mode"
                .to_string(),
        );
    }
    let n = cfg.racks.len();
    let jobs = jobs.max(1);
    let start = SimTime::from_secs_f64(cfg.template.burst_start_hour * 3_600.0);
    let epoch = cfg.template.epoch;
    let n_epochs = cfg.template.burst_duration.div_duration(epoch).unwrap_or(0);
    let rack_cfgs: Vec<EngineConfig> = (0..n).map(|i| rack_engine_config(cfg, i)).collect();
    let empty_site = FaultPlan::default();
    let site = cfg.site_fault_plan.as_ref().unwrap_or(&empty_site);
    let fp = datacenter_fingerprint(cfg);

    let (mut st, rack_resume) = match resume {
        Some((broker, racks)) => (broker, Some(racks)),
        None => {
            let mut s = BrokerState::fresh(n, cfg.template.seed);
            s.beliefs = (0..n)
                .map(|r| RackBelief::initial(cfg.racks[r].green.green_servers))
                .collect();
            (s, None)
        }
    };
    let start_k = st.next_epoch;
    if let Some(states) = &rack_resume {
        if states.iter().any(|s| s.next_epoch != start_k) {
            return Err("checkpoint rack states are not aligned with the broker epoch".to_string());
        }
    }

    let gate = JobGate::new(jobs);
    let mut dir_txs: Vec<mpsc::Sender<RackDirective>> = Vec::with_capacity(n);
    let mut msg_rxs: Vec<mpsc::Receiver<RackMsg>> = Vec::with_capacity(n);

    let mains: Result<Vec<(BurstOutcome, crate::monitor::Monitor, Option<String>)>, String> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let cfg_i = rack_cfgs[i].clone();
                    let (dtx, drx) = mpsc::channel();
                    let (mtx, mrx) = mpsc::channel();
                    dir_txs.push(dtx);
                    msg_rxs.push(mrx);
                    let resume_i = rack_resume.as_ref().map(|v| v[i].clone());
                    // On resume the rack's local-autonomy factor is the
                    // last applied one, exactly what the uninterrupted
                    // rack thread would be holding.
                    let last_factor = st.applied.last().map_or(1.0, |row| row[i]);
                    let gate = &gate;
                    scope.spawn(move || {
                        let profiles = ProfileTable::cached(cfg_i.app);
                        let mut scratch = EngineScratch::new();
                        let mut hooks = RackHooks {
                            dir_rx: drx,
                            msg_tx: mtx,
                            gate,
                            last_factor,
                        };
                        run_once_resumable(
                            &cfg_i,
                            cfg_i.strategy,
                            profiles,
                            resume_i,
                            snapshot_every,
                            &mut |_| {},
                            &mut scratch,
                            &mut hooks,
                        )
                    })
                })
                .collect();

            // A rack death (panicked worker, closed channel, protocol
            // slip) aborts the epoch loop with a typed failure; the
            // joined panic messages are appended below so the caller
            // sees one coherent error instead of a broker panic.
            let mut failure: Option<String> = None;
            'epochs: for k in start_k..n_epochs {
                // Snapshot boundary: every rack captures its LoopState at
                // the top of epoch k (before receiving the directive), so
                // the broker pairs those captures with its own
                // pre-epoch-k state.
                if snapshot_every > 0 && k > start_k && k % snapshot_every == 0 {
                    let mut rack_states = Vec::with_capacity(n);
                    for (r, rx) in msg_rxs.iter().enumerate() {
                        match rx.recv() {
                            Ok(RackMsg::Snapshot(s)) => rack_states.push(*s),
                            Ok(RackMsg::Report(_)) => {
                                failure = Some(format!(
                                    "protocol error: rack {r} sent telemetry in place of its \
                                     epoch {k} boundary snapshot"
                                ));
                                break 'epochs;
                            }
                            Err(_) => {
                                failure = Some(format!(
                                    "rack {r} disconnected at the epoch {k} snapshot boundary"
                                ));
                                break 'epochs;
                            }
                        }
                    }
                    sink(&DatacenterSnapshot {
                        fingerprint: fp.clone(),
                        cfg: cfg.clone(),
                        broker: st.clone(),
                        racks: rack_states,
                    });
                }

                let computed_k = compute_factors(&st, cfg);
                let mut applied_k = vec![0.0; n];
                for r in 0..n {
                    let prev_applied = st.applied.last().map_or(1.0, |row| row[r]);
                    if blackout_active(site, k, r, start, epoch) {
                        st.blackout_epochs += 1;
                    }
                    let (directive, applied) = if partitioned(site, k, r, start, epoch) {
                        if st.pinned[r].is_none() {
                            st.pinned[r] = Some(prev_applied);
                            st.site_events.push(format!(
                                "epoch {k}: rack {r} partitioned from broker; local autonomy \
                                 holds factor {prev_applied:.3}"
                            ));
                        }
                        st.probation_left[r] = REJOIN_EPOCHS;
                        st.per_rack_partition[r] += 1;
                        st.per_rack_degraded[r] += 1;
                        (RackDirective::Lost, prev_applied)
                    } else if let Some(pin) = st.pinned[r] {
                        if st.probation_left[r] == REJOIN_EPOCHS {
                            st.site_events.push(format!(
                                "epoch {k}: rack {r} link healed; {REJOIN_EPOCHS} probationary \
                                 epoch(s) at held factor {pin:.3}"
                            ));
                        }
                        st.probation_left[r] = st.probation_left[r].saturating_sub(1);
                        st.per_rack_degraded[r] += 1;
                        if st.probation_left[r] == 0 {
                            st.pinned[r] = None;
                            st.rejoins += 1;
                            st.site_events
                                .push(format!("epoch {k}: rack {r} rejoined routing"));
                        }
                        (RackDirective::Deliver(pin), pin)
                    } else if let Some(p) = link_loss_p(site, k, r, start, epoch) {
                        let mut lost_all = true;
                        for attempt in 0..=LINK_RETRIES {
                            if !st.link_rng.chance(p) {
                                lost_all = false;
                                break;
                            }
                            if attempt < LINK_RETRIES {
                                st.link_retries += 1;
                                st.link_latency_ms += backoff_ms(attempt);
                            }
                        }
                        if lost_all {
                            st.per_rack_degraded[r] += 1;
                            st.site_events.push(format!(
                                "epoch {k}: rack {r} directive lost after {LINK_RETRIES} \
                                 retries; local autonomy holds factor {prev_applied:.3}"
                            ));
                            (RackDirective::Lost, prev_applied)
                        } else {
                            (RackDirective::Deliver(computed_k[r]), computed_k[r])
                        }
                    } else if let Some(d) = link_delay(site, k, r, start, epoch) {
                        st.stale_factor_epochs += 1;
                        let f = if k >= u64::from(d) {
                            let row = (k - u64::from(d)) as usize;
                            st.computed.get(row).map_or(1.0, |c| c[r])
                        } else {
                            1.0
                        };
                        (RackDirective::Deliver(f), f)
                    } else {
                        (RackDirective::Deliver(computed_k[r]), computed_k[r])
                    };
                    applied_k[r] = applied;
                    if dir_txs[r].send(directive).is_err() {
                        failure = Some(format!(
                            "rack {r} disconnected receiving its epoch {k} directive"
                        ));
                        break 'epochs;
                    }
                }
                if computed_k.iter().any(|&f| f <= REROUTE_EPS)
                    && computed_k.iter().any(|&f| f > 1.0 + REROUTE_EPS)
                {
                    st.rerouted_epochs += 1;
                }
                st.computed.push(computed_k.clone());
                st.applied.push(applied_k);

                // Telemetry in rack-index order: the aggregation order —
                // not thread completion order — defines the result.
                for (r, rx) in msg_rxs.iter().enumerate() {
                    let rec = match rx.recv() {
                        Ok(RackMsg::Report(rec)) => rec,
                        Ok(RackMsg::Snapshot(_)) => {
                            failure = Some(format!(
                                "protocol error: rack {r} sent a snapshot in place of its \
                                 epoch {k} telemetry"
                            ));
                            break 'epochs;
                        }
                        Err(_) => {
                            failure = Some(format!("rack {r} disconnected during epoch {k}"));
                            break 'epochs;
                        }
                    };
                    if partitioned(site, k, r, start, epoch) {
                        // The partition blocks both directions: hold the
                        // last-good belief, marked stale.
                        st.beliefs[r].stale = true;
                    } else {
                        st.beliefs[r] = RackBelief {
                            re_supply_w: rec.re_supply_w,
                            battery_soc: rec.battery_soc,
                            live_servers: usize::from(rec.live_servers),
                            demand_w: rec.demand_w,
                            goodput_rps: rec.goodput_rps,
                            stale: false,
                        };
                    }
                }
                st.has_telemetry = true;

                let mut aud = InvariantAuditor::with_violations(std::mem::take(
                    &mut st.site_audit_violations,
                ));
                // "Dark" for the zero-draw invariant means *inside an
                // active blackout*: after the outage, servers on rejoin
                // probation draw power without carrying load, which is
                // correct behaviour, not a violation. A stale (partition-
                // held) belief cannot attest either way, so it is skipped.
                aud.check_site_epoch(&SiteFlows {
                    epoch_index: k as usize,
                    factors: st.computed.last().cloned().unwrap_or_default(),
                    dark: (0..n)
                        .map(|r| blackout_active(site, k, r, start, epoch) && !st.beliefs[r].stale)
                        .collect(),
                    rack_demand_w: st.beliefs.iter().map(|b| b.demand_w).collect(),
                });
                st.site_audit_violations = aud.into_violations();

                st.next_epoch = k + 1;
            }

            // All directives delivered (or the loop aborted); dropping
            // the senders releases any still-blocked rack into local
            // autonomy so every thread can be joined.
            drop(dir_txs);
            let mut outs = Vec::with_capacity(n);
            let mut panics: Vec<String> = Vec::new();
            for (r, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(out) => outs.push(out),
                    Err(p) => {
                        panics.push(format!("rack {r} panicked: {}", panic_message(p.as_ref())));
                    }
                }
            }
            match (failure, panics.is_empty()) {
                (None, true) => Ok(outs),
                (Some(msg), true) => Err(msg),
                (None, false) => Err(panics.join("; ")),
                (Some(msg), false) => Err(format!("{msg}: {}", panics.join("; "))),
            }
        });
    let mains = mains?;

    // Baseline phase: replay each rack's applied factors under Normal so
    // the floor judgment is like-for-like through site faults. A Normal
    // rack is its own baseline. Bounded by the same jobs level; snapshots
    // cover the strategy phase only — a resume re-runs the (deterministic)
    // baselines.
    let applied_cols: Vec<Vec<f64>> = (0..n)
        .map(|r| st.applied.iter().map(|row| row[r]).collect())
        .collect();
    let gate = JobGate::new(jobs);
    let baselines: Result<Vec<Option<BurstOutcome>>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let cfg_r = &rack_cfgs[r];
                let factors = &applied_cols[r];
                let gate = &gate;
                scope.spawn(move || {
                    if cfg_r.strategy == Strategy::Normal {
                        return None;
                    }
                    gate.acquire();
                    let profiles = ProfileTable::cached(cfg_r.app);
                    let mut scratch = EngineScratch::new();
                    let mut hooks = ReplayHooks { factors };
                    let (outcome, _, _) = run_once_resumable(
                        cfg_r,
                        Strategy::Normal,
                        profiles,
                        None,
                        0,
                        &mut |_| {},
                        &mut scratch,
                        &mut hooks,
                    );
                    gate.release();
                    Some(outcome)
                })
            })
            .collect();
        let mut outs = Vec::with_capacity(n);
        let mut panics: Vec<String> = Vec::new();
        for (r, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outs.push(out),
                Err(p) => panics.push(format!(
                    "rack {r} baseline panicked: {}",
                    panic_message(p.as_ref())
                )),
            }
        }
        if panics.is_empty() {
            Ok(outs)
        } else {
            Err(panics.join("; "))
        }
    });
    let baselines = baselines?;

    let outcomes: Vec<BurstOutcome> = mains
        .into_iter()
        .zip(baselines)
        .enumerate()
        .map(|(r, ((main, _, _), baseline))| crate::engine::judge(&rack_cfgs[r], main, baseline))
        .collect();

    let route_stats: Vec<RackRouteStats> = (0..n)
        .map(|r| {
            let col = &applied_cols[r];
            let sum: f64 = col.iter().sum();
            RackRouteStats {
                mean_factor: if col.is_empty() {
                    1.0
                } else {
                    sum / col.len() as f64
                },
                min_factor: col.iter().copied().fold(f64::INFINITY, f64::min),
                max_factor: col.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                partition_epochs: st.per_rack_partition[r],
                degraded_epochs: st.per_rack_degraded[r],
            }
        })
        .collect();

    let mean_speedup =
        outcomes.iter().map(|o| o.speedup_vs_normal).sum::<f64>() / outcomes.len() as f64;
    Ok(DatacenterOutcome {
        mean_speedup,
        re_used_wh: outcomes.iter().map(|o| o.re_used_wh).sum(),
        battery_used_wh: outcomes.iter().map(|o| o.battery_used_wh).sum(),
        curtailed_wh: outcomes.iter().map(|o| o.curtailed_wh).sum(),
        racks: outcomes,
        partition_epochs: st.per_rack_partition.iter().sum(),
        degraded_epochs: st.per_rack_degraded.iter().sum(),
        blackout_epochs: st.blackout_epochs,
        stale_factor_epochs: st.stale_factor_epochs,
        rerouted_epochs: st.rerouted_epochs,
        link_retries: st.link_retries,
        link_latency_ms: st.link_latency_ms,
        rejoins: st.rejoins,
        site_events: st.site_events,
        site_audit_violations: st.site_audit_violations,
        route_stats,
        factors: st.computed,
        applied_factors: st.applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::datacenter::{DatacenterConfig, RackSpec};
    use gs_workload::apps::Application;

    fn template() -> EngineConfig {
        EngineConfig {
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(10),
            measurement: MeasurementMode::Analytic,
            seed: 17,
            ..EngineConfig::default()
        }
    }

    fn fleet(n: usize) -> DatacenterConfig {
        DatacenterConfig {
            racks: (0..n)
                .map(|i| RackSpec {
                    app: Application::ALL[i % 3],
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                })
                .collect(),
            template: template(),
            site_fault_plan: None,
        }
    }

    /// A site event starting `mins` minutes into the burst.
    fn site_event(mins: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(mins),
            duration: SimDuration::from_mins(2),
            kind,
        }
    }

    #[test]
    fn site_plans_translate_per_rack() {
        let mut cfg = fleet(3);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![
            site_event(1, FaultKind::RackBlackout { rack: 1, epochs: 2 }),
            site_event(
                3,
                FaultKind::RackInverterDerate {
                    rack: 0,
                    factor: 0.5,
                },
            ),
            site_event(4, FaultKind::BrokerPartition { rack: 2, epochs: 2 }),
            site_event(5, FaultKind::ReSensorDropout),
        ]));
        // Rack 0: the derate, plus the replicated rack-local dropout.
        let p0 = translate_plan(&cfg, 0).unwrap();
        assert_eq!(p0.events.len(), 2);
        assert!(matches!(
            p0.events[0].kind,
            FaultKind::InverterDerate { factor } if factor == 0.5
        ));
        assert!(matches!(p0.events[1].kind, FaultKind::ReSensorDropout));
        // Rack 1: one crash per server from the blackout, plus the dropout.
        let p1 = translate_plan(&cfg, 1).unwrap();
        let crashes: Vec<_> = p1
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ServerCrash {
                    server,
                    down_epochs,
                } => Some((server, down_epochs)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), cfg.racks[1].green.green_servers);
        assert!(crashes.iter().all(|&(_, d)| d == 2));
        // Rack 2: the partition stays broker-side — only the dropout.
        let p2 = translate_plan(&cfg, 2).unwrap();
        assert_eq!(p2.events.len(), 1);
        assert!(matches!(p2.events[0].kind, FaultKind::ReSensorDropout));
        // Every translated plan passes engine validation.
        for i in 0..3 {
            rack_engine_config(&cfg, i).validate().unwrap();
        }
    }

    #[test]
    fn blackout_reroutes_load_within_two_epochs() {
        let mut cfg = fleet(3);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![site_event(
            2,
            FaultKind::RackBlackout { rack: 1, epochs: 3 },
        )]));
        let out = try_run_datacenter(&cfg, 4).unwrap();
        assert!(
            out.site_audit_violations.is_empty(),
            "{:?}",
            out.site_audit_violations
        );
        assert!(out.blackout_epochs >= 3, "{}", out.blackout_epochs);
        // The blackout lands at epoch 2; within two epochs the broker must
        // have drained the dark rack and shifted its share to survivors.
        let drained = out
            .factors
            .iter()
            .enumerate()
            .find(|(_, row)| row[1] <= REROUTE_EPS);
        let (k, row) = drained.expect("dark rack never drained");
        assert!(k <= 4, "drained only at epoch {k}");
        assert!(
            row[0] > 1.0 + REROUTE_EPS && row[2] > 1.0 + REROUTE_EPS,
            "{row:?}"
        );
        assert!(out.rerouted_epochs >= 1);
        // Conservation holds every epoch, dark or not.
        for (k, row) in out.factors.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 3.0).abs() < 1e-9, "epoch {k}: {row:?}");
        }
        // Every rack still holds its Normal floor, judged like-for-like.
        for (r, o) in out.racks.iter().enumerate() {
            assert!(
                o.floor_held,
                "rack {r} broke the floor: {}",
                o.speedup_vs_normal
            );
        }
    }

    #[test]
    fn partition_degrades_to_local_autonomy_then_rejoins() {
        let mut cfg = fleet(3);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![site_event(
            2,
            FaultKind::BrokerPartition { rack: 1, epochs: 2 },
        )]));
        let out = try_run_datacenter(&cfg, 2).unwrap();
        assert!(
            out.site_audit_violations.is_empty(),
            "{:?}",
            out.site_audit_violations
        );
        // Two partitioned epochs, then REJOIN_EPOCHS of probation.
        assert_eq!(out.partition_epochs, 2);
        assert_eq!(
            out.degraded_epochs,
            2 + REJOIN_EPOCHS as usize,
            "events: {:?}",
            out.site_events
        );
        assert_eq!(out.rejoins, 1);
        // Local autonomy: the rack held its last-delivered factor through
        // the partition and the probation window (epochs 2..=6).
        let held = out.applied_factors[1][1];
        for k in 2..=6usize {
            assert_eq!(out.applied_factors[k][1], held, "epoch {k}");
        }
        // After rejoin the broker's fresh allocation flows again.
        assert_eq!(out.applied_factors[7][1], out.factors[7][1]);
        let log = out.site_events.join("\n");
        assert!(log.contains("partitioned"), "{log}");
        assert!(log.contains("rejoined"), "{log}");
        for o in &out.racks {
            assert!(o.floor_held);
        }
    }

    #[test]
    fn lossy_and_laggy_links_degrade_gracefully() {
        let mut cfg = fleet(2);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_hours(11) + SimDuration::from_mins(1),
                duration: SimDuration::from_mins(3),
                kind: FaultKind::LinkLoss { rack: 0, p: 0.9 },
            },
            FaultEvent {
                at: SimTime::from_hours(11) + SimDuration::from_mins(5),
                duration: SimDuration::from_mins(3),
                kind: FaultKind::LinkDelay { rack: 1, epochs: 2 },
            },
        ]));
        let out = try_run_datacenter(&cfg, 2).unwrap();
        assert!(
            out.site_audit_violations.is_empty(),
            "{:?}",
            out.site_audit_violations
        );
        // p=0.9 over 3 epochs × 4 attempts: retries are all but certain
        // under the pinned seed.
        assert!(out.link_retries > 0);
        assert!(out.link_latency_ms > 0);
        assert_eq!(out.stale_factor_epochs, 3);
        for o in &out.racks {
            assert!(o.floor_held);
        }
    }

    #[test]
    fn outcome_is_byte_identical_across_jobs() {
        let mut cfg = fleet(4);
        cfg.site_fault_plan = Some(FaultPlan::generate_site(
            9,
            SimTime::from_hours(11),
            SimDuration::from_mins(10),
            4,
        ));
        let a = try_run_datacenter(&cfg, 1).unwrap();
        let b = try_run_datacenter(&cfg, 4).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn snapshot_resume_is_byte_identical_through_a_partition() {
        let mut cfg = fleet(3);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![site_event(
            2,
            FaultKind::BrokerPartition { rack: 0, epochs: 3 },
        )]));
        let mut snaps: Vec<DatacenterSnapshot> = Vec::new();
        let uninterrupted =
            run_datacenter_with_snapshots(&cfg, 2, 2, &mut |s| snaps.push(s.clone())).unwrap();
        // Boundary snapshots at epochs 2, 4, 6, 8 — epoch 4 is
        // mid-partition.
        assert_eq!(snaps.len(), 4);
        let mid = snaps[1].clone();
        assert_eq!(mid.broker.next_epoch, 4);
        assert!(mid.broker.pinned[0].is_some(), "not mid-partition");
        // Round-trip through JSON, as a real crash recovery would.
        let restored = DatacenterSnapshot::from_json(&mid.to_json().unwrap()).unwrap();
        let resumed = resume_datacenter_snapshot(restored, 3, 2, &mut |_| {}).unwrap();
        assert_eq!(
            serde_json::to_string(&uninterrupted).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn resume_mid_probation_replays_the_identical_rejoin_epoch() {
        let mut cfg = fleet(3);
        cfg.site_fault_plan = Some(FaultPlan::new(vec![site_event(
            2,
            FaultKind::BrokerPartition { rack: 0, epochs: 2 },
        )]));
        let mut snaps: Vec<DatacenterSnapshot> = Vec::new();
        let uninterrupted =
            run_datacenter_with_snapshots(&cfg, 2, 5, &mut |s| snaps.push(s.clone())).unwrap();
        // One boundary at epoch 5: the partition (epochs 2..4) has
        // healed, but rack 0 is still pinned, serving out its rejoin
        // probation — the resume must replay the held-factor epochs and
        // the identical rejoin epoch.
        assert_eq!(snaps.len(), 1);
        let mid = snaps[0].clone();
        assert_eq!(mid.broker.next_epoch, 5);
        assert!(mid.broker.pinned[0].is_some(), "not pinned mid-probation");
        assert!(
            mid.broker.probation_left[0] > 0 && mid.broker.probation_left[0] < REJOIN_EPOCHS,
            "snapshot not mid-probation: {} epochs left",
            mid.broker.probation_left[0]
        );
        let restored = DatacenterSnapshot::from_json(&mid.to_json().unwrap()).unwrap();
        let resumed = resume_datacenter_snapshot(restored, 2, 5, &mut |_| {}).unwrap();
        assert_eq!(
            serde_json::to_string(&uninterrupted).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
        assert_eq!(resumed.rejoins, 1);
        // Local autonomy held one factor from the partition through the
        // end of probation (epochs 2..=6), then fresh allocations flow.
        let held = resumed.applied_factors[2][0];
        for k in 2..=6usize {
            assert_eq!(resumed.applied_factors[k][0], held, "epoch {k}");
        }
        assert_eq!(resumed.applied_factors[7][0], resumed.factors[7][0]);
    }

    #[test]
    fn resume_rejects_a_tampered_fingerprint() {
        let cfg = fleet(2);
        let mut snaps: Vec<DatacenterSnapshot> = Vec::new();
        run_datacenter_with_snapshots(&cfg, 2, 3, &mut |s| snaps.push(s.clone())).unwrap();
        let mut snap = snaps[0].clone();
        snap.cfg.template.seed ^= 1;
        let err = resume_datacenter_snapshot(snap, 2, 3, &mut |_| {}).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn snapshots_require_analytic_measurement() {
        let mut cfg = fleet(2);
        cfg.template.measurement = MeasurementMode::Des;
        let err = run_datacenter_with_snapshots(&cfg, 2, 2, &mut |_| {}).unwrap_err();
        assert!(err.contains("analytic"), "{err}");
        // Without snapshots DES is fine.
        assert!(try_run_datacenter(&cfg, 2).is_ok());
    }
}
