//! The Power Management Knob (PMK) strategies (paper §III-B).
//!
//! Given the epoch's predicted workload and the power the PSS can supply,
//! each strategy picks a sprint setting `S_j` per server:
//!
//! * **Normal** — never sprint (the evaluation's baseline).
//! * **Greedy** — "simply activate all cores and set the highest
//!   frequency"; needs the full sprint power *now*, otherwise it falls
//!   back to Normal. No prediction, no pacing of the battery.
//! * **Parallel** — scales only the core count (frequency pinned at max),
//!   budgeting the battery over a planning horizon so discharge can last.
//! * **Pacing** — scales only the frequency (all 12 cores active), same
//!   horizon-budgeted battery use.
//! * **Hybrid** — Q-learning over the full 2-D setting space
//!   (see [`crate::qlearning`]), masked to currently-feasible settings.
//!
//! Every strategy keeps Normal mode as a fallback: "when the power source
//! can no longer sustain the power demand, we finish sprinting by
//! deactivating the additional active cores and setting the frequency to
//! the lowest level."

use crate::profiler::ProfileTable;
use crate::qlearning::QLearner;
use gs_cluster::ServerSetting;
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The five evaluated strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Baseline: 6 cores at 1.2 GHz, grid powered.
    Normal,
    /// Maximum sprint whenever instantaneously affordable.
    Greedy,
    /// Core-count scaling only.
    Parallel,
    /// Frequency scaling only.
    Pacing,
    /// Reinforcement-learned combination of both knobs.
    Hybrid,
}

impl Strategy {
    /// The four sprinting strategies compared in Figs. 6–10 (everything
    /// but the Normal baseline).
    pub const SPRINTING: [Strategy; 4] = [
        Strategy::Greedy,
        Strategy::Parallel,
        Strategy::Pacing,
        Strategy::Hybrid,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Normal => "Normal",
            Strategy::Greedy => "Greedy",
            Strategy::Parallel => "Parallel",
            Strategy::Pacing => "Pacing",
            Strategy::Hybrid => "Hybrid",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-epoch, per-server decision inputs.
#[derive(Debug, Clone, Copy)]
pub struct PmkContext {
    /// Predicted offered load for the next epoch (req/s).
    pub predicted_load_rps: f64,
    /// This server's share of the predicted renewable supply (W).
    pub re_share_w: f64,
    /// Battery power available *right now* (W) — the instantaneous
    /// discharge limit Greedy and the Hybrid feasibility mask use.
    pub battery_instant_w: f64,
    /// Battery power sustainable over the planning horizon (W) — what the
    /// pacing strategies budget with.
    pub battery_sustained_w: f64,
}

impl PmkContext {
    /// Instantaneously available sprint power (W).
    pub fn instant_budget_w(&self) -> f64 {
        self.re_share_w + self.battery_instant_w
    }

    /// Horizon-sustainable sprint power (W).
    pub fn sustained_budget_w(&self) -> f64 {
        self.re_share_w + self.battery_sustained_w
    }
}

/// The PMK decision engine for one application.
#[derive(Debug)]
pub struct Pmk {
    strategy: Strategy,
    /// Switching hysteresis: keep the incumbent setting when its expected
    /// performance is within this fraction of the newly chosen one's
    /// (0 disables). Counters the knob churn the paper warns small
    /// quantization steps cause ("frequent changes in configuration for
    /// small changes in workload intensity and power supply", §III-B);
    /// core on/off and P-state transitions are not free on real machines.
    pub hysteresis: f64,
    /// Parallel's action slice (cores at max frequency) plus Normal.
    parallel_actions: Vec<ServerSetting>,
    /// Pacing's action slice (max cores, frequencies) plus Normal.
    pacing_actions: Vec<ServerSetting>,
    /// The full 2-D space for Hybrid.
    all_actions: Vec<ServerSetting>,
    /// Hybrid's learner (present only for [`Strategy::Hybrid`]).
    learner: Option<QLearner>,
    /// Reusable buffer for Hybrid's per-decision feasible-action filter,
    /// so `choose` allocates nothing on the epoch loop's hot path.
    feasible_buf: Vec<ServerSetting>,
}

impl Pmk {
    /// Build a PMK for a strategy; Hybrid gets a profile-bootstrapped
    /// learner.
    pub fn new(strategy: Strategy, profiles: &ProfileTable) -> Self {
        let mut parallel_actions = ServerSetting::parallel_axis();
        parallel_actions.push(ServerSetting::normal());
        let mut pacing_actions = ServerSetting::pacing_axis();
        pacing_actions.push(ServerSetting::normal());
        let learner = (strategy == Strategy::Hybrid).then(|| {
            // When `profiles` is a process-wide cached table, clone the
            // matching cached bootstrap instead of re-running the
            // 21×21×63 sweep — the bootstrap is a pure function of the
            // table, so this changes nothing but wall-clock.
            if let Some(app) = ProfileTable::cached_app(profiles) {
                return QLearner::bootstrapped_cached(app).clone();
            }
            let max = profiles.get(ServerSetting::max_sprint());
            let mut q = QLearner::new(max.full_load_power_w, max.slo_capacity);
            q.bootstrap(profiles);
            q
        });
        Pmk {
            strategy,
            hysteresis: 0.0,
            parallel_actions,
            pacing_actions,
            all_actions: ServerSetting::all(),
            learner,
            feasible_buf: Vec::new(),
        }
    }

    /// Decide whether to keep the incumbent setting instead of switching
    /// to `chosen`: the incumbent survives if it is still affordable and
    /// performs within the hysteresis band of the new choice.
    pub fn apply_hysteresis(
        &self,
        profiles: &ProfileTable,
        ctx: &PmkContext,
        incumbent: ServerSetting,
        chosen: ServerSetting,
    ) -> ServerSetting {
        if self.hysteresis <= 0.0 || incumbent == chosen {
            return chosen;
        }
        let affordable = incumbent == ServerSetting::normal()
            || profiles.planned_power_w(incumbent, ctx.predicted_load_rps)
                <= ctx.instant_budget_w();
        if !affordable {
            return chosen;
        }
        let perf_incumbent = profiles.expected_perf(incumbent, ctx.predicted_load_rps);
        let perf_chosen = profiles.expected_perf(chosen, ctx.predicted_load_rps);
        if perf_incumbent >= perf_chosen * (1.0 - self.hysteresis) {
            incumbent
        } else {
            chosen
        }
    }

    /// The strategy this PMK runs.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Mutable access to Hybrid's learner for online updates.
    pub fn learner_mut(&mut self) -> Option<&mut QLearner> {
        self.learner.as_mut()
    }

    /// True when this PMK carries no learner — its decisions are then a
    /// pure function of `(profiles, ctx, incumbent)` and consume no
    /// randomness, which is what makes per-epoch decision memoization
    /// sound (see `FleetState::decision_memo`).
    pub fn is_learner_free(&self) -> bool {
        self.learner.is_none()
    }

    /// Choose the sprint setting for one server this epoch.
    pub fn choose(
        &mut self,
        profiles: &ProfileTable,
        ctx: &PmkContext,
        rng: &mut SimRng,
    ) -> ServerSetting {
        match self.strategy {
            Strategy::Normal => ServerSetting::normal(),
            Strategy::Greedy => {
                let max = ServerSetting::max_sprint();
                let need = profiles.planned_power_w(max, ctx.predicted_load_rps);
                if need <= ctx.instant_budget_w() {
                    max
                } else {
                    ServerSetting::normal()
                }
            }
            Strategy::Parallel => self.budgeted(profiles, &self.parallel_actions, ctx),
            Strategy::Pacing => self.budgeted(profiles, &self.pacing_actions, ctx),
            Strategy::Hybrid => {
                let learner = self.learner.as_ref().expect("hybrid has a learner");
                self.feasible_buf.clear();
                self.feasible_buf
                    .extend(self.all_actions.iter().copied().filter(|&s| {
                        s == ServerSetting::normal()
                            || profiles.planned_power_w(s, ctx.predicted_load_rps)
                                <= ctx.instant_budget_w()
                    }));
                let state = learner.state(ctx.instant_budget_w(), ctx.predicted_load_rps);
                learner.best_action(state, &self.feasible_buf, rng)
            }
        }
    }

    /// Parallel/Pacing: the best setting on the axis whose planned power
    /// fits the horizon-sustainable budget (ties go to lower power).
    fn budgeted(
        &self,
        profiles: &ProfileTable,
        actions: &[ServerSetting],
        ctx: &PmkContext,
    ) -> ServerSetting {
        profiles
            .best_within_budget(actions, ctx.predicted_load_rps, ctx.sustained_budget_w())
            .unwrap_or_else(ServerSetting::normal)
    }
}

/// Default number of consecutive commanded-vs-observed mismatches before
/// the watchdog clamps a server to Normal (and matches before it releases
/// the clamp). Configurable per run via `EngineConfig::watchdog_threshold`.
pub const WATCHDOG_THRESHOLD: u32 = 3;

/// Commanded-vs-observed actuation watchdog.
///
/// Real DVFS knobs fail: commands get lost, sysfs writes stick, core
/// hot-plug times out. A controller that keeps planning sprints for a
/// server that is not actually obeying burns battery against phantom
/// performance. The watchdog compares what the PMK commanded against what
/// the control plane reports applied; after `threshold` consecutive
/// mismatches on a server (default [`WATCHDOG_THRESHOLD`]) it clamps that
/// server's commands to Normal — the one setting that requires no
/// actuation — until the same number of consecutive clean matches shows
/// the knob is back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActuationWatchdog {
    mismatch_streak: Vec<u32>,
    match_streak: Vec<u32>,
    clamped: Vec<bool>,
    /// Streak length that trips (and releases) the clamp. Serialized with
    /// the watchdog; checkpoints from before the field existed are
    /// already rejected by the config fingerprint.
    threshold: u32,
}

impl ActuationWatchdog {
    /// A watchdog for `n` servers, all trusted, with the default
    /// [`WATCHDOG_THRESHOLD`].
    pub fn new(n: usize) -> Self {
        Self::with_threshold(n, WATCHDOG_THRESHOLD)
    }

    /// A watchdog for `n` servers with a custom mismatch threshold
    /// (clamped to ≥ 1; a zero threshold would clamp healthy servers).
    pub fn with_threshold(n: usize, threshold: u32) -> Self {
        ActuationWatchdog {
            mismatch_streak: vec![0; n],
            match_streak: vec![0; n],
            clamped: vec![false; n],
            threshold: threshold.max(1),
        }
    }

    /// The configured mismatch threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Report one epoch's commanded and observed settings for server `i`.
    pub fn observe(&mut self, i: usize, commanded: ServerSetting, applied: ServerSetting) {
        if commanded == applied {
            self.mismatch_streak[i] = 0;
            self.match_streak[i] += 1;
            if self.clamped[i] && self.match_streak[i] >= self.threshold {
                self.clamped[i] = false;
            }
        } else {
            self.match_streak[i] = 0;
            self.mismatch_streak[i] += 1;
            if self.mismatch_streak[i] >= self.threshold {
                self.clamped[i] = true;
            }
        }
    }

    /// Forget everything known about server `i` — streaks and clamp. A
    /// crashed server reboots with fresh knobs; holding a clamp (or a
    /// half-built streak) against the replacement would punish hardware
    /// that no longer exists.
    pub fn reset(&mut self, i: usize) {
        self.mismatch_streak[i] = 0;
        self.match_streak[i] = 0;
        self.clamped[i] = false;
    }

    /// True while server `i`'s commands are clamped to Normal.
    pub fn is_clamped(&self, i: usize) -> bool {
        self.clamped[i]
    }

    /// How many servers are currently clamped.
    pub fn clamped_count(&self) -> usize {
        self.clamped.iter().filter(|&&c| c).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_workload::apps::Application;

    fn profiles() -> ProfileTable {
        ProfileTable::build(&Application::SpecJbb.profile())
    }

    fn ctx(re: f64, instant: f64, sustained: f64) -> PmkContext {
        PmkContext {
            predicted_load_rps: 1e9, // saturating burst
            re_share_w: re,
            battery_instant_w: instant,
            battery_sustained_w: sustained,
        }
    }

    #[test]
    fn normal_never_sprints() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Normal, &p);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            pmk.choose(&p, &ctx(1e9, 1e9, 1e9), &mut rng),
            ServerSetting::normal()
        );
    }

    #[test]
    fn greedy_is_all_or_nothing() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Greedy, &p);
        let mut rng = SimRng::seed_from_u64(2);
        // Plenty of instantaneous power: max sprint.
        assert_eq!(
            pmk.choose(&p, &ctx(211.75, 0.0, 0.0), &mut rng),
            ServerSetting::max_sprint()
        );
        // 120 W would allow an intermediate setting, but Greedy can't use it.
        assert_eq!(
            pmk.choose(&p, &ctx(120.0, 0.0, 0.0), &mut rng),
            ServerSetting::normal()
        );
    }

    #[test]
    fn parallel_stays_on_its_axis() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Parallel, &p);
        let mut rng = SimRng::seed_from_u64(3);
        for budget in [90.0, 120.0, 135.0, 155.0, 300.0] {
            let s = pmk.choose(&p, &ctx(budget, 0.0, 0.0), &mut rng);
            assert!(
                s == ServerSetting::normal() || (s.freq_ghz() - 2.0).abs() < 1e-9,
                "parallel chose {s}"
            );
            assert!(p.planned_power_w(s, 1e9) <= budget.max(100.0) + 1e-9);
        }
        // Full budget: all 12 cores.
        let s = pmk.choose(&p, &ctx(300.0, 0.0, 0.0), &mut rng);
        assert_eq!(s, ServerSetting::max_sprint());
    }

    #[test]
    fn pacing_stays_on_its_axis() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Pacing, &p);
        let mut rng = SimRng::seed_from_u64(4);
        for budget in [130.0, 140.0, 155.0] {
            let s = pmk.choose(&p, &ctx(budget, 0.0, 0.0), &mut rng);
            assert!(
                s == ServerSetting::normal() || s.cores == 12,
                "pacing chose {s}"
            );
        }
        let s = pmk.choose(&p, &ctx(140.0, 0.0, 0.0), &mut rng);
        // 140 W fits 12 cores at a reduced frequency.
        assert_eq!(s.cores, 12);
        assert!(s.freq_ghz() < 2.0);
    }

    #[test]
    fn pacing_uses_sustained_budget_not_instant() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Pacing, &p);
        let mut rng = SimRng::seed_from_u64(5);
        // Instantaneously the battery could deliver 400 W, but only 130 W
        // is sustainable over the horizon — Pacing must budget with 130 W.
        let s = pmk.choose(&p, &ctx(0.0, 400.0, 130.0), &mut rng);
        assert!(p.planned_power_w(s, 1e9) <= 130.0 + 1e-9, "chose {s}");
    }

    #[test]
    fn greedy_uses_instant_budget() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Greedy, &p);
        let mut rng = SimRng::seed_from_u64(6);
        // Same situation: Greedy happily burns the 400 W instant power.
        let s = pmk.choose(&p, &ctx(0.0, 400.0, 130.0), &mut rng);
        assert_eq!(s, ServerSetting::max_sprint());
    }

    #[test]
    fn hybrid_sprints_hard_under_burst_with_power() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Hybrid, &p);
        let mut rng = SimRng::seed_from_u64(7);
        let s = pmk.choose(&p, &ctx(211.75, 0.0, 0.0), &mut rng);
        let perf = p.expected_perf(s, 1e9);
        let normal = p.expected_perf(ServerSetting::normal(), 1e9);
        assert!(perf > 3.0 * normal, "hybrid chose {s} with perf {perf}");
    }

    #[test]
    fn hybrid_respects_feasibility_mask() {
        let p = profiles();
        let mut pmk = Pmk::new(Strategy::Hybrid, &p);
        let mut rng = SimRng::seed_from_u64(8);
        let s = pmk.choose(&p, &ctx(0.0, 0.0, 0.0), &mut rng);
        assert_eq!(s, ServerSetting::normal());
        let s = pmk.choose(&p, &ctx(120.0, 0.0, 0.0), &mut rng);
        assert!(p.planned_power_w(s, 1e9) <= 120.0 + 1e-9, "chose {s}");
    }

    #[test]
    fn all_strategies_fall_back_to_normal_without_power() {
        let p = profiles();
        let mut rng = SimRng::seed_from_u64(9);
        for strat in Strategy::SPRINTING {
            let mut pmk = Pmk::new(strat, &p);
            let s = pmk.choose(&p, &ctx(0.0, 0.0, 0.0), &mut rng);
            assert_eq!(s, ServerSetting::normal(), "{strat}");
        }
    }

    #[test]
    fn labels_and_sets() {
        assert_eq!(Strategy::Hybrid.to_string(), "Hybrid");
        assert_eq!(Strategy::SPRINTING.len(), 4);
        assert!(!Strategy::SPRINTING.contains(&Strategy::Normal));
    }

    #[test]
    fn watchdog_clamps_after_repeated_mismatches_and_releases_after_matches() {
        let mut w = ActuationWatchdog::new(2);
        let cmd = ServerSetting::max_sprint();
        let stuck = ServerSetting::normal();
        for _ in 0..WATCHDOG_THRESHOLD - 1 {
            w.observe(0, cmd, stuck);
            assert!(!w.is_clamped(0), "below threshold");
        }
        w.observe(0, cmd, stuck);
        assert!(w.is_clamped(0));
        assert_eq!(w.clamped_count(), 1);
        // The untouched server is unaffected.
        assert!(!w.is_clamped(1));
        // While clamped, commanded == applied (both Normal): the clamp
        // releases only after a full streak of clean matches.
        for i in 0..WATCHDOG_THRESHOLD {
            assert!(w.is_clamped(0) || i == WATCHDOG_THRESHOLD - 1);
            w.observe(0, stuck, stuck);
        }
        assert!(!w.is_clamped(0));
    }

    #[test]
    fn watchdog_custom_threshold_clamps_and_releases_on_its_own_schedule() {
        let mut w = ActuationWatchdog::with_threshold(1, 1);
        assert_eq!(w.threshold(), 1);
        let cmd = ServerSetting::max_sprint();
        w.observe(0, cmd, ServerSetting::normal());
        assert!(w.is_clamped(0), "threshold 1 clamps on the first mismatch");
        w.observe(0, ServerSetting::normal(), ServerSetting::normal());
        assert!(!w.is_clamped(0), "and releases after one clean match");
        // A zero threshold is coerced to 1 rather than clamping healthy
        // servers on their first epoch.
        let w = ActuationWatchdog::with_threshold(1, 0);
        assert_eq!(w.threshold(), 1);
    }

    #[test]
    fn watchdog_single_glitch_does_not_clamp() {
        let mut w = ActuationWatchdog::new(1);
        let cmd = ServerSetting::max_sprint();
        w.observe(0, cmd, ServerSetting::normal());
        w.observe(0, cmd, cmd); // knob recovered
        w.observe(0, cmd, ServerSetting::normal());
        w.observe(0, cmd, cmd);
        assert!(!w.is_clamped(0), "alternating glitches never clamp");
    }
}
