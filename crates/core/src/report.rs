//! Human-readable rendering of run outcomes — one place for the textual
//! presentation the CLI, the examples, and the experiment harness share.

use crate::campaign::CampaignOutcome;
use crate::datacenter::DatacenterOutcome;
use crate::engine::BurstOutcome;
use crate::net::NetSummary;
use crate::serve::ServeSummary;
use std::fmt::Write as _;

/// Render a burst outcome as an aligned multi-line summary.
pub fn burst_summary(out: &BurstOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "speedup vs Normal : {:.2}x", out.speedup_vs_normal);
    let _ = writeln!(
        s,
        "goodput           : {:.1} req/s/server (Normal {:.1})",
        out.mean_goodput_rps, out.normal_baseline_rps
    );
    let _ = writeln!(s, "SLO attainment    : {:.1}%", out.slo_attainment * 100.0);
    let _ = writeln!(
        s,
        "energy            : {:.1} Wh renewable + {:.1} Wh battery ({:.1} Wh curtailed)",
        out.re_used_wh, out.battery_used_wh, out.curtailed_wh
    );
    let _ = writeln!(
        s,
        "battery           : {:.3} cycles, {:.1} Wh grid recharge",
        out.battery_cycles, out.grid_recharge_wh
    );
    let _ = writeln!(
        s,
        "thermals          : peak {:.1} degC, {} throttled epochs",
        out.peak_temp_c, out.thermal_throttle_epochs
    );
    let _ = writeln!(
        s,
        "knob churn        : {} transitions",
        out.setting_transitions
    );
    s
}

/// Render the epoch-by-epoch trace as an aligned table.
pub fn epoch_table(out: &BurstOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<9} {:<12} {:<15} {:>8} {:>8} {:>6} {:>9}",
        "time", "setting", "supply case", "RE (W)", "batt(W)", "SoC", "goodput"
    );
    for e in &out.epochs {
        let _ = writeln!(
            s,
            "{:<9} {:<12} {:<15} {:>8.0} {:>8.0} {:>5.0}% {:>9.1}",
            e.t.to_string(),
            e.setting.to_string(),
            e.case.to_string(),
            e.re_supply_w,
            e.battery_w,
            e.battery_soc * 100.0,
            e.goodput_rps,
        );
    }
    s
}

/// Render a campaign outcome.
pub fn campaign_summary(out: &CampaignOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "days simulated    : {}", out.days);
    let _ = writeln!(
        s,
        "sprint hours      : {:.1} ({:.1} server-hours)",
        out.sprint_hours, out.sprint_server_hours
    );
    let _ = writeln!(s, "per year          : {:.0} h", out.sprint_hours_per_year);
    let _ = writeln!(s, "goodput vs Normal : {:.2}x", out.goodput_vs_normal);
    let _ = writeln!(
        s,
        "renewable         : {:.0} Wh used, {:.0} Wh curtailed",
        out.run.re_used_wh, out.run.curtailed_wh
    );
    s
}

/// Render a datacenter outcome: fleet aggregates, per-rack routing
/// lines, and the site fault counters.
pub fn datacenter_summary(out: &DatacenterOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "racks             : {}", out.racks.len());
    let _ = writeln!(s, "mean speedup      : {:.2}x", out.mean_speedup);
    let _ = writeln!(
        s,
        "energy            : {:.1} Wh renewable + {:.1} Wh battery ({:.1} Wh curtailed)",
        out.re_used_wh, out.battery_used_wh, out.curtailed_wh
    );
    let _ = writeln!(
        s,
        "site faults       : {} partition, {} degraded, {} blackout rack-epochs",
        out.partition_epochs, out.degraded_epochs, out.blackout_epochs
    );
    let _ = writeln!(
        s,
        "links             : {} retries ({} ms virtual latency), {} stale-factor epochs",
        out.link_retries, out.link_latency_ms, out.stale_factor_epochs
    );
    let _ = writeln!(
        s,
        "routing           : {} rerouted epochs, {} rejoins",
        out.rerouted_epochs, out.rejoins
    );
    for (r, (o, rs)) in out.racks.iter().zip(&out.route_stats).enumerate() {
        let _ = writeln!(
            s,
            "rack {r:<2}           : {:.2}x, factor {:.2} [{:.2}, {:.2}], floor {}",
            o.speedup_vs_normal,
            rs.mean_factor,
            rs.min_factor,
            rs.max_factor,
            if o.floor_held { "held" } else { "BROKEN" },
        );
    }
    if !out.site_audit_violations.is_empty() {
        let _ = writeln!(
            s,
            "AUDIT             : {} site violation(s)",
            out.site_audit_violations.len()
        );
    }
    s
}

/// Render the multi-rack serve supervision counters: one fleet line,
/// one health line per rack, and the tail of the supervision event log.
pub fn rack_fleet_summary(s: &ServeSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "racks             : {} served, {} restart(s), {} quarantined",
        s.racks, s.rack_restarts, s.racks_quarantined
    );
    let _ = writeln!(
        out,
        "rack deaths       : {} panic(s), {} stall(s); {} rerouted epoch(s)",
        s.rack_panics, s.rack_stalls, s.rerouted_epochs
    );
    for (r, h) in s.rack_health.iter().enumerate() {
        let _ = writeln!(out, "  rack {r}          : {h}");
    }
    // The last few supervision events tell the operator what happened
    // without re-reading the whole journal.
    for e in s.rack_events.iter().rev().take(5).rev() {
        let _ = writeln!(out, "  event           : {e}");
    }
    out
}

/// Render the serve network-plane counters.
pub fn net_plane_summary(n: &NetSummary) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "net conns         : {} accepted, {} dropped, {} timed out",
        n.conns_accepted, n.conns_dropped, n.conns_timed_out
    );
    let _ = writeln!(
        s,
        "net frames        : {} received, {} malformed, {} discarded",
        n.frames_received, n.malformed_frames, n.frames_discarded
    );
    let _ = writeln!(
        s,
        "net subscribers   : {} total, {} lines dropped",
        n.subscribers, n.subscriber_drops
    );
    let _ = writeln!(
        s,
        "net admin         : {} auth rejects, {} drains",
        n.auth_rejects, n.drain_requests
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::{Engine, EngineConfig, MeasurementMode};
    use crate::pmk::Strategy;
    use gs_sim::SimDuration;

    fn outcome() -> BurstOutcome {
        Engine::new(EngineConfig {
            green: GreenConfig::re_batt(),
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        })
        .run()
    }

    #[test]
    fn burst_summary_contains_the_load_bearing_lines() {
        let s = burst_summary(&outcome());
        for needle in ["speedup vs Normal", "goodput", "SLO attainment", "thermals"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
        assert!(s.contains("4."), "expected a ~4.6x speedup rendered:\n{s}");
    }

    #[test]
    fn epoch_table_has_one_row_per_epoch() {
        let out = outcome();
        let table = epoch_table(&out);
        // Header + one line per epoch.
        assert_eq!(table.lines().count(), 1 + out.epochs.len());
        assert!(table.contains("12c@2.0GHz"));
        assert!(table.contains("green-only"));
    }

    #[test]
    fn datacenter_summary_renders_per_rack_routing() {
        let out = crate::datacenter::run_datacenter(&crate::datacenter::DatacenterConfig {
            racks: vec![
                crate::datacenter::RackSpec {
                    app: gs_workload::apps::Application::SpecJbb,
                    green: GreenConfig::re_batt(),
                    strategy: Strategy::Hybrid,
                },
                crate::datacenter::RackSpec {
                    app: gs_workload::apps::Application::WebSearch,
                    green: GreenConfig::re_sbatt(),
                    strategy: Strategy::Pacing,
                },
            ],
            template: EngineConfig {
                availability: AvailabilityLevel::Maximum,
                burst_duration: SimDuration::from_mins(5),
                measurement: MeasurementMode::Analytic,
                ..EngineConfig::default()
            },
            site_fault_plan: None,
        });
        let s = datacenter_summary(&out);
        for needle in [
            "racks",
            "mean speedup",
            "site faults",
            "rack 0",
            "rack 1",
            "held",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
        assert!(!s.contains("AUDIT"), "{s}");
    }

    #[test]
    fn rack_fleet_summary_renders_health_and_events() {
        let s = rack_fleet_summary(&ServeSummary {
            racks: 3,
            rack_restarts: 2,
            rack_panics: 1,
            rack_stalls: 1,
            racks_quarantined: 1,
            rerouted_epochs: 4,
            rack_health: vec![
                crate::supervisor::RackHealth::Live,
                crate::supervisor::RackHealth::Quarantined,
                crate::supervisor::RackHealth::Degraded,
            ],
            rack_events: vec!["rack 1: quarantined after 0 restart(s)".to_string()],
            ..ServeSummary::default()
        });
        for needle in [
            "3 served",
            "2 restart(s)",
            "1 quarantined",
            "1 panic(s)",
            "1 stall(s)",
            "4 rerouted",
            "rack 0",
            "live",
            "quarantined",
            "degraded",
            "event",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn net_plane_summary_renders_every_counter_group() {
        let s = net_plane_summary(&NetSummary {
            conns_accepted: 7,
            malformed_frames: 3,
            subscriber_drops: 2,
            auth_rejects: 1,
            ..NetSummary::default()
        });
        for needle in [
            "net conns",
            "7 accepted",
            "3 malformed",
            "2 lines dropped",
            "1 auth rejects",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn campaign_summary_renders() {
        let out = run_campaign(&CampaignConfig {
            engine: EngineConfig {
                measurement: MeasurementMode::Analytic,
                ..EngineConfig::default()
            },
            days: 1,
            spikes_per_day: 2,
            peak_intensity_cores: 12,
        });
        let s = campaign_summary(&out);
        assert!(s.contains("sprint hours"));
        assert!(s.contains("per year"));
    }
}
