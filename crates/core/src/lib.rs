//! # greensprint — renewable-energy-driven computational sprinting
//!
//! The paper's primary contribution (Fig. 3): a controller that lets a
//! green data center sprint through workload bursts on renewable power,
//! batteries, and — as a bounded last resort — the grid.
//!
//! * [`config`] — the green-provisioning options of Table I and the
//!   renewable-availability levels of the evaluation.
//! * [`profiler`] — the a-priori `LoadPower(L, S)` / performance tables the
//!   paper collects "using an exhaustive method on real servers".
//! * [`monitor`] — the Monitor: power and performance observation streams.
//! * [`predictor`] — the Predictor: EWMA forecasts of renewable supply and
//!   workload intensity (paper Eq. 1, α = 0.3).
//! * [`qlearning`] — the tabular reinforcement learner behind *Hybrid*
//!   (paper Algorithm 1).
//! * [`pmk`] — the Power Management Knob strategies: Normal, Greedy,
//!   Parallel, Pacing, Hybrid.
//! * [`engine`] — the scheduling-epoch engine tying PSS, PMK, batteries,
//!   solar supply, and the workload measurement plane together.
//!
//! ## Quick start
//!
//! ```
//! use greensprint::config::{AvailabilityLevel, GreenConfig};
//! use greensprint::engine::{Engine, EngineConfig};
//! use greensprint::pmk::Strategy;
//! use gs_sim::SimDuration;
//! use gs_workload::apps::Application;
//!
//! let cfg = EngineConfig {
//!     app: Application::SpecJbb,
//!     green: GreenConfig::re_batt(),
//!     strategy: Strategy::Hybrid,
//!     availability: AvailabilityLevel::Medium,
//!     burst_duration: SimDuration::from_mins(10),
//!     burst_intensity_cores: 12,
//!     seed: 42,
//!     ..EngineConfig::default()
//! };
//! let outcome = Engine::new(cfg).run();
//! assert!(outcome.speedup_vs_normal > 1.0);
//! ```

pub mod audit;
pub mod broker;
pub mod campaign;
pub mod checkpoint;
pub mod cluster_view;
pub mod config;
pub mod datacenter;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod guardrail;
pub mod monitor;
pub mod net;
pub mod pmk;
pub mod predictor;
pub mod profiler;
pub mod qlearning;
pub mod report;
pub mod serve;
pub mod supervisor;
pub mod sweep;

pub use audit::{EpochFlows, InvariantAuditor, SiteFlows};
pub use broker::{
    datacenter_fingerprint, resume_datacenter_snapshot, run_datacenter_with_snapshots,
    try_run_datacenter, BrokerState, DatacenterSnapshot, RackBelief, RackRouteStats,
};
pub use campaign::{
    run_campaign, try_run_campaign, try_run_campaign_with_snapshots, CampaignConfig,
    CampaignOutcome,
};
pub use checkpoint::{
    config_fingerprint, fingerprint, points_digest, EngineSnapshot, Journal, JournalError,
    JournalHeader, LoadedJournal, LoopState, MainCarry, RunPhase, SnapshotScope,
    DC_CHECKPOINT_SCHEMA,
};
pub use cluster_view::{run_cluster, ClusterOutcome, GridSprintPolicy};
pub use config::{AvailabilityLevel, GreenConfig};
pub use datacenter::{run_datacenter, DatacenterConfig, DatacenterOutcome, RackSpec};
pub use engine::{resume_snapshot, ResumedRun};
pub use engine::{
    BurstOutcome, Engine, EngineConfig, EngineError, MeasurementMode, PredictorKind, ThermalModel,
};
pub use faults::{ActiveFaults, FaultEvent, FaultKind, FaultPlan};
pub use fleet::EngineScratch;
pub use guardrail::{
    ladder_for, EpochSignals, Guardrail, GuardrailAction, GuardrailConfig, GuardrailState,
    QuarantineRecord,
};
pub use monitor::Monitor;
pub use net::{
    admin_request, parse_frame, run_fault_plan, subscribe_collect, NetAddrs, NetConfig, NetFaultOp,
    NetFaultPlan, NetHarnessReport, NetPlane, NetSummary, RackStat,
};
pub use pmk::Strategy;
pub use predictor::{ClearSkyIndexedPredictor, Predictor};
pub use profiler::ProfileTable;
pub use qlearning::{PolicyError, QLearner, TableStats};
pub use serve::{
    serve, ControlBackend, DirectiveRow, DisturbancePlan, OverrunPolicy, ServeArgs,
    ServeDcSideState, ServeError, ServeOptions, ServeSnapshot, ServeSummary, SERVE_SCHEMA_V2,
};
pub use supervisor::{
    epoch_budget, panic_message, run_supervised_sweep, FailureRecord, RackHealth, RackSupervisor,
    RetryRecord, SupervisorPolicy, SweepReport,
};
pub use sweep::{
    default_jobs, derive_seed, run_sweep, run_sweep_streaming, SweepOutcome, SweepPoint,
    SweepResult, SweepTask,
};

/// Everything a sweep-driving binary or notebook needs, in one import.
pub mod prelude {
    pub use crate::audit::{EpochFlows, InvariantAuditor, SiteFlows};
    pub use crate::broker::{
        datacenter_fingerprint, resume_datacenter_snapshot, run_datacenter_with_snapshots,
        try_run_datacenter, BrokerState, DatacenterSnapshot, RackRouteStats,
    };
    pub use crate::campaign::{run_campaign, try_run_campaign, CampaignConfig, CampaignOutcome};
    pub use crate::checkpoint::{
        config_fingerprint, EngineSnapshot, Journal, JournalError, JournalHeader, LoadedJournal,
    };
    pub use crate::config::{AvailabilityLevel, GreenConfig};
    pub use crate::datacenter::{run_datacenter, DatacenterConfig, DatacenterOutcome, RackSpec};
    pub use crate::engine::{resume_snapshot, ResumedRun};
    pub use crate::engine::{
        BurstOutcome, Engine, EngineConfig, EngineError, MeasurementMode, ThermalModel,
    };
    pub use crate::faults::{ActiveFaults, FaultEvent, FaultKind, FaultPlan};
    pub use crate::guardrail::{Guardrail, GuardrailConfig, GuardrailState, QuarantineRecord};
    pub use crate::net::{
        admin_request, run_fault_plan, subscribe_collect, NetAddrs, NetConfig, NetFaultPlan,
        NetPlane, NetSummary, RackStat,
    };
    pub use crate::pmk::Strategy;
    pub use crate::profiler::ProfileTable;
    pub use crate::qlearning::{PolicyError, QLearner};
    pub use crate::supervisor::{
        epoch_budget, run_supervised_sweep, RackHealth, RackSupervisor, SupervisorPolicy,
        SweepReport,
    };
    pub use crate::sweep::{
        default_jobs, derive_seed, run_sweep, run_sweep_streaming, SweepOutcome, SweepPoint,
        SweepResult, SweepTask,
    };
}
