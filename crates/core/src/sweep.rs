//! Deterministic parallel sweep executor.
//!
//! Every figure of the evaluation is a grid sweep over
//! (strategy × availability × duration × green-config), and learning
//! extensions need thousands of fast simulated episodes. This module fans
//! a list of [`SweepTask`]s (single bursts or multi-day campaigns) across
//! a scoped worker pool while keeping results **bit-identical to a serial
//! run**, whatever the worker count or OS scheduling order:
//!
//! * Each task's RNG seed is derived from `(master_seed, task_index)` with
//!   a SplitMix64-style hash ([`derive_seed`]), so no task's randomness
//!   depends on which worker ran it or on any other task.
//! * A task is a pure function of its (re-seeded) configuration. The only
//!   cross-task state is the process-wide profile cache
//!   ([`crate::profiler::ProfileTable::cached`] and
//!   [`crate::qlearning::QLearner::bootstrapped_cached`]), which is
//!   deterministic, initialized exactly once, and read-only afterwards.
//! * Workers pull task indices from an atomic counter and stream each
//!   finished result back over a channel tagged with its index and label;
//!   the collector re-orders by index before returning.

use crate::campaign::{CampaignConfig, CampaignOutcome};
use crate::engine::{BurstOutcome, Engine, EngineConfig};
use crate::fleet::EngineScratch;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One unit of sweep work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepTask {
    /// A single controlled burst (one figure cell).
    Burst(EngineConfig),
    /// A multi-day diurnal campaign.
    Campaign(CampaignConfig),
}

/// A labelled sweep point: what to run and what to call it in the output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable cell label (e.g. `"jbb/Pacing/med/30min"`).
    pub label: String,
    /// The work itself.
    pub task: SweepTask,
}

impl SweepPoint {
    /// A burst point.
    pub fn burst(label: impl Into<String>, cfg: EngineConfig) -> Self {
        SweepPoint {
            label: label.into(),
            task: SweepTask::Burst(cfg),
        }
    }

    /// A campaign point.
    pub fn campaign(label: impl Into<String>, cfg: CampaignConfig) -> Self {
        SweepPoint {
            label: label.into(),
            task: SweepTask::Campaign(cfg),
        }
    }
}

/// What one task produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepOutcome {
    Burst(BurstOutcome),
    Campaign(CampaignOutcome),
    /// The task did not complete: it panicked on every allowed attempt or
    /// blew its epoch budget (supervised execution only). The error is
    /// recorded in place of a result so sibling tasks survive.
    Failed(String),
}

impl SweepOutcome {
    /// The headline metric, whichever kind of task ran: speedup vs the
    /// Normal baseline (bursts) or goodput vs Normal (campaigns). NaN for
    /// a failed task.
    pub fn vs_normal(&self) -> f64 {
        match self {
            SweepOutcome::Burst(b) => b.speedup_vs_normal,
            SweepOutcome::Campaign(c) => c.goodput_vs_normal,
            SweepOutcome::Failed(_) => f64::NAN,
        }
    }

    /// True when the task did not complete.
    pub fn is_failed(&self) -> bool {
        matches!(self, SweepOutcome::Failed(_))
    }
}

/// One completed sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Position in the submitted task list.
    pub index: usize,
    /// The point's label, copied through.
    pub label: String,
    /// The derived seed this task actually ran with.
    pub seed: u64,
    /// The task's outcome.
    pub outcome: SweepOutcome,
}

/// Derive task `index`'s seed from the sweep's master seed.
///
/// SplitMix64's output function over `master_seed + (index+1)·γ` (the
/// Weyl-sequence increment γ = 0x9e3779b97f4a7c15): statistically
/// independent streams for adjacent indices, and a pure function of
/// `(master_seed, index)` — worker count and completion order cannot
/// enter.
pub fn derive_seed(master_seed: u64, index: u64) -> u64 {
    let mut z =
        master_seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The worker count to use when the caller does not specify one.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run a sweep: every point re-seeded from `(master_seed, index)`, fanned
/// across `jobs` workers, results returned in submission order.
///
/// Panics if `jobs == 0` or a task panics.
pub fn run_sweep(points: Vec<SweepPoint>, master_seed: u64, jobs: usize) -> Vec<SweepResult> {
    run_sweep_streaming(points, master_seed, jobs, |_| {})
}

/// As [`run_sweep`], additionally invoking `on_result` on each result *in
/// completion order* as it streams off the worker channel — for live
/// output (e.g. the CLI's JSON-lines mode) without waiting for the
/// slowest task.
pub fn run_sweep_streaming(
    points: Vec<SweepPoint>,
    master_seed: u64,
    jobs: usize,
    mut on_result: impl FnMut(&SweepResult),
) -> Vec<SweepResult> {
    assert!(jobs >= 1, "sweep needs at least one worker");
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<SweepResult>();
    let points = &points;
    let next = &next;

    let mut results: Vec<Option<SweepResult>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || {
                // One scratch arena per worker, reused across every task
                // it claims: each engine run resets it, so reuse cannot
                // leak state between points (pinned by the jobs-invariance
                // golden test).
                let mut arena = EngineScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let point = &points[i];
                    let seed = derive_seed(master_seed, i as u64);
                    let outcome = run_task_seeded_in(&point.task, seed, &mut arena);
                    // The receiver can only hang up by panicking; die
                    // quietly with it rather than double-panicking.
                    if tx
                        .send(SweepResult {
                            index: i,
                            label: point.label.clone(),
                            seed,
                            outcome,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(tx); // the collector's recv() ends when the last worker exits
        for result in rx {
            on_result(&result);
            let slot = result.index;
            results[slot] = Some(result);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker panicked before completing its task"))
        .collect()
}

/// Execute one task with its derived seed substituted in.
pub(crate) fn run_task_seeded(task: &SweepTask, seed: u64) -> SweepOutcome {
    let mut arena = EngineScratch::new();
    run_task_seeded_in(task, seed, &mut arena)
}

/// As [`run_task_seeded`], reusing a caller-provided scratch arena.
pub(crate) fn run_task_seeded_in(
    task: &SweepTask,
    seed: u64,
    arena: &mut EngineScratch,
) -> SweepOutcome {
    match task {
        SweepTask::Burst(cfg) => {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            SweepOutcome::Burst(Engine::new(cfg).run_with_scratch(arena))
        }
        SweepTask::Campaign(cfg) => {
            let mut cfg = cfg.clone();
            cfg.engine.seed = seed;
            let outcome = crate::campaign::try_run_campaign_in(&cfg, arena)
                .unwrap_or_else(|e| panic!("invalid campaign configuration: {e}"));
            SweepOutcome::Campaign(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::MeasurementMode;
    use crate::pmk::Strategy;
    use gs_sim::SimDuration;
    use gs_workload::apps::Application;

    fn quick_cfg(strategy: Strategy) -> EngineConfig {
        EngineConfig {
            strategy,
            green: GreenConfig::re_batt(),
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(5),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        }
    }

    fn small_grid() -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for strategy in [Strategy::Greedy, Strategy::Pacing, Strategy::Hybrid] {
            for app in [Application::SpecJbb, Application::Memcached] {
                let cfg = EngineConfig {
                    app,
                    ..quick_cfg(strategy)
                };
                points.push(SweepPoint::burst(format!("{app:?}/{strategy}"), cfg));
            }
        }
        points
    }

    #[test]
    fn derive_seed_is_stable_and_index_sensitive() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let results = run_sweep(small_grid(), 7, 4);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.seed, derive_seed(7, i as u64));
        }
    }

    #[test]
    fn worker_count_does_not_change_outcomes() {
        let serial = run_sweep(small_grid(), 7, 1);
        let parallel = run_sweep(small_grid(), 7, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.outcome.vs_normal(),
                b.outcome.vs_normal(),
                "{} diverged between jobs=1 and jobs=4",
                a.label
            );
        }
    }

    #[test]
    fn streaming_sees_every_result_once() {
        let mut seen = Vec::new();
        let results = run_sweep_streaming(small_grid(), 7, 3, |r| seen.push(r.index));
        seen.sort_unstable();
        assert_eq!(seen, (0..results.len()).collect::<Vec<_>>());
    }

    #[test]
    fn campaigns_run_through_the_sweep() {
        let campaign = CampaignConfig {
            engine: quick_cfg(Strategy::Greedy),
            days: 1,
            spikes_per_day: 2,
            peak_intensity_cores: 12,
        };
        let results = run_sweep(vec![SweepPoint::campaign("1day", campaign)], 3, 2);
        match &results[0].outcome {
            SweepOutcome::Campaign(c) => assert_eq!(c.days, 1),
            other => panic!("expected campaign outcome, got {other:?}"),
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_sweep(Vec::new(), 7, 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_is_rejected() {
        run_sweep(small_grid(), 7, 0);
    }
}
