//! The full 10-server cluster view.
//!
//! The paper's figures measure the green-provisioned servers, but its
//! setup (§IV-A) also has the *grid-side* servers sprinting
//! "conservatively … at sub-optimal performance (e.g., 12 core-sprinting
//! with 1.5GHz or 7 core-sprinting with 2GHz)" inside the 1000 W grid
//! budget. This module runs that complete picture: the green rack through
//! the normal engine, the utility-dependent servers at the best uniform
//! setting the grid budget admits, and the PDU breaker over the aggregate
//! grid draw.

use crate::engine::{measure_analytic, BurstOutcome, Engine, EngineConfig};
use crate::profiler::ProfileTable;
use gs_cluster::cluster::PAPER_CLUSTER_SIZE;
use gs_cluster::ServerSetting;
use gs_power::pdu::CircuitBreaker;
use gs_workload::arrivals::BurstPattern;
use serde::{Deserialize, Serialize};

/// How the utility-dependent servers behave during the burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridSprintPolicy {
    /// Stay at Normal mode (strictly inside the provisioned budget).
    NormalOnly,
    /// The paper's setup: sprint at the best uniform setting whose
    /// aggregate full-load power fits the grid budget.
    SubOptimal,
    /// Ignore the budget and sprint flat out — demonstrates why the
    /// breaker exists (failure injection).
    Reckless,
}

/// Outcome of a full-cluster burst.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// The green rack's outcome (as from [`Engine::run`]).
    pub green: BurstOutcome,
    /// Setting the grid servers ran at.
    pub grid_setting: ServerSetting,
    /// Number of utility-dependent servers.
    pub grid_servers: usize,
    /// Their aggregate goodput (req/s).
    pub grid_goodput_rps: f64,
    /// Their aggregate power draw (W).
    pub grid_power_w: f64,
    /// Whether the PDU breaker tripped during the burst (after a trip the
    /// grid servers are counted at zero goodput for the remainder —
    /// exactly the revenue catastrophe the paper's budget discipline
    /// avoids).
    pub breaker_tripped: bool,
    /// Whole-cluster speedup over an all-Normal cluster.
    pub cluster_speedup_vs_normal: f64,
    /// Smallest live green-server count seen during the burst (the full
    /// green subset unless the fault plan crashed or flapped servers).
    #[serde(default)]
    pub green_min_live_servers: usize,
}

/// The grid budget of the prototype: 100 W × 10 servers.
pub const PAPER_GRID_BUDGET_W: f64 = 1000.0;

/// Run the full cluster for one burst configuration.
pub fn run_cluster(cfg: &EngineConfig, policy: GridSprintPolicy) -> ClusterOutcome {
    let profiles = ProfileTable::cached(cfg.app);
    let app = cfg.app.profile();
    let green = Engine::new(cfg.clone()).run();

    let n_grid = PAPER_CLUSTER_SIZE - cfg.green.green_servers;
    let burst = BurstPattern::intensity(
        &app,
        cfg.burst_intensity_cores,
        gs_sim::SimTime::ZERO,
        gs_sim::SimTime::ZERO + cfg.burst_duration,
    );
    let offered = burst.burst_rps;
    let budget_per_server = PAPER_GRID_BUDGET_W / n_grid.max(1) as f64;

    let grid_setting = match policy {
        GridSprintPolicy::NormalOnly => ServerSetting::normal(),
        GridSprintPolicy::SubOptimal => profiles
            .best_within_budget(&ServerSetting::all(), offered, budget_per_server)
            .unwrap_or_else(ServerSetting::normal),
        GridSprintPolicy::Reckless => ServerSetting::max_sprint(),
    };

    // Steady-state per-server epoch under the burst (deterministic).
    let perf = measure_analytic(&app, profiles, grid_setting, offered);
    let per_server_power = app.power_model().power_w(grid_setting, perf.utilization);
    let grid_power_w = per_server_power * n_grid as f64;

    // Drive the breaker across the burst at that draw.
    let mut breaker = CircuitBreaker::new(PAPER_GRID_BUDGET_W);
    let tripped = breaker.advance(grid_power_w, cfg.burst_duration);

    let grid_goodput = if tripped {
        0.0
    } else {
        perf.goodput_rps * n_grid as f64
    };
    let normal_perf = measure_analytic(&app, profiles, ServerSetting::normal(), offered);
    let cluster_normal = normal_perf.goodput_rps * PAPER_CLUSTER_SIZE as f64;
    let cluster_goodput = green.mean_goodput_rps * cfg.green.green_servers as f64 + grid_goodput;

    let green_min_live_servers = green.min_live_servers.min(cfg.green.green_servers);
    ClusterOutcome {
        green,
        grid_setting,
        grid_servers: n_grid,
        grid_goodput_rps: grid_goodput,
        grid_power_w,
        breaker_tripped: tripped,
        cluster_speedup_vs_normal: cluster_goodput / cluster_normal,
        green_min_live_servers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AvailabilityLevel, GreenConfig};
    use crate::engine::MeasurementMode;
    use crate::pmk::Strategy;
    use gs_sim::SimDuration;
    use gs_workload::apps::Application;

    fn cfg() -> EngineConfig {
        EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_batt(),
            strategy: Strategy::Hybrid,
            availability: AvailabilityLevel::Maximum,
            burst_duration: SimDuration::from_mins(10),
            measurement: MeasurementMode::Analytic,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn suboptimal_grid_sprint_matches_paper_example() {
        let out = run_cluster(&cfg(), GridSprintPolicy::SubOptimal);
        assert_eq!(out.grid_servers, 7);
        // Paper: 1000 W supports 7 servers at e.g. 12 cores @ 1.5 GHz.
        assert!(
            out.grid_setting.is_sprinting(),
            "chose {}",
            out.grid_setting
        );
        assert!(
            out.grid_power_w <= PAPER_GRID_BUDGET_W + 1e-6,
            "{}",
            out.grid_power_w
        );
        assert!(!out.breaker_tripped);
        // The grid side contributes real speedup but less than the green
        // side's full sprint.
        let per_grid = out.grid_goodput_rps / 7.0;
        assert!(per_grid > out.green.normal_baseline_rps * 1.5);
        assert!(per_grid < out.green.mean_goodput_rps);
    }

    #[test]
    fn cluster_speedup_sits_between_grid_and_green() {
        let out = run_cluster(&cfg(), GridSprintPolicy::SubOptimal);
        assert!(
            out.cluster_speedup_vs_normal > 2.0,
            "{}",
            out.cluster_speedup_vs_normal
        );
        assert!(
            out.cluster_speedup_vs_normal < out.green.speedup_vs_normal,
            "cluster {} vs green {}",
            out.cluster_speedup_vs_normal,
            out.green.speedup_vs_normal
        );
    }

    #[test]
    fn normal_only_grid_contributes_baseline() {
        let out = run_cluster(&cfg(), GridSprintPolicy::NormalOnly);
        assert_eq!(out.grid_setting, ServerSetting::normal());
        assert!(!out.breaker_tripped);
        assert!(out.cluster_speedup_vs_normal > 1.0);
    }

    #[test]
    fn reckless_grid_sprinting_trips_the_breaker() {
        // 7 servers at 155 W = 1085 W against a 1000 W breaker: the paper's
        // "serious power emergencies" (§I) made concrete.
        let out = run_cluster(&cfg(), GridSprintPolicy::Reckless);
        assert!(out.grid_power_w > PAPER_GRID_BUDGET_W);
        assert!(out.breaker_tripped);
        assert_eq!(out.grid_goodput_rps, 0.0);
        // Tripping the grid side costs more cluster throughput than the
        // sub-optimal discipline earns.
        let disciplined = run_cluster(&cfg(), GridSprintPolicy::SubOptimal);
        assert!(disciplined.cluster_speedup_vs_normal > out.cluster_speedup_vs_normal);
    }

    #[test]
    fn a_green_server_crash_degrades_but_does_not_sink_the_cluster() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        use gs_sim::SimTime;
        let healthy = run_cluster(&cfg(), GridSprintPolicy::SubOptimal);
        assert_eq!(healthy.green_min_live_servers, 3);
        let crash = FaultEvent {
            at: SimTime::from_hours(11) + SimDuration::from_mins(2),
            duration: SimDuration::from_mins(1),
            kind: FaultKind::ServerCrash {
                server: 1,
                down_epochs: 3,
            },
        };
        let out = run_cluster(
            &EngineConfig {
                fault_plan: Some(FaultPlan::new(vec![crash])),
                ..cfg()
            },
            GridSprintPolicy::SubOptimal,
        );
        assert_eq!(out.green_min_live_servers, 2);
        assert!(out.green.floor_held);
        assert!(!out.breaker_tripped, "a green crash is not a grid event");
        assert!(
            out.cluster_speedup_vs_normal < healthy.cluster_speedup_vs_normal,
            "degraded {} vs healthy {}",
            out.cluster_speedup_vs_normal,
            healthy.cluster_speedup_vs_normal
        );
        assert!(
            out.cluster_speedup_vs_normal > 1.0,
            "still beats all-Normal"
        );
    }

    #[test]
    fn sre_config_has_eight_grid_servers() {
        let out = run_cluster(
            &EngineConfig {
                green: GreenConfig::sre_sbatt(),
                ..cfg()
            },
            GridSprintPolicy::SubOptimal,
        );
        assert_eq!(out.grid_servers, 8);
        assert!(out.grid_power_w <= PAPER_GRID_BUDGET_W + 1e-6);
    }
}
